//! Partitioned Boolean Quadratic Programming (PBQP) solver.
//!
//! Anderson & Gregg ("Optimal DNN primitive selection with partitioned
//! boolean quadratic programming", the paper's main related-work
//! comparator) formulate primitive selection as a PBQP instance: one node
//! per layer with a cost *vector* (one entry per candidate primitive), one
//! edge per producer→consumer pair with a cost *matrix* (the layout/transfer
//! incompatibility penalties). This crate implements the classic reduction
//! solver:
//!
//! * **R0** — degree-0 nodes: pick the cheapest entry;
//! * **RI** — degree-1 nodes: fold the node's costs into its neighbour;
//! * **RII** — degree-2 nodes: replace the node by an edge between its two
//!   neighbours;
//! * **RN** — heuristic elimination for degree ≥ 3 (local argmin), which
//!   makes the solver fast but only near-optimal on dense graphs.
//!
//! Decisions are back-propagated in reverse elimination order. For
//! chain-/tree-shaped graphs (every DNN in the zoo reduces this way) the
//! solution is **exact**.
//!
//! # Examples
//!
//! ```
//! use qsdnn_pbqp::PbqpGraph;
//!
//! let mut g = PbqpGraph::new();
//! let a = g.add_node(vec![1.0, 3.0]);
//! let b = g.add_node(vec![2.0, 0.5]);
//! // Disagreeing choices cost 10.
//! g.add_edge(a, b, vec![0.0, 10.0, 10.0, 0.0]).unwrap();
//! let sol = g.solve_with_cost();
//! assert_eq!(sol.selection, vec![0, 0]); // 1.0 + 2.0 beats any mismatch
//! assert!((sol.cost - 3.0).abs() < 1e-12);
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Error type for PBQP graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbqpError {
    /// An edge referenced a node id that does not exist.
    UnknownNode(usize),
    /// Matrix length does not equal `|u| * |v|`.
    MatrixExtent {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Self-loops are not representable in PBQP.
    SelfLoop(usize),
}

impl std::fmt::Display for PbqpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbqpError::UnknownNode(n) => write!(f, "unknown node {n}"),
            PbqpError::MatrixExtent { expected, got } => {
                write!(f, "edge matrix has {got} entries, expected {expected}")
            }
            PbqpError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
        }
    }
}

impl std::error::Error for PbqpError {}

/// Solution of a PBQP instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PbqpSolution {
    /// Chosen alternative per node.
    pub selection: Vec<usize>,
    /// Total cost of the selection.
    pub cost: f64,
    /// Whether only R0/RI/RII reductions were used (solution is exact).
    pub exact: bool,
}

/// A PBQP instance: cost vectors on nodes, cost matrices on edges.
#[derive(Debug, Clone, Default)]
pub struct PbqpGraph {
    nodes: Vec<Vec<f64>>,
    /// Keyed by `(min(u,v), max(u,v))`; matrix row-major as `[ci_u][ci_v]`
    /// for `u < v`.
    edges: HashMap<(usize, usize), Vec<f64>>,
}

impl PbqpGraph {
    /// Creates an empty instance.
    pub fn new() -> Self {
        PbqpGraph::default()
    }

    /// Adds a node with the given cost vector; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty.
    pub fn add_node(&mut self, costs: Vec<f64>) -> usize {
        assert!(!costs.is_empty(), "node needs at least one alternative");
        self.nodes.push(costs);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the instance has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds (or accumulates onto) the edge `u–v` with `matrix[ci_u][ci_v]`
    /// costs.
    ///
    /// # Errors
    ///
    /// Returns [`PbqpError`] on unknown ids, a self-loop, or a matrix whose
    /// length is not `|u| * |v|`.
    pub fn add_edge(&mut self, u: usize, v: usize, matrix: Vec<f64>) -> Result<(), PbqpError> {
        if u >= self.nodes.len() {
            return Err(PbqpError::UnknownNode(u));
        }
        if v >= self.nodes.len() {
            return Err(PbqpError::UnknownNode(v));
        }
        if u == v {
            return Err(PbqpError::SelfLoop(u));
        }
        let (nu, nv) = (self.nodes[u].len(), self.nodes[v].len());
        if matrix.len() != nu * nv {
            return Err(PbqpError::MatrixExtent {
                expected: nu * nv,
                got: matrix.len(),
            });
        }
        let (key, mat) = if u < v {
            ((u, v), matrix)
        } else {
            // Transpose into canonical (min,max) orientation.
            let mut t = vec![0.0; matrix.len()];
            for i in 0..nu {
                for j in 0..nv {
                    t[j * nu + i] = matrix[i * nv + j];
                }
            }
            ((v, u), t)
        };
        match self.edges.get_mut(&key) {
            Some(existing) => {
                for (e, m) in existing.iter_mut().zip(mat) {
                    *e += m;
                }
            }
            None => {
                self.edges.insert(key, mat);
            }
        }
        Ok(())
    }

    /// Edge matrix oriented as `[ci_u][ci_v]`, if present.
    fn matrix_oriented(&self, u: usize, v: usize) -> Option<Vec<f64>> {
        let key = (u.min(v), u.max(v));
        let mat = self.edges.get(&key)?;
        if u < v {
            Some(mat.clone())
        } else {
            let (nu, nv) = (self.nodes[u].len(), self.nodes[v].len());
            let mut t = vec![0.0; mat.len()];
            for i in 0..nu {
                for j in 0..nv {
                    t[i * nv + j] = mat[j * nu + i];
                }
            }
            Some(t)
        }
    }

    /// Cost of a full selection (for verification).
    ///
    /// # Panics
    ///
    /// Panics if `selection` is the wrong length or indexes out of range.
    pub fn cost_of(&self, selection: &[usize]) -> f64 {
        assert_eq!(selection.len(), self.nodes.len(), "selection length");
        let mut c: f64 = self
            .nodes
            .iter()
            .zip(selection)
            .map(|(costs, &ci)| costs[ci])
            .sum();
        for (&(u, v), mat) in &self.edges {
            let nv = self.nodes[v].len();
            c += mat[selection[u] * nv + selection[v]];
        }
        c
    }

    /// Solves the instance with R0/RI/RII reductions plus the RN heuristic.
    pub fn solve(&self) -> PbqpSolution {
        Solver::new(self).run()
    }
}

/// Record of one elimination, replayed backwards to reconstruct choices.
enum Elim {
    /// R0/RN: the node's choice was fixed outright.
    Fixed { node: usize, choice: usize },
    /// RI: `node`'s best choice depends on `neighbor`'s choice.
    Dep1 {
        node: usize,
        neighbor: usize,
        best: Vec<usize>,
    },
    /// RII: `node`'s best choice depends on both neighbours.
    Dep2 {
        node: usize,
        n1: usize,
        n2: usize,
        best: Vec<usize>,
        n2_len: usize,
    },
}

struct Solver {
    costs: Vec<Vec<f64>>,
    /// Live adjacency: for each node, map neighbor -> matrix `[self][nb]`.
    adj: Vec<HashMap<usize, Vec<f64>>>,
    alive: Vec<bool>,
    trail: Vec<Elim>,
    exact: bool,
}

impl Solver {
    fn new(g: &PbqpGraph) -> Self {
        let n = g.nodes.len();
        let mut adj: Vec<HashMap<usize, Vec<f64>>> = vec![HashMap::new(); n];
        for &(u, v) in g.edges.keys() {
            adj[u].insert(v, g.matrix_oriented(u, v).expect("edge present"));
            adj[v].insert(u, g.matrix_oriented(v, u).expect("edge present"));
        }
        Solver {
            costs: g.nodes.clone(),
            adj,
            alive: vec![true; n],
            trail: Vec::new(),
            exact: true,
        }
    }

    fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    fn remove_edge(&mut self, u: usize, v: usize) {
        self.adj[u].remove(&v);
        self.adj[v].remove(&u);
    }

    fn add_matrix(&mut self, u: usize, v: usize, m: &[f64]) {
        // m is oriented [u][v].
        let nv = self.costs[v].len();
        let nu = self.costs[u].len();
        let entry_uv = self.adj[u].entry(v).or_insert_with(|| vec![0.0; nu * nv]);
        for (e, x) in entry_uv.iter_mut().zip(m) {
            *e += x;
        }
        let mut t = vec![0.0; m.len()];
        for i in 0..nu {
            for j in 0..nv {
                t[j * nu + i] = m[i * nv + j];
            }
        }
        let entry_vu = self.adj[v].entry(u).or_insert_with(|| vec![0.0; nu * nv]);
        for (e, x) in entry_vu.iter_mut().zip(t) {
            *e += x;
        }
    }

    fn reduce_r0(&mut self, u: usize) {
        let choice = argmin(&self.costs[u]);
        self.trail.push(Elim::Fixed { node: u, choice });
        self.alive[u] = false;
    }

    fn reduce_r1(&mut self, u: usize) {
        let (&nb, mat) = self.adj[u].iter().next().expect("degree 1");
        let mat = mat.clone();
        let nu = self.costs[u].len();
        let nnb = self.costs[nb].len();
        let mut best = vec![0usize; nnb];
        let mut delta = vec![0.0f64; nnb];
        for j in 0..nnb {
            let mut bi = 0;
            let mut bc = f64::INFINITY;
            for i in 0..nu {
                let c = self.costs[u][i] + mat[i * nnb + j];
                if c < bc {
                    bc = c;
                    bi = i;
                }
            }
            best[j] = bi;
            delta[j] = bc;
        }
        for (c, d) in self.costs[nb].iter_mut().zip(&delta) {
            *c += d;
        }
        self.remove_edge(u, nb);
        self.trail.push(Elim::Dep1 {
            node: u,
            neighbor: nb,
            best,
        });
        self.alive[u] = false;
    }

    fn reduce_r2(&mut self, u: usize) {
        let neighbors: Vec<usize> = self.adj[u].keys().copied().collect();
        let (n1, n2) = (neighbors[0], neighbors[1]);
        let m1 = self.adj[u][&n1].clone(); // [u][n1]
        let m2 = self.adj[u][&n2].clone(); // [u][n2]
        let nu = self.costs[u].len();
        let l1 = self.costs[n1].len();
        let l2 = self.costs[n2].len();
        let mut new_mat = vec![0.0f64; l1 * l2]; // [n1][n2]
        let mut best = vec![0usize; l1 * l2];
        for j in 0..l1 {
            for k in 0..l2 {
                let mut bi = 0;
                let mut bc = f64::INFINITY;
                for i in 0..nu {
                    let c = self.costs[u][i] + m1[i * l1 + j] + m2[i * l2 + k];
                    if c < bc {
                        bc = c;
                        bi = i;
                    }
                }
                new_mat[j * l2 + k] = bc;
                best[j * l2 + k] = bi;
            }
        }
        self.remove_edge(u, n1);
        self.remove_edge(u, n2);
        self.add_matrix(n1, n2, &new_mat);
        self.trail.push(Elim::Dep2 {
            node: u,
            n1,
            n2,
            best,
            n2_len: l2,
        });
        self.alive[u] = false;
    }

    /// RN heuristic: fix the highest-degree node at its locally-optimal
    /// alternative, folding the chosen row of each incident matrix into the
    /// neighbour's vector.
    fn reduce_rn(&mut self, u: usize) {
        self.exact = false;
        let nu = self.costs[u].len();
        let neighbors: Vec<usize> = self.adj[u].keys().copied().collect();
        let mut bi = 0;
        let mut bc = f64::INFINITY;
        for i in 0..nu {
            let mut c = self.costs[u][i];
            for &nb in &neighbors {
                let mat = &self.adj[u][&nb];
                let lnb = self.costs[nb].len();
                let row_min = (0..lnb)
                    .map(|j| mat[i * lnb + j])
                    .fold(f64::INFINITY, f64::min);
                c += row_min;
            }
            if c < bc {
                bc = c;
                bi = i;
            }
        }
        for &nb in &neighbors {
            let mat = self.adj[u][&nb].clone();
            let lnb = self.costs[nb].len();
            for j in 0..lnb {
                self.costs[nb][j] += mat[bi * lnb + j];
            }
            self.remove_edge(u, nb);
        }
        self.trail.push(Elim::Fixed {
            node: u,
            choice: bi,
        });
        self.alive[u] = false;
    }

    fn run(mut self) -> PbqpSolution {
        let n = self.costs.len();
        loop {
            let mut progressed = false;
            // Prefer exact reductions, lowest degree first.
            for deg in 0..=2usize {
                for u in 0..n {
                    if self.alive[u] && self.degree(u) == deg {
                        match deg {
                            0 => self.reduce_r0(u),
                            1 => self.reduce_r1(u),
                            _ => self.reduce_r2(u),
                        }
                        progressed = true;
                        break;
                    }
                }
                if progressed {
                    break;
                }
            }
            if progressed {
                continue;
            }
            // No exact reduction available: RN on the max-degree node.
            let next = (0..n)
                .filter(|&u| self.alive[u])
                .max_by_key(|&u| self.degree(u));
            match next {
                Some(u) => self.reduce_rn(u),
                None => break,
            }
        }
        // Back-propagate decisions.
        let mut selection = vec![usize::MAX; n];
        for elim in self.trail.iter().rev() {
            match elim {
                Elim::Fixed { node, choice } => selection[*node] = *choice,
                Elim::Dep1 {
                    node,
                    neighbor,
                    best,
                } => {
                    selection[*node] = best[selection[*neighbor]];
                }
                Elim::Dep2 {
                    node,
                    n1,
                    n2,
                    best,
                    n2_len,
                } => {
                    selection[*node] = best[selection[*n1] * n2_len + selection[*n2]];
                }
            }
        }
        PbqpSolution {
            cost: 0.0,
            exact: self.exact,
            selection,
        }
    }
}

fn argmin(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

impl PbqpGraph {
    /// Solves and fills in the verified total cost.
    pub fn solve_with_cost(&self) -> PbqpSolution {
        let mut sol = self.solve();
        sol.cost = self.cost_of(&sol.selection);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force optimum for small instances.
    fn brute_force(g: &PbqpGraph) -> (Vec<usize>, f64) {
        let dims: Vec<usize> = (0..g.len()).map(|u| g.nodes[u].len()).collect();
        let mut best = (vec![0; g.len()], f64::INFINITY);
        let mut sel = vec![0usize; g.len()];
        loop {
            let c = g.cost_of(&sel);
            if c < best.1 {
                best = (sel.clone(), c);
            }
            // Increment mixed-radix counter.
            let mut i = 0;
            loop {
                if i == sel.len() {
                    return best;
                }
                sel[i] += 1;
                if sel[i] < dims[i] {
                    break;
                }
                sel[i] = 0;
                i += 1;
            }
        }
    }

    fn random_instance(n: usize, k: usize, extra_edges: usize, seed: u64) -> PbqpGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = PbqpGraph::new();
        for _ in 0..n {
            let costs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..5.0)).collect();
            g.add_node(costs);
        }
        // Chain backbone.
        for u in 1..n {
            let m: Vec<f64> = (0..k * k).map(|_| rng.gen_range(0.0..2.0)).collect();
            g.add_edge(u - 1, u, m).unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                let m: Vec<f64> = (0..k * k).map(|_| rng.gen_range(0.0..2.0)).collect();
                g.add_edge(u, v, m).unwrap();
            }
        }
        g
    }

    #[test]
    fn single_node_picks_argmin() {
        let mut g = PbqpGraph::new();
        g.add_node(vec![3.0, 1.0, 2.0]);
        let sol = g.solve_with_cost();
        assert_eq!(sol.selection, vec![1]);
        assert_eq!(sol.cost, 1.0);
        assert!(sol.exact);
    }

    #[test]
    fn chain_is_solved_exactly() {
        for seed in 0..20 {
            let g = random_instance(6, 3, 0, seed);
            let sol = g.solve_with_cost();
            let (_, opt) = brute_force(&g);
            assert!(sol.exact, "chains reduce with RI only");
            assert!(
                (sol.cost - opt).abs() < 1e-9,
                "seed {seed}: {} vs {opt}",
                sol.cost
            );
        }
    }

    #[test]
    fn cycles_are_solved_exactly_via_r2() {
        // A 4-cycle reduces with RII.
        for seed in 0..10 {
            let mut g = random_instance(4, 3, 0, seed);
            let mut rng = SmallRng::seed_from_u64(seed + 999);
            let m: Vec<f64> = (0..9).map(|_| rng.gen_range(0.0..2.0)).collect();
            g.add_edge(3, 0, m).unwrap();
            let sol = g.solve_with_cost();
            let (_, opt) = brute_force(&g);
            assert!((sol.cost - opt).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn dense_instances_use_rn_and_stay_close() {
        for seed in 0..10 {
            let g = random_instance(7, 3, 8, seed);
            let sol = g.solve_with_cost();
            let (_, opt) = brute_force(&g);
            assert!(sol.cost >= opt - 1e-9);
            assert!(
                sol.cost <= opt * 1.25 + 1e-9,
                "seed {seed}: heuristic {} vs optimum {opt}",
                sol.cost
            );
        }
    }

    #[test]
    fn transposed_edge_insertion_is_consistent() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0, 0.0]);
        let b = g.add_node(vec![0.0, 0.0, 0.0]);
        // Insert as (b, a): matrix [3x2].
        g.add_edge(b, a, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .unwrap();
        // cost(a=1, b=2) must read matrix[b=2][a=1] = 6.
        assert_eq!(g.cost_of(&[1, 2]), 6.0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0, 0.0]);
        let b = g.add_node(vec![0.0, 0.0]);
        g.add_edge(a, b, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        g.add_edge(a, b, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(g.cost_of(&[0, 0]), 2.0);
    }

    #[test]
    fn errors_are_reported() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0]);
        assert!(matches!(
            g.add_edge(a, 9, vec![0.0]),
            Err(PbqpError::UnknownNode(9))
        ));
        assert!(matches!(
            g.add_edge(a, a, vec![0.0]),
            Err(PbqpError::SelfLoop(_))
        ));
        let b = g.add_node(vec![0.0, 0.0]);
        assert!(matches!(
            g.add_edge(a, b, vec![0.0]),
            Err(PbqpError::MatrixExtent {
                expected: 2,
                got: 1
            })
        ));
    }
}
