//! End-to-end network execution under a primitive assignment.
//!
//! Runs the real kernels layer by layer, inserting layout-conversion
//! compatibility layers exactly where the engine would at deployment time,
//! and counts them. Used to verify that *any* assignment computes the same
//! function as the all-Vanilla reference (the searches only change *where*
//! and *how fast*, never *what*).

use qsdnn_nn::Network;
use qsdnn_primitives::{execute_layer, generate_weights, Primitive, Processor};
use qsdnn_tensor::{DataLayout, Tensor};

use crate::{Assignment, CostLut};

/// Outcome of one end-to-end run.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Final layer output, normalized to NCHW.
    pub output: Tensor,
    /// Number of layout conversions (compatibility layers) inserted.
    pub layout_conversions: usize,
    /// Number of CPU↔GPU boundary crossings (simulated residency changes).
    pub processor_transfers: usize,
}

/// Executes `net` with the primitives selected by `assignment` in `lut`.
///
/// Weights are generated deterministically from `seed`; `input` is the
/// network input tensor (any layout).
///
/// # Panics
///
/// Panics if the assignment length or candidate indices do not match `lut`,
/// or if `lut` was built for a different network.
pub fn run_network(
    net: &Network,
    lut: &CostLut,
    assignment: &Assignment,
    input: &Tensor,
    seed: u64,
) -> ExecutionResult {
    assert_eq!(lut.network(), net.name(), "LUT/network mismatch");
    assert_eq!(assignment.len(), net.len(), "assignment length");
    let mut activations: Vec<Tensor> = Vec::with_capacity(net.len());
    let mut residency: Vec<Processor> = Vec::with_capacity(net.len());
    let mut layout_conversions = 0usize;
    let mut processor_transfers = 0usize;

    for node in net.layers() {
        let prim: Primitive = lut.candidates(node.id.0)[assignment[node.id.0]];
        let in_shapes = net.input_shapes(node.id);
        let weights = generate_weights(node, &in_shapes, seed);
        let gathered: Vec<Tensor> = if node.inputs.is_empty() {
            if input.layout() != prim.layout {
                layout_conversions += 1;
            }
            vec![input.to_layout(prim.layout)]
        } else {
            node.inputs
                .iter()
                .map(|&p| {
                    let t = &activations[p.0];
                    if residency[p.0] != prim.processor {
                        processor_transfers += 1;
                    }
                    if t.layout() != prim.layout {
                        layout_conversions += 1;
                    }
                    t.to_layout(prim.layout)
                })
                .collect()
        };
        let refs: Vec<&Tensor> = gathered.iter().collect();
        let out = execute_layer(node, &prim, &refs, &weights);
        activations.push(out);
        residency.push(prim.processor);
    }

    ExecutionResult {
        output: activations
            .pop()
            .expect("non-empty network")
            .to_layout(DataLayout::Nchw),
        layout_conversions,
        processor_transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticalPlatform, Mode, Profiler};
    use qsdnn_nn::zoo;

    fn lut_for(net: &Network, mode: Mode) -> CostLut {
        Profiler::with_repeats(AnalyticalPlatform::tx2(), 1).profile(net, mode)
    }

    #[test]
    fn vanilla_run_produces_probabilities() {
        let net = zoo::tiny_cnn(1);
        let lut = lut_for(&net, Mode::Cpu);
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 5);
        let r = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 7);
        let sum: f32 = r.output.as_slice().iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-4,
            "softmax output sums to 1, got {sum}"
        );
    }

    #[test]
    fn greedy_assignment_matches_vanilla_output() {
        let net = zoo::tiny_cnn(1);
        let lut = lut_for(&net, Mode::Cpu);
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 5);
        let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 7);
        let fast = run_network(&net, &lut, &lut.greedy_assignment(), &input, 7);
        let d = base.output.max_abs_diff(&fast.output).unwrap();
        assert!(d < 1e-3, "outputs diverged by {d}");
    }

    #[test]
    fn mixed_layout_assignment_counts_conversions() {
        let net = zoo::tiny_cnn(1);
        let lut = lut_for(&net, Mode::Cpu);
        // Force alternating layouts by picking, per layer, any NHWC
        // candidate when available, else candidate 0.
        let assignment: Assignment = (0..lut.len())
            .map(|l| {
                lut.candidates(l)
                    .iter()
                    .position(|p| p.layout == DataLayout::Nhwc)
                    .unwrap_or(0)
            })
            .collect();
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 5);
        let r = run_network(&net, &lut, &assignment, &input, 7);
        assert!(
            r.layout_conversions > 0,
            "NHWC/NCHW mix must insert conversions"
        );
        // Function must still be preserved.
        let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 7);
        assert!(base.output.approx_eq(&r.output, 1e-3).unwrap());
    }

    #[test]
    fn gpgpu_assignment_counts_transfers() {
        let net = zoo::tiny_cnn(1);
        let lut = lut_for(&net, Mode::Gpgpu);
        // Put everything possible on the GPU.
        let assignment: Assignment = (0..lut.len())
            .map(|l| {
                lut.candidates(l)
                    .iter()
                    .position(|p| p.processor == Processor::Gpu)
                    .unwrap_or(0)
            })
            .collect();
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 5);
        let r = run_network(&net, &lut, &assignment, &input, 7);
        assert!(
            r.processor_transfers > 0,
            "CPU input must cross to GPU at least once"
        );
    }

    #[test]
    fn branchy_network_executes_correctly() {
        let net = zoo::toy_branchy(1);
        let lut = lut_for(&net, Mode::Cpu);
        let input = Tensor::random(net.layers()[0].output_shape, DataLayout::Nchw, 3);
        let base = run_network(&net, &lut, &lut.vanilla_assignment(), &input, 11);
        let fast = run_network(&net, &lut, &lut.greedy_assignment(), &input, 11);
        assert!(base.output.approx_eq(&fast.output, 1e-3).unwrap());
    }
}
