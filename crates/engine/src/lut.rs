//! The Phase-1 look-up table: per-layer primitive times plus pairwise
//! compatibility penalties on every graph edge.
//!
//! "After all inference measurements have been retrieved, a look-up table is
//! built" (paper §V.A). Phase 2 — any search — then evaluates candidate
//! network implementations against this LUT without touching the device
//! again.

use serde::{Deserialize, Serialize};

use qsdnn_nn::LayerTag;
use qsdnn_primitives::Primitive;

use crate::Mode;

/// One candidate assignment: the chosen candidate index for every layer, in
/// topological order.
pub type Assignment = Vec<usize>;

/// Compatibility penalties along one producer→consumer edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncomingEdge {
    /// Producer layer index (topological).
    pub from: usize,
    /// Penalty matrix, `penalty[ci_from * n_self + ci_self]` in ms.
    pub penalty: Vec<f64>,
    /// Energy-penalty matrix (mJ), same indexing; empty = all zeros.
    #[serde(default)]
    pub penalty_energy_mj: Vec<f64>,
}

/// Costs of one layer: its candidate primitives, their profiled times, and
/// the penalty matrices of its incoming edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerEntry {
    /// Layer name (diagnostics).
    pub name: String,
    /// Layer type discriminant.
    pub tag: LayerTag,
    /// Admissible primitives (≥1; Vanilla-family first).
    pub candidates: Vec<Primitive>,
    /// Mean profiled time per candidate (ms), parallel to `candidates`.
    pub time_ms: Vec<f64>,
    /// Mean profiled energy per candidate (mJ); empty = all zeros.
    #[serde(default)]
    pub energy_mj: Vec<f64>,
    /// Incoming edges with their penalty matrices.
    pub incoming: Vec<IncomingEdge>,
}

/// The complete Phase-1 profile of one network on one platform in one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostLut {
    network: String,
    platform: String,
    mode: Mode,
    layers: Vec<LayerEntry>,
}

impl CostLut {
    /// Assembles a LUT from parts (used by the profiler and by hand-built
    /// toy instances).
    ///
    /// # Panics
    ///
    /// Panics if any layer has no candidates or a penalty matrix has the
    /// wrong extent.
    pub fn from_parts(
        network: impl Into<String>,
        platform: impl Into<String>,
        mode: Mode,
        layers: Vec<LayerEntry>,
    ) -> Self {
        for (li, l) in layers.iter().enumerate() {
            assert!(
                !l.candidates.is_empty(),
                "layer {} has no candidates",
                l.name
            );
            assert_eq!(
                l.candidates.len(),
                l.time_ms.len(),
                "layer {} arity",
                l.name
            );
            assert!(
                l.energy_mj.is_empty() || l.energy_mj.len() == l.candidates.len(),
                "layer {} energy arity",
                l.name
            );
            for e in &l.incoming {
                assert!(
                    e.from < li,
                    "edge source must precede layer {} topologically",
                    l.name
                );
                let n_from = layers[e.from].candidates.len();
                assert_eq!(
                    e.penalty.len(),
                    n_from * l.candidates.len(),
                    "penalty matrix extent on edge {} -> {}",
                    e.from,
                    li
                );
                assert!(
                    e.penalty_energy_mj.is_empty() || e.penalty_energy_mj.len() == e.penalty.len(),
                    "energy penalty extent on edge {} -> {}",
                    e.from,
                    li
                );
            }
        }
        CostLut {
            network: network.into(),
            platform: platform.into(),
            mode,
            layers,
        }
    }

    /// Non-panicking check of every structural invariant the cost and
    /// search code relies on: non-empty candidate lists with matching
    /// time/energy arities, topologically-ordered edges with full penalty
    /// matrices, and the Vanilla fallback present on every layer.
    ///
    /// `Deserialize` bypasses [`CostLut::from_parts`], so anything that
    /// accepts a LUT from the wire or from disk (the `qsdnn-serve` search
    /// endpoint, CLI file loads) must validate before searching — a
    /// malformed LUT would otherwise panic deep in `cost`/`step_cost`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (li, l) in self.layers.iter().enumerate() {
            if l.candidates.is_empty() {
                return Err(format!("layer `{}` has no candidates", l.name));
            }
            if l.time_ms.len() != l.candidates.len() {
                return Err(format!(
                    "layer `{}`: {} candidates but {} times",
                    l.name,
                    l.candidates.len(),
                    l.time_ms.len()
                ));
            }
            if !l.energy_mj.is_empty() && l.energy_mj.len() != l.candidates.len() {
                return Err(format!("layer `{}`: energy arity mismatch", l.name));
            }
            if !l
                .candidates
                .iter()
                .any(|p| p.library == qsdnn_primitives::Library::Vanilla)
            {
                return Err(format!("layer `{}` lacks the Vanilla fallback", l.name));
            }
            if !l.time_ms.iter().all(|t| t.is_finite()) {
                return Err(format!("layer `{}` has non-finite times", l.name));
            }
            for e in &l.incoming {
                if e.from >= li {
                    return Err(format!(
                        "edge {} -> {li} is not topologically ordered",
                        e.from
                    ));
                }
                let expect = self.layers[e.from].candidates.len() * l.candidates.len();
                if e.penalty.len() != expect {
                    return Err(format!(
                        "edge {} -> {li}: penalty matrix has {} entries, expected {expect}",
                        e.from,
                        e.penalty.len()
                    ));
                }
                if !e.penalty_energy_mj.is_empty() && e.penalty_energy_mj.len() != e.penalty.len() {
                    return Err(format!("edge {} -> {li}: energy penalty extent", e.from));
                }
                if !e.penalty.iter().all(|p| p.is_finite()) {
                    return Err(format!("edge {} -> {li} has non-finite penalties", e.from));
                }
            }
        }
        Ok(())
    }

    /// Profiled network name.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Platform name the profile came from.
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// Processor mode the profile was restricted to.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the LUT is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer entries in topological order.
    pub fn layers(&self) -> &[LayerEntry] {
        &self.layers
    }

    /// Candidates of layer `l`.
    pub fn candidates(&self, l: usize) -> &[Primitive] {
        &self.layers[l].candidates
    }

    /// Profiled time of candidate `ci` at layer `l` (ms).
    pub fn time(&self, l: usize, ci: usize) -> f64 {
        self.layers[l].time_ms[ci]
    }

    /// Profiled energy of candidate `ci` at layer `l` (mJ); 0 when the LUT
    /// was built without energy profiling.
    pub fn energy(&self, l: usize, ci: usize) -> f64 {
        self.layers[l].energy_mj.get(ci).copied().unwrap_or(0.0)
    }

    /// Total energy of an assignment (mJ), including conversion energy.
    ///
    /// # Panics
    ///
    /// Panics if `assign` has the wrong length.
    pub fn energy_cost(&self, assign: &[usize]) -> f64 {
        assert_eq!(assign.len(), self.layers.len(), "assignment length");
        let mut total = 0.0;
        for (l, &ci) in assign.iter().enumerate() {
            total += self.energy(l, ci);
            for e in &self.layers[l].incoming {
                if !e.penalty_energy_mj.is_empty() {
                    total +=
                        e.penalty_energy_mj[assign[e.from] * self.layers[l].candidates.len() + ci];
                }
            }
        }
        total
    }

    /// A copy of this LUT whose `time_ms`/`penalty` entries are replaced by
    /// the scalarized `objective` — every search and baseline then
    /// optimizes that objective without modification (the paper's
    /// "different reward choices" extension).
    pub fn with_objective(&self, objective: crate::Objective) -> CostLut {
        let mut out = self.clone();
        for l in &mut out.layers {
            for ci in 0..l.candidates.len() {
                let e = l.energy_mj.get(ci).copied().unwrap_or(0.0);
                l.time_ms[ci] = objective.scalarize(l.time_ms[ci], e);
            }
            for edge in &mut l.incoming {
                for i in 0..edge.penalty.len() {
                    let e = edge.penalty_energy_mj.get(i).copied().unwrap_or(0.0);
                    edge.penalty[i] = objective.scalarize(edge.penalty[i], e);
                }
            }
        }
        out
    }

    /// Total size of the design space, `Π_l |candidates(l)|`, saturating.
    pub fn design_space_size(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.candidates.len() as f64)
            .product()
    }

    /// Incremental cost of choosing candidate `ci` at layer `l`, given the
    /// already-chosen prefix `assign[0..l]`: the layer time plus penalties
    /// on all incoming edges — the (negated) RL reward of paper §IV.C.
    pub fn step_cost(&self, l: usize, ci: usize, prefix: &[usize]) -> f64 {
        let entry = &self.layers[l];
        let mut cost = entry.time_ms[ci];
        for e in &entry.incoming {
            let ci_from = prefix[e.from];
            cost += e.penalty[ci_from * entry.candidates.len() + ci];
        }
        cost
    }

    /// Full network latency of an assignment (ms): sum of layer times plus
    /// all edge penalties.
    ///
    /// # Panics
    ///
    /// Panics if `assign` has the wrong length or an index is out of range.
    pub fn cost(&self, assign: &[usize]) -> f64 {
        assert_eq!(assign.len(), self.layers.len(), "assignment length");
        let mut total = 0.0;
        for (l, &ci) in assign.iter().enumerate() {
            total += self.step_cost(l, ci, assign);
        }
        total
    }

    /// The all-Vanilla baseline assignment (paper's reference).
    pub fn vanilla_assignment(&self) -> Assignment {
        self.layers
            .iter()
            .map(|l| {
                l.candidates
                    .iter()
                    .position(|p| p.library == qsdnn_primitives::Library::Vanilla)
                    .expect("vanilla fallback exists for every layer")
            })
            .collect()
    }

    /// The single-library global implementation for `lib`: each layer runs
    /// the library's fastest primitive if it has one, else Vanilla — the
    /// paper's Phase-1 sweep semantics (§V.A).
    pub fn single_library_assignment(&self, lib: qsdnn_primitives::Library) -> Assignment {
        self.layers
            .iter()
            .map(|l| {
                let best_of_lib = l
                    .candidates
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.library == lib)
                    .min_by(|a, b| {
                        l.time_ms[a.0]
                            .partial_cmp(&l.time_ms[b.0])
                            .expect("finite times")
                    })
                    .map(|(i, _)| i);
                best_of_lib.unwrap_or_else(|| {
                    l.candidates
                        .iter()
                        .position(|p| p.library == qsdnn_primitives::Library::Vanilla)
                        .expect("vanilla fallback exists")
                })
            })
            .collect()
    }

    /// Greedy per-layer assignment: the locally fastest primitive for every
    /// layer, ignoring penalties — the paper's Fig. 1 "red path" trap.
    pub fn greedy_assignment(&self) -> Assignment {
        self.layers
            .iter()
            .map(|l| {
                l.time_ms
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .map(|(i, _)| i)
                    .expect("non-empty candidates")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn toy_lut_shape() {
        let lut = toy::fig1_lut();
        assert_eq!(lut.len(), 3);
        assert!(lut.design_space_size() >= 8.0);
    }

    #[test]
    fn cost_adds_penalties() {
        let lut = toy::fig1_lut();
        let greedy = lut.greedy_assignment();
        // Greedy picks the locally-fastest middle primitive, paying two
        // incompatibility penalties.
        let cost_greedy = lut.cost(&greedy);
        let sum_times: f64 = greedy
            .iter()
            .enumerate()
            .map(|(l, &ci)| lut.time(l, ci))
            .sum();
        assert!(cost_greedy > sum_times, "penalties must be charged");
    }

    #[test]
    fn step_cost_composes_to_total() {
        let lut = toy::fig1_lut();
        let a = vec![0, 1, 0];
        let total: f64 = (0..3).map(|l| lut.step_cost(l, a[l], &a)).sum();
        assert!((total - lut.cost(&a)).abs() < 1e-12);
    }

    #[test]
    fn vanilla_assignment_picks_vanilla_everywhere() {
        let lut = toy::fig1_lut();
        let v = lut.vanilla_assignment();
        for (l, &ci) in v.iter().enumerate() {
            assert_eq!(
                lut.candidates(l)[ci].library,
                qsdnn_primitives::Library::Vanilla
            );
        }
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn cost_rejects_wrong_length() {
        toy::fig1_lut().cost(&[0]);
    }

    #[test]
    fn serde_roundtrip() {
        let lut = toy::fig1_lut();
        let json = serde_json::to_string(&lut).expect("serializes");
        let back: CostLut = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(lut, back);
    }
}
