//! Stable content fingerprinting of Phase-1 artifacts.
//!
//! The plan-compilation service (`qsdnn-serve`) content-addresses its plan
//! cache by a fingerprint of *(LUT, objective, search configuration)*. The
//! hash must therefore be stable across processes and platforms — unlike
//! `std::collections`' randomly-keyed `DefaultHasher` — and must be
//! sensitive to every value that can change a search outcome: profiled
//! times, penalty matrices, candidate identities, mode and network name.
//!
//! [`Fnv64`] is the 64-bit FNV-1a hash: tiny, dependency-free and
//! well-distributed for this keying purpose (no adversarial inputs — cache
//! keys come from the service's own profiler).

use qsdnn_primitives::Primitive;

use crate::{CostLut, Objective};

/// 64-bit FNV-1a streaming hasher with typed feed helpers.
///
/// # Examples
///
/// ```
/// use qsdnn_engine::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write_str("qsdnn");
/// h.write_u64(42);
/// let a = h.finish();
/// assert_eq!(a, {
///     let mut h2 = Fnv64::new();
///     h2.write_str("qsdnn");
///     h2.write_u64(42);
///     h2.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Fnv64 {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern (exact, including -0.0 vs 0.0).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string (prefix avoids concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

pub(crate) fn write_primitive(h: &mut Fnv64, p: &Primitive) {
    h.write_str(p.library.name());
    h.write_str(p.algorithm.name());
    h.write_str(p.lowering.name());
    match p.blas {
        Some(b) => h.write_str(b.name()),
        None => h.write_str("-"),
    }
    h.write_str(p.processor.name());
    h.write_str(p.layout.name());
}

impl CostLut {
    /// Stable 64-bit content fingerprint of this LUT.
    ///
    /// Two LUTs fingerprint identically iff every searchable quantity
    /// matches bit-for-bit: network/platform names, mode, per-layer
    /// candidate identities, profiled times/energies and all edge penalty
    /// matrices. Used by `qsdnn-serve` for content-addressed plan caching.
    ///
    /// # Examples
    ///
    /// ```
    /// use qsdnn_engine::toy;
    ///
    /// let a = toy::fig1_lut().fingerprint();
    /// let b = toy::fig1_lut().fingerprint();
    /// assert_eq!(a, b, "same content, same fingerprint");
    /// assert_ne!(a, toy::small_chain_lut().fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("qsdnn-lut-v1");
        h.write_str(self.network());
        h.write_str(self.platform());
        h.write_str(self.mode().label());
        h.write_usize(self.len());
        for entry in self.layers() {
            h.write_str(&entry.name);
            h.write_str(entry.tag.name());
            h.write_usize(entry.candidates.len());
            for p in &entry.candidates {
                write_primitive(&mut h, p);
            }
            h.write_usize(entry.time_ms.len());
            for &t in &entry.time_ms {
                h.write_f64(t);
            }
            h.write_usize(entry.energy_mj.len());
            for &e in &entry.energy_mj {
                h.write_f64(e);
            }
            h.write_usize(entry.incoming.len());
            for edge in &entry.incoming {
                h.write_usize(edge.from);
                h.write_usize(edge.penalty.len());
                for &p in &edge.penalty {
                    h.write_f64(p);
                }
                h.write_usize(edge.penalty_energy_mj.len());
                for &p in &edge.penalty_energy_mj {
                    h.write_f64(p);
                }
            }
        }
        h.finish()
    }
}

impl Objective {
    /// Feeds this objective into a fingerprint hasher.
    pub fn fingerprint_into(&self, h: &mut Fnv64) {
        match self {
            Objective::Latency => h.write_str("latency"),
            Objective::Energy => h.write_str("energy"),
            Objective::Weighted { lambda } => {
                h.write_str("weighted");
                h.write_f64(*lambda);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let lut = toy::fig1_lut();
        assert_eq!(lut.fingerprint(), toy::fig1_lut().fingerprint());
        assert_ne!(lut.fingerprint(), toy::small_chain_lut().fingerprint());
    }

    #[test]
    fn fingerprint_sees_single_time_changes() {
        let base = toy::fig1_lut();
        let mut layers: Vec<_> = base.layers().to_vec();
        layers[1].time_ms[0] += 1e-9;
        let tweaked = CostLut::from_parts(base.network(), base.platform(), base.mode(), layers);
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_objectives() {
        let tag = |o: &Objective| {
            let mut h = Fnv64::new();
            o.fingerprint_into(&mut h);
            h.finish()
        };
        let a = tag(&Objective::Latency);
        let b = tag(&Objective::Energy);
        let c = tag(&Objective::Weighted { lambda: 0.5 });
        let d = tag(&Objective::Weighted { lambda: 0.25 });
        assert!(a != b && b != c && c != d && a != c);
    }

    #[test]
    fn objective_rewrite_changes_lut_fingerprint() {
        let lut = crate::toy::small_chain_lut();
        let energy = lut.with_objective(Objective::Energy);
        // The toy LUT has no energy profile, so costs become zero — but the
        // fingerprint still must differ because the times changed.
        assert_ne!(lut.fingerprint(), energy.fingerprint());
    }
}
