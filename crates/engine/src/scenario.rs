//! Structured scenario descriptors for cross-scenario transfer.
//!
//! The plan cache's content addressing is deliberately exact: one bit of
//! difference in a profiled time produces a different fingerprint and a
//! cold search. A [`ScenarioDescriptor`] is the *similarity* counterpart —
//! a compact structural summary of one search scenario (network, per-layer
//! type and candidate-set summary, batch, platform configuration and
//! objective) with a [`ScenarioDescriptor::distance`] premetric, so a
//! service can find the *nearest* previously-solved scenario and
//! warm-start a new search from its plan instead of starting from scratch
//! (Mulder et al.'s transfer observation, ROADMAP "cross-scenario
//! transfer").
//!
//! Descriptors never replace fingerprints as cache keys; they are the
//! index key that maps "similar enough" scenarios onto each other.

use serde::{Deserialize, Serialize};

use qsdnn_primitives::Primitive;

use crate::fingerprint::write_primitive;
use crate::{CostLut, Fnv64, Objective};

/// Structural summary of one layer of a scenario: its type, its candidate
/// primitives and their profiled costs (in the scenario's objective units).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSummary {
    /// Layer type discriminant (stable lowercase [`LayerTag`] name).
    ///
    /// [`LayerTag`]: qsdnn_nn::LayerTag
    pub tag: String,
    /// The layer's admissible primitives, in LUT candidate order.
    pub candidates: Vec<Primitive>,
    /// Mean profiled cost per candidate, parallel to `candidates`.
    pub cost: Vec<f64>,
    /// Stable hash of the candidate identities (order-sensitive) — two
    /// layers with equal signatures offer the exact same choice set.
    pub candidate_sig: u64,
}

/// A compact, structured description of one *(network, batch, platform,
/// objective)* search scenario, extracted from its Phase-1 LUT.
///
/// Equality of descriptors is looser than equality of LUT fingerprints:
/// two profiling runs with slightly different measured times produce
/// different fingerprints but (time scale aside) nearby descriptors. The
/// [`ScenarioDescriptor::distance`] premetric quantifies that proximity.
///
/// # Examples
///
/// ```
/// use qsdnn_engine::{toy, ScenarioDescriptor};
///
/// let a = ScenarioDescriptor::of(&toy::fig1_lut());
/// let b = ScenarioDescriptor::of(&toy::small_chain_lut());
/// assert_eq!(a.distance(&a), 0.0, "a scenario is zero-distance from itself");
/// assert_eq!(a.distance(&b), b.distance(&a), "distance is symmetric");
/// assert!(a.distance(&b) > 0.0, "different scenarios are apart");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDescriptor {
    /// Network name the LUT was profiled from.
    pub network: String,
    /// Platform name the profile came from.
    pub platform: String,
    /// Processor mode label (`"cpu"` / `"gpgpu"`).
    pub mode: String,
    /// Batch size of the scenario; 0 when unknown (e.g. a client-supplied
    /// LUT whose request did not carry one).
    #[serde(default)]
    pub batch: usize,
    /// Objective tag (see [`Objective::tag`]); empty when unknown.
    #[serde(default)]
    pub objective: String,
    /// Numeric platform summary from [`PlatformSpec::features`]; empty
    /// when the scenario predates platform selection (or came from a
    /// default-platform request, which stays byte-identical to the
    /// pre-registry service). When both sides carry features, the
    /// platform distance term grows smoothly with spec divergence
    /// instead of being a flat mismatch penalty.
    ///
    /// [`PlatformSpec::features`]: crate::PlatformSpec::features
    #[serde(default)]
    pub platform_features: Vec<f64>,
    /// Per-layer structural summaries, in topological order.
    pub layers: Vec<LayerSummary>,
}

/// Distance contributed by a differing platform or mode (either makes
/// profiled numbers incomparable in scale, though structure still maps).
const PLATFORM_MISMATCH: f64 = 2.0;
/// Distance contributed by a differing network name (structure may still
/// align layer by layer; the name mismatch keeps same-network donors
/// preferred).
const NETWORK_MISMATCH: f64 = 1.0;
/// Distance contributed by a differing objective: a latency-optimal donor
/// plan says little about an energy-optimal one.
const OBJECTIVE_MISMATCH: f64 = 4.0;
/// Weight of one doubling of the batch size.
const PER_BATCH_DOUBLING: f64 = 0.25;
/// Weight of one e-fold difference in total profiled cost.
const PER_SCALE_EFOLD: f64 = 0.1;

impl ScenarioDescriptor {
    /// Extracts the descriptor of a LUT. Pure and deterministic: equal LUTs
    /// always yield equal descriptors (and equal
    /// [`ScenarioDescriptor::fingerprint`]s), like [`CostLut::fingerprint`].
    ///
    /// Batch and objective are not recorded in the LUT; use
    /// [`ScenarioDescriptor::with_batch`] / [`ScenarioDescriptor::with_objective`]
    /// to attach them when known.
    pub fn of(lut: &CostLut) -> Self {
        let layers = lut
            .layers()
            .iter()
            .map(|l| {
                let mut h = Fnv64::new();
                for p in &l.candidates {
                    write_primitive(&mut h, p);
                }
                LayerSummary {
                    tag: l.tag.name().to_string(),
                    candidates: l.candidates.clone(),
                    cost: l.time_ms.clone(),
                    candidate_sig: h.finish(),
                }
            })
            .collect();
        ScenarioDescriptor {
            network: lut.network().to_string(),
            platform: lut.platform().to_string(),
            mode: lut.mode().label().to_string(),
            batch: 0,
            objective: String::new(),
            platform_features: Vec::new(),
            layers,
        }
    }

    /// Returns the descriptor with the scenario's batch size attached.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns the descriptor with the scenario's objective attached.
    pub fn with_objective(mut self, objective: &Objective) -> Self {
        self.objective = objective.tag();
        self
    }

    /// Returns the descriptor with a platform feature vector attached
    /// (see [`PlatformSpec::features`]). Only non-default-platform
    /// scenarios attach one, so legacy descriptors keep their exact
    /// fingerprints.
    ///
    /// [`PlatformSpec::features`]: crate::PlatformSpec::features
    pub fn with_platform_features(mut self, features: Vec<f64>) -> Self {
        self.platform_features = features;
        self
    }

    /// Stable 64-bit content fingerprint of the descriptor — the identity
    /// under which a scenario index stores it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("qsdnn-scenario-v1");
        h.write_str(&self.network);
        h.write_str(&self.platform);
        h.write_str(&self.mode);
        h.write_usize(self.batch);
        h.write_str(&self.objective);
        // Marker-style: absent features hash exactly as they did before
        // platform selection existed, keeping legacy identities stable.
        if !self.platform_features.is_empty() {
            h.write_str("platform-features");
            h.write_usize(self.platform_features.len());
            for &v in &self.platform_features {
                h.write_f64(v);
            }
        }
        h.write_usize(self.layers.len());
        for l in &self.layers {
            h.write_str(&l.tag);
            h.write_u64(l.candidate_sig);
            h.write_usize(l.cost.len());
            for &t in &l.cost {
                h.write_f64(t);
            }
        }
        h.finish()
    }

    /// Sum of all per-candidate costs — the scenario's overall cost scale.
    fn total_cost(&self) -> f64 {
        self.layers.iter().map(|l| l.cost.iter().sum::<f64>()).sum()
    }

    /// Scenario similarity: layer-structure edit cost plus parameter
    /// deltas. This is a *premetric* — `d(a, a) == 0`, `d(a, b) == d(b, a)`
    /// and `d(a, b) >= 0` for all descriptors (the triangle inequality is
    /// not guaranteed and not needed for nearest-neighbor ranking).
    ///
    /// Lower is more transferable: 0 is the same scenario; a batch
    /// neighbor of the same network scores fractions of 1; a different
    /// network, platform or objective adds whole units.
    pub fn distance(&self, other: &ScenarioDescriptor) -> f64 {
        let mut d = 0.0;
        if self.network != other.network {
            d += NETWORK_MISMATCH;
        }
        if self.platform != other.platform {
            d += platform_divergence(self, other);
        }
        if self.mode != other.mode {
            d += PLATFORM_MISMATCH;
        }
        if self.objective != other.objective {
            d += OBJECTIVE_MISMATCH;
        }
        let (ba, bb) = (self.batch.max(1) as f64, other.batch.max(1) as f64);
        d += PER_BATCH_DOUBLING * (ba.log2() - bb.log2()).abs();
        let longest = self.layers.len().max(other.layers.len());
        if longest > 0 {
            d += layer_edit_cost(&self.layers, &other.layers) / longest as f64;
        }
        let (ta, tb) = (self.total_cost(), other.total_cost());
        if ta > 0.0 && tb > 0.0 && ta.is_finite() && tb.is_finite() {
            d += PER_SCALE_EFOLD * (ta.ln() - tb.ln()).abs();
        }
        d
    }
}

/// Platform term of the distance, used when the platform *names* differ.
/// With feature vectors on both sides (see
/// [`PlatformSpec::features`](crate::PlatformSpec::features)) the term is
/// `PLATFORM_MISMATCH · m/(m+1)` where `m` is the mean absolute
/// feature delta — zero for identically-specced twins, strictly
/// increasing in spec divergence, and always below the flat
/// [`PLATFORM_MISMATCH`] so cross-platform donors stay inside the serve
/// layer's donor cutoff. Without features (legacy descriptors,
/// default-platform scenarios) it degrades to the historical flat
/// penalty. Symmetric by construction.
fn platform_divergence(a: &ScenarioDescriptor, b: &ScenarioDescriptor) -> f64 {
    if a.platform_features.is_empty() || a.platform_features.len() != b.platform_features.len() {
        return PLATFORM_MISMATCH;
    }
    let n = a.platform_features.len() as f64;
    let mean = a
        .platform_features
        .iter()
        .zip(&b.platform_features)
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / n;
    if !mean.is_finite() {
        return PLATFORM_MISMATCH;
    }
    PLATFORM_MISMATCH * mean / (mean + 1.0)
}

/// Substitution cost between two layer summaries: free for an identical
/// choice set, half for the same layer type with a different candidate
/// set, full for a type change. Symmetric by construction.
fn substitution_cost(a: &LayerSummary, b: &LayerSummary) -> f64 {
    if a.tag != b.tag {
        1.0
    } else if a.candidate_sig != b.candidate_sig {
        0.5
    } else {
        0.0
    }
}

/// Levenshtein-style edit cost over the two layer sequences (insert/delete
/// cost 1, substitution per [`substitution_cost`]). `O(n·m)` — fine for
/// network depths in the hundreds.
fn layer_edit_cost(a: &[LayerSummary], b: &[LayerSummary]) -> f64 {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<f64> = (0..=m).map(|j| j as f64).collect();
    let mut row = vec![0.0; m + 1];
    for i in 1..=n {
        row[0] = i as f64;
        for j in 1..=m {
            let sub = prev[j - 1] + substitution_cost(&a[i - 1], &b[j - 1]);
            let del = prev[j] + 1.0;
            let ins = row[j - 1] + 1.0;
            row[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut row);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn extraction_is_deterministic() {
        let lut = toy::small_chain_lut();
        let a = ScenarioDescriptor::of(&lut);
        let b = ScenarioDescriptor::of(&lut);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn batch_and_objective_separate_fingerprints() {
        let base = ScenarioDescriptor::of(&toy::fig1_lut());
        let batched = base.clone().with_batch(4);
        let energetic = base.clone().with_objective(&Objective::Energy);
        assert_ne!(base.fingerprint(), batched.fingerprint());
        assert_ne!(base.fingerprint(), energetic.fingerprint());
        assert_ne!(batched.fingerprint(), energetic.fingerprint());
    }

    #[test]
    fn distance_is_a_premetric_on_toys() {
        let a = ScenarioDescriptor::of(&toy::fig1_lut()).with_batch(1);
        let b = ScenarioDescriptor::of(&toy::small_chain_lut()).with_batch(4);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(b.distance(&b), 0.0);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b) >= 0.0);
    }

    #[test]
    fn batch_neighbors_are_closer_than_other_networks() {
        let base = ScenarioDescriptor::of(&toy::small_chain_lut()).with_batch(1);
        let batch2 = ScenarioDescriptor::of(&toy::small_chain_lut()).with_batch(2);
        let other = ScenarioDescriptor::of(&toy::fig1_lut()).with_batch(1);
        let near = base.distance(&batch2);
        let far = base.distance(&other);
        assert!(
            near < far,
            "batch neighbor ({near}) must beat a different network ({far})"
        );
        assert!(near <= PER_BATCH_DOUBLING + 1e-12, "only the batch differs");
    }

    #[test]
    fn objective_mismatch_dominates_batch_deltas() {
        let lat = ScenarioDescriptor::of(&toy::small_chain_lut())
            .with_batch(1)
            .with_objective(&Objective::Latency);
        let nrg = ScenarioDescriptor::of(&toy::small_chain_lut())
            .with_batch(1)
            .with_objective(&Objective::Energy);
        let batch8 = ScenarioDescriptor::of(&toy::small_chain_lut())
            .with_batch(8)
            .with_objective(&Objective::Latency);
        assert!(lat.distance(&nrg) > lat.distance(&batch8));
    }

    #[test]
    fn edit_cost_sees_structure() {
        let chain = ScenarioDescriptor::of(&toy::small_chain_lut());
        let mut shorter = chain.clone();
        shorter.layers.pop();
        // One deletion over max-length layers.
        let d = chain.distance(&shorter);
        assert!(d > 0.0 && d <= 1.0, "structural delta is bounded: {d}");
    }

    #[test]
    fn platform_term_is_monotone_in_spec_divergence_and_bounded() {
        use crate::PlatformSpec;
        let mk = |name: &str, features: Vec<f64>| {
            let mut d = ScenarioDescriptor::of(&toy::small_chain_lut()).with_batch(1);
            d.platform = name.to_string();
            d.with_platform_features(features)
        };
        let base = mk("a", PlatformSpec::tx2().features());
        let mut mild_spec = PlatformSpec::tx2();
        if let Some(gpu) = &mut mild_spec.gpu {
            gpu.compute_scale = 1.5;
        }
        let mild = mk("b", mild_spec.features());
        let wild = mk("c", PlatformSpec::gpu_heavy().features());
        let legacy = mk("d", Vec::new());
        let (near, far, flat) = (
            base.distance(&mild),
            base.distance(&wild),
            base.distance(&legacy),
        );
        assert!(near > 0.0, "diverging specs must be apart: {near}");
        assert!(
            near < far,
            "more divergence, more distance: {near} vs {far}"
        );
        assert!(
            far < PLATFORM_MISMATCH,
            "featured divergence stays below the flat penalty: {far}"
        );
        assert_eq!(
            flat, PLATFORM_MISMATCH,
            "legacy descriptors keep the flat term"
        );
        // Identically-specced twins under different names are free.
        let twin = mk("e", PlatformSpec::tx2().features());
        assert_eq!(base.distance(&twin), 0.0);
        // Still symmetric with features on.
        assert_eq!(base.distance(&wild), wild.distance(&base));
    }

    #[test]
    fn platform_features_change_fingerprint_only_when_present() {
        let base = ScenarioDescriptor::of(&toy::fig1_lut());
        let with_features = base
            .clone()
            .with_platform_features(crate::PlatformSpec::gpu_heavy().features());
        assert_ne!(base.fingerprint(), with_features.fingerprint());
        // An explicitly-empty vector is the absent marker: same identity.
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_platform_features(Vec::new())
                .fingerprint()
        );
    }

    #[test]
    fn serde_roundtrip() {
        let desc = ScenarioDescriptor::of(&toy::fig1_lut())
            .with_batch(2)
            .with_objective(&Objective::Weighted { lambda: 0.5 });
        let json = serde_json::to_string(&desc).expect("serializes");
        let back: ScenarioDescriptor = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(desc, back);
        assert_eq!(desc.fingerprint(), back.fingerprint());
    }
}
