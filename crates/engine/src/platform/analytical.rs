//! Roofline-style analytical model of the Jetson TX-2 ("sim-TX2").
//!
//! Each layer time is `max(compute, memory) + launch`:
//!
//! * `compute = MACs / (sustained_GMACs · utilization)` — sustained
//!   throughput depends on (library, algorithm, lowering, processor);
//!   utilization droops for small layers (`macs / (macs + knee)`), which is
//!   what makes tiny networks launch/occupancy-bound on the GPU;
//! * `memory = bytes_touched / (bandwidth · efficiency)` — bytes include
//!   inputs, outputs, weights and lowering scratch (e.g. the `im2col` patch
//!   matrix), so FC layers are bandwidth-bound as on real hardware;
//! * `launch` — per-kernel dispatch overhead (dominant for GPU primitives
//!   on small layers; the reason LeNet-5's best GPGPU solution is pure CPU).
//!
//! Constants are calibrated so the *relative* shapes of the paper's Table II
//! hold (see DESIGN.md §2 and EXPERIMENTS.md); they are not claimed to be
//! microarchitecturally exact.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn_nn::{LayerKind, LayerTag, Network, Node};
use qsdnn_primitives::{Algorithm, Library, Lowering, Primitive, Processor};
use qsdnn_tensor::Shape;

use super::Platform;

/// Tunable constants of the analytical model. `Default` is the sim-TX2
/// calibration used by all paper experiments.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlatformConfig {
    /// Effective single-thread CPU memory bandwidth (GB/s).
    pub cpu_bandwidth_gbs: f64,
    /// Per-kernel CPU call overhead (ms).
    pub cpu_launch_ms: f64,
    /// CPU utilization knee (MACs at which efficiency reaches 50%).
    pub cpu_saturation_macs: f64,
    /// Effective GPU memory bandwidth (GB/s).
    pub gpu_bandwidth_gbs: f64,
    /// Per-kernel GPU launch overhead (ms).
    pub gpu_launch_ms: f64,
    /// GPU utilization knee (MACs at which occupancy reaches 50%).
    pub gpu_saturation_macs: f64,
    /// CPU↔GPU copy bandwidth over the shared-memory interconnect (GB/s).
    pub transfer_gbs: f64,
    /// Fixed CPU↔GPU transfer latency (ms).
    pub transfer_latency_ms: f64,
    /// Layout-repack bandwidth on the CPU (GB/s).
    pub repack_cpu_gbs: f64,
    /// Layout-repack bandwidth on the GPU (GB/s).
    pub repack_gpu_gbs: f64,
    /// Multiplicative measurement-noise amplitude (e.g. 0.03 = ±3%).
    pub noise: f64,
    /// Noise RNG seed.
    pub seed: u64,
    /// Active power of one CPU core under load (W).
    pub cpu_power_w: f64,
    /// Active power of the GPU under load (W).
    pub gpu_power_w: f64,
    /// Power drawn while moving data across the interconnect (W).
    pub transfer_power_w: f64,
    /// Sustained CPU compute multiplier over the TX-2-class envelope
    /// tables (1.0 = TX-2; 0, the serde default for configs predating the
    /// field, is treated as unscaled).
    #[serde(default)]
    pub cpu_compute_scale: f64,
    /// Sustained GPU compute multiplier over the TX-2-class envelope
    /// tables (1.0 = TX-2; 0, the serde default for configs predating the
    /// field, is treated as unscaled).
    #[serde(default)]
    pub gpu_compute_scale: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            cpu_bandwidth_gbs: 8.0,
            cpu_launch_ms: 0.002,
            cpu_saturation_macs: 2.0e4,
            gpu_bandwidth_gbs: 30.0,
            gpu_launch_ms: 0.05,
            gpu_saturation_macs: 3.0e6,
            transfer_gbs: 16.0,
            transfer_latency_ms: 0.35,
            repack_cpu_gbs: 4.0,
            repack_gpu_gbs: 25.0,
            noise: 0.03,
            seed: 0xDA7E_2019,
            cpu_power_w: 1.8,
            gpu_power_w: 7.0,
            transfer_power_w: 2.5,
            cpu_compute_scale: 1.0,
            gpu_compute_scale: 1.0,
        }
    }
}

/// Shape-regime multiplier on sustained convolution throughput.
///
/// Real libraries win in different regimes — NNPACK's Winograd tiling pays
/// off on large spatial maps, ArmCL's on deep narrow ones; `kn2row`
/// degenerates to a single GEMM for 1×1 kernels; `im2col`/`im2row` amortize
/// best on big kernels. This is what makes the *mixed* CPU optimum clearly
/// beat every single library, as in the paper's Table II.
fn conv_regime_factor(prim: &Primitive, node: &Node) -> f64 {
    let (kernel, _) = match &node.desc.kind {
        LayerKind::Conv(p) => (p.kernel, p.stride),
        _ => return 1.0,
    };
    let spatial = node.output_shape.h * node.output_shape.w;
    let channels = node.output_shape.c;
    match (prim.library, prim.algorithm, prim.lowering) {
        (Library::Nnpack, Algorithm::Winograd, _) => {
            let mut f = 1.0;
            if spatial >= 32 * 32 {
                f *= 1.30; // large tiles amortize the transforms
            }
            if channels > 256 {
                f *= 0.85;
            }
            f
        }
        (Library::ArmCl, Algorithm::Winograd, _) => {
            let mut f = 1.0;
            if spatial >= 56 * 56 {
                f *= 0.80; // working set falls out of L2 on big maps
            }
            if channels > 256 {
                f *= 1.10;
            }
            f
        }
        // No patch copy at all for pointwise kernels: a single plain GEMM.
        (Library::Blas, _, Lowering::Kn2row) if kernel == (1, 1) => 1.6,
        // Big patches raise the lowered GEMM's arithmetic intensity.
        (Library::Blas, _, Lowering::Im2col | Lowering::Im2row) if kernel.0 >= 5 => 1.3,
        _ => 1.0,
    }
}

/// Sustained throughput (GMAC/s at full utilization) and memory-bandwidth
/// efficiency (fraction of the processor's bandwidth) for one primitive on
/// one layer kind.
fn envelope(prim: &Primitive, tag: LayerTag) -> (f64, f64) {
    use Algorithm as A;
    use Library as L;
    match tag {
        LayerTag::Input => (f64::INFINITY, 1.0),
        LayerTag::Conv => match (prim.library, prim.algorithm, prim.lowering) {
            (L::Vanilla, _, _) => (0.12, 0.30),
            (L::Blas, A::Gemm, Lowering::Im2col) => match prim.blas {
                Some(qsdnn_gemm::BlasBackend::AtlasLike) => (2.0, 0.60),
                _ => (2.8, 0.65),
            },
            (L::Blas, A::Gemm, Lowering::Im2row) => match prim.blas {
                Some(qsdnn_gemm::BlasBackend::AtlasLike) => (2.2, 0.60),
                _ => (3.0, 0.65),
            },
            (L::Blas, A::Gemm, Lowering::Kn2row) => match prim.blas {
                Some(qsdnn_gemm::BlasBackend::AtlasLike) => (2.4, 0.65),
                _ => (3.2, 0.70),
            },
            (L::Nnpack, A::DirectOpt, _) => (2.4, 0.65),
            (L::Nnpack, A::Winograd, _) => (5.0, 0.60),
            (L::ArmCl, A::Gemm, _) => (3.4, 0.70),
            (L::ArmCl, A::Winograd, _) => (6.0, 0.65),
            (L::Sparse, _, _) => (1.6, 0.50),
            (L::CuDnn, A::Gemm, _) => (140.0, 0.80),
            (L::CuDnn, A::Winograd, _) => (240.0, 0.75),
            _ => (0.1, 0.3),
        },
        LayerTag::DepthwiseConv => match prim.library {
            L::Vanilla => (0.10, 0.25),
            L::ArmCl => (1.2, 0.70),
            // Deliberately poor: contemporary cuDNN depth-wise kernels were
            // known to underperform (the paper's MobileNet finding hinges on
            // this).
            L::CuDnn => (1.0, 0.20),
            _ => (0.1, 0.3),
        },
        LayerTag::Pool => match prim.library {
            L::Vanilla => (0.25, 0.35),
            L::Nnpack => (1.5, 0.70),
            L::ArmCl => (1.2, 0.70),
            L::CuDnn => (50.0, 0.75),
            _ => (0.2, 0.3),
        },
        LayerTag::Relu => match prim.library {
            L::Vanilla => (1.2, 0.45),
            L::ArmCl => (2.0, 0.75),
            L::CuDnn => (80.0, 0.80),
            _ => (1.0, 0.4),
        },
        LayerTag::BatchNorm => match prim.library {
            L::Vanilla => (0.9, 0.40),
            L::ArmCl => (1.8, 0.70),
            L::CuDnn => (70.0, 0.80),
            _ => (0.8, 0.4),
        },
        LayerTag::Lrn => match prim.library {
            L::Vanilla => (0.18, 0.30),
            L::CuDnn => (40.0, 0.75),
            _ => (0.15, 0.3),
        },
        LayerTag::Fc => match (prim.library, prim.algorithm) {
            (L::Vanilla, _) => (1.2, 0.60),
            (L::Blas, A::Gemv) => match prim.blas {
                Some(qsdnn_gemm::BlasBackend::AtlasLike) => (1.4, 0.70),
                _ => (1.6, 0.80),
            },
            // Batched GEMM reaches higher arithmetic throughput than GEMV
            // (register blocking over the batch) but pays a transpose/pack,
            // reflected in the slightly lower bandwidth efficiency.
            (L::Blas, A::Gemm) => match prim.blas {
                Some(qsdnn_gemm::BlasBackend::AtlasLike) => (2.0, 0.60),
                _ => (2.2, 0.70),
            },
            (L::Sparse, _) => (1.0, 0.50),
            (L::CuBlas, _) => (80.0, 0.80),
            _ => (0.4, 0.3),
        },
        LayerTag::Softmax => match prim.library {
            L::Vanilla => (0.5, 0.40),
            L::CuDnn => (30.0, 0.75),
            _ => (0.4, 0.3),
        },
        LayerTag::Concat => match prim.library {
            L::Vanilla => (1.5, 0.50),
            L::CuDnn => (60.0, 0.80),
            _ => (1.0, 0.4),
        },
        LayerTag::Add => match prim.library {
            L::Vanilla => (1.2, 0.45),
            L::ArmCl => (2.0, 0.75),
            L::CuDnn => (60.0, 0.80),
            _ => (1.0, 0.4),
        },
    }
}

/// Weight density used by the Sparse library's effective-work model.
fn density_of(node: &Node) -> f64 {
    match &node.desc.kind {
        LayerKind::Conv(p) | LayerKind::DepthwiseConv(p) => p.weight_density as f64,
        LayerKind::Fc(p) => p.weight_density as f64,
        _ => 1.0,
    }
}

/// Scratch bytes a lowering touches beyond inputs/outputs/weights.
fn lowering_scratch_bytes(node: &Node, in_shapes: &[Shape], prim: &Primitive) -> f64 {
    let (kh, kw) = match &node.desc.kind {
        LayerKind::Conv(p) => p.kernel,
        _ => return 0.0,
    };
    let taps = (kh * kw) as f64;
    let out = node.output_shape;
    match prim.lowering {
        // Patch matrix: C*KH*KW x OH*OW floats, written then read.
        Lowering::Im2col | Lowering::Im2row => {
            let c = in_shapes.first().map_or(0, |s| s.c) as f64;
            2.0 * c * taps * (out.h * out.w) as f64 * 4.0
        }
        // Shifted accumulation re-touches the output once per tap.
        Lowering::Kn2row => taps * out.bytes() as f64,
        Lowering::None => {
            if prim.algorithm == Algorithm::Winograd {
                // Input/output transform scratch.
                let in_bytes = in_shapes.first().map_or(0, Shape::bytes) as f64;
                in_bytes + out.bytes() as f64
            } else {
                0.0
            }
        }
    }
}

/// The sim-TX2 analytical platform.
///
/// # Examples
///
/// ```
/// use qsdnn_engine::{AnalyticalPlatform, Platform};
/// use qsdnn_nn::zoo;
/// use qsdnn_primitives::registry;
///
/// let net = zoo::vgg19(1);
/// let conv = &net.layers()[1];
/// let mut p = AnalyticalPlatform::tx2();
/// let vanilla = registry::candidates(conv)[0];
/// let t = p.layer_time_ms(&net, conv, &vanilla);
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticalPlatform {
    name: String,
    config: PlatformConfig,
    rng: SmallRng,
}

impl AnalyticalPlatform {
    /// Platform with the default sim-TX2 calibration.
    pub fn tx2() -> Self {
        AnalyticalPlatform::with_config(PlatformConfig::default())
    }

    /// Platform with custom constants (ablations, other devices). Reports
    /// the historical `"sim-tx2"` name; use [`AnalyticalPlatform::from_spec`]
    /// for named targets.
    pub fn with_config(config: PlatformConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        AnalyticalPlatform {
            name: "sim-tx2".to_string(),
            config,
            rng,
        }
    }

    /// Platform driven by a data-described target: the spec's numbers
    /// become the model constants and the spec's name becomes the
    /// platform (and therefore LUT) name.
    pub fn from_spec(spec: &super::PlatformSpec) -> Self {
        let mut platform = AnalyticalPlatform::with_config(spec.to_config());
        platform.name = spec.name.clone();
        platform
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Noise-free base time — what the profiler's repeat-averaging should
    /// converge to.
    pub fn base_layer_time_ms(&self, net: &Network, node: &Node, prim: &Primitive) -> f64 {
        if node.desc.tag() == LayerTag::Input {
            return 0.0;
        }
        let in_shapes = net.input_shapes(node.id);
        let mut macs = node.desc.macs(&in_shapes, node.output_shape) as f64;
        if prim.library == Library::Sparse {
            macs *= density_of(node);
        }
        let (mut gmacs, mem_eff) = envelope(prim, node.desc.tag());
        gmacs *= conv_regime_factor(prim, node);
        let (bw, launch, knee, scale) = match prim.processor {
            Processor::Cpu => (
                self.config.cpu_bandwidth_gbs,
                self.config.cpu_launch_ms,
                self.config.cpu_saturation_macs,
                self.config.cpu_compute_scale,
            ),
            Processor::Gpu => (
                self.config.gpu_bandwidth_gbs,
                self.config.gpu_launch_ms,
                self.config.gpu_saturation_macs,
                self.config.gpu_compute_scale,
            ),
        };
        if scale > 0.0 {
            gmacs *= scale;
        }
        let util = macs / (macs + knee);
        let compute_ms = if macs > 0.0 {
            macs / (gmacs * 1e6 * util.max(1e-9))
        } else {
            0.0
        };

        let in_bytes: f64 = in_shapes.iter().map(|s| s.bytes() as f64).sum();
        let mut weight_bytes = node.desc.param_count(&in_shapes) as f64 * 4.0;
        if prim.library == Library::Sparse {
            // CSR stores value + column index per surviving weight.
            weight_bytes *= density_of(node) * 2.0;
        }
        if node.desc.tag() == LayerTag::Fc
            && matches!(prim.algorithm, Algorithm::Gemv | Algorithm::SparseCsr)
        {
            // GEMV/CSR re-stream the weight matrix once per batch element;
            // batched GEMM amortizes it — the classic batched-FC crossover.
            weight_bytes *= node.output_shape.n.max(1) as f64;
        }
        let bytes = in_bytes
            + node.output_shape.bytes() as f64
            + weight_bytes
            + lowering_scratch_bytes(node, &in_shapes, prim);
        let memory_ms = bytes / (bw * mem_eff * 1e6);

        compute_ms.max(memory_ms) + launch
    }
}

impl Platform for AnalyticalPlatform {
    fn layer_time_ms(&mut self, net: &Network, node: &Node, prim: &Primitive) -> f64 {
        let base = self.base_layer_time_ms(net, node, prim);
        if base == 0.0 || self.config.noise == 0.0 {
            return base;
        }
        let eps: f64 = self.rng.gen_range(-1.0..1.0);
        base * (1.0 + self.config.noise * eps)
    }

    fn conversion_time_ms(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64 {
        let bytes = shape.bytes() as f64;
        let same_proc = from.processor == to.processor;
        let same_layout = from.layout == to.layout;
        if same_proc && same_layout {
            return 0.0;
        }
        if same_proc {
            // Pure layout repack on whichever processor holds the data.
            let (bw, launch) = match from.processor {
                Processor::Cpu => (self.config.repack_cpu_gbs, self.config.cpu_launch_ms),
                Processor::Gpu => (self.config.repack_gpu_gbs, self.config.gpu_launch_ms),
            };
            return bytes / (bw * 1e6) + launch;
        }
        // Cross-processor copy (+ repack at the destination if needed).
        let mut t = bytes / (self.config.transfer_gbs * 1e6) + self.config.transfer_latency_ms;
        if !same_layout {
            let (bw, launch) = match to.processor {
                Processor::Cpu => (self.config.repack_cpu_gbs, self.config.cpu_launch_ms),
                Processor::Gpu => (self.config.repack_gpu_gbs, self.config.gpu_launch_ms),
            };
            t += bytes / (bw * 1e6) + launch;
        }
        t
    }

    fn processor_power_w(&self, processor: Processor) -> f64 {
        match processor {
            Processor::Cpu => self.config.cpu_power_w,
            Processor::Gpu => self.config.gpu_power_w,
        }
    }

    fn transfer_power_w(&self) -> f64 {
        self.config.transfer_power_w
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_nn::zoo;
    use qsdnn_primitives::registry;
    use qsdnn_tensor::DataLayout;

    fn find_prim(cands: &[Primitive], f: impl Fn(&Primitive) -> bool) -> Primitive {
        *cands.iter().find(|p| f(p)).expect("primitive present")
    }

    #[test]
    fn winograd_beats_vanilla_by_order_of_magnitude() {
        let net = zoo::vgg19(1);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv3_1")
            .unwrap();
        let cands = registry::candidates(conv);
        let p = AnalyticalPlatform::tx2();
        let vanilla = p.base_layer_time_ms(&net, conv, &cands[0]);
        let wino = find_prim(&cands, |p| {
            p.algorithm == Algorithm::Winograd && p.library == Library::ArmCl
        });
        let fast = p.base_layer_time_ms(&net, conv, &wino);
        assert!(
            vanilla / fast > 20.0,
            "vanilla {vanilla} vs winograd {fast}"
        );
    }

    #[test]
    fn fc_is_bandwidth_bound() {
        // VGG fc6: 103 MMACs but 411 MB of weights. Memory term dominates.
        let net = zoo::vgg19(1);
        let fc6 = net.layers().iter().find(|l| l.desc.name == "fc6").unwrap();
        let cands = registry::candidates(fc6);
        let p = AnalyticalPlatform::tx2();
        let blas = find_prim(&cands, |p| p.library == Library::Blas);
        let t = p.base_layer_time_ms(&net, fc6, &blas);
        // 411 MB at ~6.4 GB/s effective is ~60 ms.
        assert!(t > 20.0 && t < 200.0, "fc6 blas time {t}");
    }

    #[test]
    fn gpu_launch_dominates_tiny_layers() {
        // LeNet pool1 does ~3K ops: the GPU primitive is launch/occupancy
        // bound and loses to the NNPACK fast path outright.
        let net = zoo::lenet5(1);
        let pool1 = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "pool1")
            .unwrap();
        let cands = registry::candidates(pool1);
        let p = AnalyticalPlatform::tx2();
        let gpu = find_prim(&cands, |p| p.processor == Processor::Gpu);
        let cpu = find_prim(&cands, |p| p.library == Library::Nnpack);
        let t_gpu = p.base_layer_time_ms(&net, pool1, &gpu);
        let t_cpu = p.base_layer_time_ms(&net, pool1, &cpu);
        assert!(
            t_gpu > t_cpu,
            "gpu {t_gpu} should lose to cpu {t_cpu} on LeNet pool1"
        );
        assert!(t_gpu >= p.config().gpu_launch_ms);
    }

    #[test]
    fn gpu_wins_big_convolutions() {
        let net = zoo::vgg19(1);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv2_1")
            .unwrap();
        let cands = registry::candidates(conv);
        let p = AnalyticalPlatform::tx2();
        let gpu = find_prim(&cands, |p| p.library == Library::CuDnn);
        let best_cpu = cands
            .iter()
            .filter(|p| p.processor == Processor::Cpu)
            .map(|pr| p.base_layer_time_ms(&net, conv, pr))
            .fold(f64::INFINITY, f64::min);
        let t_gpu = p.base_layer_time_ms(&net, conv, &gpu);
        assert!(t_gpu < best_cpu, "gpu {t_gpu} vs best cpu {best_cpu}");
    }

    #[test]
    fn sparse_fc_wins_at_low_density() {
        let net = zoo::alexnet(1); // fc6/fc7 density 0.25
        let fc6 = net.layers().iter().find(|l| l.desc.name == "fc6").unwrap();
        let cands = registry::candidates(fc6);
        let p = AnalyticalPlatform::tx2();
        let sparse = find_prim(&cands, |p| p.library == Library::Sparse);
        let blas = find_prim(&cands, |p| {
            p.library == Library::Blas
                && p.blas == Some(qsdnn_gemm::BlasBackend::OpenBlasLike)
                && p.algorithm == Algorithm::Gemv
        });
        let t_sparse = p.base_layer_time_ms(&net, fc6, &sparse);
        let t_blas = p.base_layer_time_ms(&net, fc6, &blas);
        assert!(t_sparse < t_blas, "sparse {t_sparse} vs blas {t_blas}");
    }

    #[test]
    fn conversion_costs_are_ordered() {
        let p = AnalyticalPlatform::tx2();
        let shape = Shape::new(1, 64, 56, 56);
        let cpu_nchw = Primitive::vanilla();
        let mut cpu_nhwc = Primitive::vanilla();
        cpu_nhwc.layout = DataLayout::Nhwc;
        let mut gpu_nchw = Primitive::vanilla();
        gpu_nchw.processor = Processor::Gpu;
        let same = p.conversion_time_ms(shape, &cpu_nchw, &cpu_nchw);
        let repack = p.conversion_time_ms(shape, &cpu_nchw, &cpu_nhwc);
        let transfer = p.conversion_time_ms(shape, &cpu_nchw, &gpu_nchw);
        assert_eq!(same, 0.0);
        assert!(repack > 0.0);
        assert!(transfer > repack, "transfer {transfer} vs repack {repack}");
    }

    #[test]
    fn noise_averages_to_base() {
        let net = zoo::lenet5(1);
        let conv1 = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv1")
            .unwrap();
        let prim = registry::candidates(conv1)[1];
        let mut p = AnalyticalPlatform::tx2();
        let base = p.base_layer_time_ms(&net, conv1, &prim);
        let mean: f64 = (0..500)
            .map(|_| p.layer_time_ms(&net, conv1, &prim))
            .sum::<f64>()
            / 500.0;
        assert!(
            (mean - base).abs() / base < 0.01,
            "mean {mean} vs base {base}"
        );
    }

    #[test]
    fn batched_fc_prefers_gemm_over_gemv() {
        // At batch 1 GEMV wins (no transpose/pack overhead modelled in its
        // envelope); by batch 8 the re-streamed weights make GEMM win.
        let p = AnalyticalPlatform::tx2();
        let pick_best = |batch: usize| {
            let net = zoo::lenet5(batch);
            let ip1 = net.layers().iter().find(|l| l.desc.name == "ip1").unwrap();
            registry::candidates(ip1)
                .into_iter()
                .filter(|c| {
                    c.library == Library::Blas
                        && c.blas == Some(qsdnn_gemm::BlasBackend::OpenBlasLike)
                })
                .min_by(|a, b| {
                    p.base_layer_time_ms(&net, ip1, a)
                        .partial_cmp(&p.base_layer_time_ms(&net, ip1, b))
                        .unwrap()
                })
                .unwrap()
        };
        assert_eq!(pick_best(1).algorithm, Algorithm::Gemv);
        assert_eq!(pick_best(8).algorithm, Algorithm::Gemm);
    }

    #[test]
    fn input_layer_is_free() {
        let net = zoo::lenet5(1);
        let mut p = AnalyticalPlatform::tx2();
        assert_eq!(
            p.layer_time_ms(&net, &net.layers()[0], &Primitive::vanilla()),
            0.0
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = zoo::lenet5(1);
        let conv1 = &net.layers()[1];
        let prim = registry::candidates(conv1)[1];
        let mut a = AnalyticalPlatform::tx2();
        let mut b = AnalyticalPlatform::tx2();
        for _ in 0..10 {
            assert_eq!(
                a.layer_time_ms(&net, conv1, &prim),
                b.layer_time_ms(&net, conv1, &prim)
            );
        }
    }
}
