//! Wall-clock platform: times the real Rust kernels on the host CPU.

use std::collections::HashMap;
use std::time::Instant;

use qsdnn_nn::{Network, Node};
use qsdnn_primitives::{execute_layer, generate_weights, LayerWeights, Primitive, Processor};
use qsdnn_tensor::{Shape, Tensor};

use super::{AnalyticalPlatform, Platform};

/// Times each primitive by actually executing its kernel on the host CPU.
///
/// GPU primitives cannot be timed on the host; they are delegated to the
/// embedded [`AnalyticalPlatform`] (DESIGN.md §2). Host-CPU absolute times
/// will differ from a Cortex-A57, but the *relative* ordering of the
/// algorithm families (direct ≪ GEMM-lowered < Winograd for 3×3) is
/// preserved, which is what the search consumes.
pub struct MeasuredPlatform {
    name: String,
    seed: u64,
    analytical: AnalyticalPlatform,
    inputs: HashMap<(String, usize), Vec<Tensor>>,
    weights: HashMap<(String, usize), LayerWeights>,
}

impl MeasuredPlatform {
    /// Creates a measured platform; `seed` controls synthetic inputs and
    /// weights. GPU fallback and powers come from the TX-2 spec.
    pub fn new(seed: u64) -> Self {
        MeasuredPlatform {
            name: "measured-host".to_string(),
            seed,
            analytical: AnalyticalPlatform::tx2(),
            inputs: HashMap::new(),
            weights: HashMap::new(),
        }
    }

    /// Measured platform described by a spec: the spec's name labels the
    /// LUTs, its seed drives the fixtures, and its numbers parameterize
    /// the embedded analytical fallback (GPU primitives, cross-processor
    /// links) and the per-processor powers.
    pub fn from_spec(spec: &super::PlatformSpec) -> Self {
        MeasuredPlatform {
            name: spec.name.clone(),
            seed: spec.seed,
            analytical: AnalyticalPlatform::from_spec(spec),
            inputs: HashMap::new(),
            weights: HashMap::new(),
        }
    }

    fn fixture(&mut self, net: &Network, node: &Node) -> (Vec<Tensor>, LayerWeights) {
        let key = (net.name().to_string(), node.id.0);
        let seed = self.seed;
        let inputs = self
            .inputs
            .entry(key.clone())
            .or_insert_with(|| {
                let shapes: Vec<Shape> = if node.inputs.is_empty() {
                    vec![node.output_shape]
                } else {
                    net.input_shapes(node.id)
                };
                shapes
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        Tensor::random(
                            s,
                            qsdnn_tensor::DataLayout::Nchw,
                            seed ^ (node.id.0 as u64) << 8 ^ i as u64,
                        )
                    })
                    .collect()
            })
            .clone();
        let weights = self
            .weights
            .entry(key)
            .or_insert_with(|| generate_weights(node, &net.input_shapes(node.id), seed))
            .clone();
        (inputs, weights)
    }
}

impl Platform for MeasuredPlatform {
    fn layer_time_ms(&mut self, net: &Network, node: &Node, prim: &Primitive) -> f64 {
        if prim.processor == Processor::Gpu {
            return self.analytical.layer_time_ms(net, node, prim);
        }
        let (inputs, weights) = self.fixture(net, node);
        let converted: Vec<Tensor> = inputs.iter().map(|t| t.to_layout(prim.layout)).collect();
        let refs: Vec<&Tensor> = converted.iter().collect();
        let start = Instant::now();
        let out = execute_layer(node, prim, &refs, &weights);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        // Keep the optimizer from discarding the computation.
        std::hint::black_box(out.as_slice().first().copied());
        elapsed
    }

    fn conversion_time_ms(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64 {
        if from.processor != to.processor {
            // Cross-processor copies cannot be measured on the host.
            return self.analytical.conversion_time_ms(shape, from, to);
        }
        if from.layout == to.layout {
            return 0.0;
        }
        let t = Tensor::random(shape, from.layout, self.seed);
        let start = Instant::now();
        let converted = t.to_layout(to.layout);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(converted.as_slice().first().copied());
        elapsed
    }

    fn processor_power_w(&self, processor: Processor) -> f64 {
        self.analytical.processor_power_w(processor)
    }

    fn transfer_power_w(&self) -> f64 {
        self.analytical.transfer_power_w()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_nn::zoo;
    use qsdnn_primitives::registry;

    #[test]
    fn measures_positive_times_for_cpu_primitives() {
        let net = zoo::tiny_cnn(1);
        let mut p = MeasuredPlatform::new(3);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv1")
            .unwrap();
        for prim in registry::candidates(conv) {
            if prim.processor == Processor::Cpu {
                let t = p.layer_time_ms(&net, conv, &prim);
                assert!(t > 0.0, "{prim}: {t}");
            }
        }
    }

    #[test]
    fn vanilla_direct_is_slower_than_gemm_on_bigger_convs() {
        // Use a moderately sized conv so the ordering is reliable.
        let net = zoo::sphereface20(1);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv2_1")
            .unwrap();
        let mut p = MeasuredPlatform::new(3);
        let cands = registry::candidates(conv);
        let vanilla = cands[0];
        let gemm = cands
            .iter()
            .find(|c| c.library == qsdnn_primitives::Library::Blas)
            .copied()
            .unwrap();
        // Warm up, then take the best of 3 to de-noise.
        let tv = (0..3)
            .map(|_| p.layer_time_ms(&net, conv, &vanilla))
            .fold(f64::MAX, f64::min);
        let tg = (0..3)
            .map(|_| p.layer_time_ms(&net, conv, &gemm))
            .fold(f64::MAX, f64::min);
        assert!(tv > tg, "vanilla {tv} should be slower than blas gemm {tg}");
    }

    #[test]
    fn gpu_primitives_fall_back_to_analytical() {
        let net = zoo::tiny_cnn(1);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv1")
            .unwrap();
        let gpu = registry::candidates(conv)
            .into_iter()
            .find(|c| c.processor == Processor::Gpu)
            .unwrap();
        let mut p = MeasuredPlatform::new(3);
        let t = p.layer_time_ms(&net, conv, &gpu);
        assert!(t >= AnalyticalPlatform::tx2().config().gpu_launch_ms * 0.9);
    }

    #[test]
    fn layout_conversion_is_measured() {
        let p = MeasuredPlatform::new(1);
        let mut nhwc = Primitive::vanilla();
        nhwc.layout = qsdnn_tensor::DataLayout::Nhwc;
        let t = p.conversion_time_ms(Shape::new(1, 32, 32, 32), &Primitive::vanilla(), &nhwc);
        assert!(t > 0.0);
        let zero = p.conversion_time_ms(
            Shape::new(1, 32, 32, 32),
            &Primitive::vanilla(),
            &Primitive::vanilla(),
        );
        assert_eq!(zero, 0.0);
    }
}
