//! Platform abstraction: where layer times and conversion penalties come
//! from.
//!
//! The paper obtains all numbers empirically on a Jetson TX-2. Targets are
//! described as pure data — a [`PlatformSpec`] names the core types, their
//! bandwidths/powers and the CPU↔GPU link — and a [`PlatformRegistry`]
//! instantiates a live [`Platform`] impl from a spec (built-in or loaded
//! from a JSON spec directory). Two implementations exist behind the
//! trait:
//!
//! * [`AnalyticalPlatform`](crate::AnalyticalPlatform) — a calibrated
//!   roofline-style model driven by the spec numbers (deterministic,
//!   instant; the `sim-tx2` spec is used for all paper-scale experiments);
//! * [`MeasuredPlatform`](crate::MeasuredPlatform) — wall-clock timing of
//!   the real Rust kernels on the host CPU (GPU primitives fall back to the
//!   analytical model; see DESIGN.md §2).

mod analytical;
mod measured;
mod registry;
mod spec;

pub use analytical::{AnalyticalPlatform, PlatformConfig};
pub use measured::MeasuredPlatform;
pub use registry::{PlatformError, PlatformRegistry};
pub use spec::{CoreSpec, LinkSpec, PlatformKind, PlatformSpec};

use qsdnn_nn::{Network, Node};
use qsdnn_primitives::Primitive;
use qsdnn_tensor::Shape;

/// Source of layer execution times and compatibility-layer penalties.
///
/// `layer_time_ms` takes `&mut self` because implementations may keep
/// internal state (RNG for measurement noise, weight caches, timers).
pub trait Platform {
    /// One measured/modelled execution of `node` under `primitive`, in
    /// milliseconds. Successive calls may return slightly different values
    /// (measurement noise); the profiler averages over its repeat count.
    fn layer_time_ms(&mut self, net: &Network, node: &Node, primitive: &Primitive) -> f64;

    /// Cost (ms) of the compatibility layer needed between a producer
    /// running `from` and a consumer running `to`, for a tensor of `shape`:
    /// layout repack and/or CPU↔GPU transfer. Zero when fully compatible.
    fn conversion_time_ms(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64;

    /// Active power (W) drawn while `processor` executes a kernel. Every
    /// implementation sources this from its [`PlatformSpec`] powers — the
    /// default energy methods below multiply it into execution time, so
    /// two specs differing only in a core power rank energy-sensitive
    /// plans differently.
    fn processor_power_w(&self, processor: qsdnn_primitives::Processor) -> f64;

    /// Power (W) drawn while a conversion moves data across the
    /// interconnect; from the spec's link description.
    fn transfer_power_w(&self) -> f64;

    /// Energy (mJ) of one execution of `node` under `primitive` — the basis
    /// of the multi-objective reward extension (paper §VII future work).
    /// Default: execution time weighted by the spec's per-processor power.
    fn layer_energy_mj(&mut self, net: &Network, node: &Node, prim: &Primitive) -> f64 {
        let t = self.layer_time_ms(net, node, prim);
        t * self.processor_power_w(prim.processor)
    }

    /// Energy (mJ) of the compatibility layer between `from` and `to`.
    /// Default: the spec's transfer power times the conversion time.
    fn conversion_energy_mj(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64 {
        self.conversion_time_ms(shape, from, to) * self.transfer_power_w()
    }

    /// Human-readable platform name for reports.
    fn name(&self) -> &str;
}

/// Boxed platforms are platforms, so [`PlatformRegistry::instantiate`] fits
/// anywhere a concrete impl does (e.g. `Profiler<Box<dyn Platform>>`).
/// Every method delegates, overridden energies included.
impl<P: Platform + ?Sized> Platform for Box<P> {
    fn layer_time_ms(&mut self, net: &Network, node: &Node, primitive: &Primitive) -> f64 {
        (**self).layer_time_ms(net, node, primitive)
    }

    fn conversion_time_ms(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64 {
        (**self).conversion_time_ms(shape, from, to)
    }

    fn processor_power_w(&self, processor: qsdnn_primitives::Processor) -> f64 {
        (**self).processor_power_w(processor)
    }

    fn transfer_power_w(&self) -> f64 {
        (**self).transfer_power_w()
    }

    fn layer_energy_mj(&mut self, net: &Network, node: &Node, prim: &Primitive) -> f64 {
        (**self).layer_energy_mj(net, node, prim)
    }

    fn conversion_energy_mj(&self, shape: Shape, from: &Primitive, to: &Primitive) -> f64 {
        (**self).conversion_energy_mj(shape, from, to)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// What the search minimizes (paper §VII envisions "different reward
/// choices or multi-objective search").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Pure inference latency (the paper's reward).
    Latency,
    /// Pure energy per inference.
    Energy,
    /// `latency_ms + lambda · energy_mj` — a latency/energy trade-off knob.
    Weighted {
        /// Energy weight in ms/mJ.
        lambda: f64,
    },
}

impl Objective {
    /// Scalarizes a `(latency ms, energy mJ)` pair.
    pub fn scalarize(&self, time_ms: f64, energy_mj: f64) -> f64 {
        match self {
            Objective::Latency => time_ms,
            Objective::Energy => energy_mj,
            Objective::Weighted { lambda } => time_ms + lambda * energy_mj,
        }
    }

    /// Stable lowercase tag of the objective, λ included
    /// (`"latency"`, `"energy"`, `"weighted:0.5"`) — used by scenario
    /// descriptors and report tables.
    pub fn tag(&self) -> String {
        match self {
            Objective::Latency => "latency".to_string(),
            Objective::Energy => "energy".to_string(),
            Objective::Weighted { lambda } => format!("weighted:{lambda}"),
        }
    }
}

/// Which processors the search may use — Table II's "CPU" vs "GPGPU" modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Mode {
    /// CPU-only primitives.
    Cpu,
    /// CPU and GPU primitives (the heterogeneous setting).
    Gpgpu,
}

impl Mode {
    /// Whether `primitive` is admissible in this mode.
    pub fn admits(&self, primitive: &Primitive) -> bool {
        match self {
            Mode::Cpu => primitive.processor == qsdnn_primitives::Processor::Cpu,
            Mode::Gpgpu => true,
        }
    }

    /// Lowercase mode label used in report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Cpu => "cpu",
            Mode::Gpgpu => "gpgpu",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_primitives::{Algorithm, Library, Lowering, Primitive, Processor};
    use qsdnn_tensor::DataLayout;

    #[test]
    fn cpu_mode_rejects_gpu_primitives() {
        let gpu = Primitive::new(
            Library::CuDnn,
            Algorithm::Gemm,
            Lowering::Im2col,
            None,
            Processor::Gpu,
            DataLayout::Nchw,
        );
        assert!(!Mode::Cpu.admits(&gpu));
        assert!(Mode::Gpgpu.admits(&gpu));
        assert!(Mode::Cpu.admits(&Primitive::vanilla()));
    }

    #[test]
    fn mode_labels() {
        assert_eq!(Mode::Cpu.to_string(), "cpu");
        assert_eq!(Mode::Gpgpu.to_string(), "gpgpu");
    }
}
