//! Named collection of [`PlatformSpec`]s and the factory that turns a
//! spec into a live [`Platform`] impl.

use std::collections::BTreeMap;
use std::path::Path;

use super::{AnalyticalPlatform, MeasuredPlatform, Platform, PlatformKind, PlatformSpec};

/// Everything that can go wrong loading or resolving platform specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A requested platform name is not registered; carries the sorted
    /// list of names that are.
    Unknown {
        /// The name that failed to resolve.
        requested: String,
        /// Every registered name, sorted.
        available: Vec<String>,
    },
    /// A spec file under `--platform-dir` could not be read, parsed or
    /// validated; carries the offending path and the reason.
    BadSpecFile {
        /// Path of the offending file.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A spec tried to reuse an already-registered name (built-ins can
    /// never be shadowed, so `sim-tx2` always means the committed spec).
    Duplicate(String),
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Unknown {
                requested,
                available,
            } => write!(
                f,
                "unknown platform `{requested}` (available: {})",
                available.join(", ")
            ),
            PlatformError::BadSpecFile { path, reason } => {
                write!(f, "bad platform spec file {path}: {reason}")
            }
            PlatformError::Duplicate(name) => {
                write!(f, "platform `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Registry of data-described platforms, keyed by name.
///
/// Ships four built-ins — the default [`PlatformSpec::tx2`], the measured
/// host, and the two synthetic targets — and grows from `*.json` spec
/// files via [`PlatformRegistry::load_dir`]. Specs instantiate into live
/// [`Platform`] impls with [`PlatformRegistry::instantiate`].
///
/// # Examples
///
/// ```
/// use qsdnn_engine::{Platform, PlatformRegistry};
///
/// let registry = PlatformRegistry::builtin();
/// assert_eq!(registry.default_name(), "sim-tx2");
/// assert!(registry.names().len() >= 4);
/// let spec = registry.resolve("sim-gpu-heavy").expect("builtin");
/// assert_eq!(registry.instantiate(spec).name(), "sim-gpu-heavy");
/// ```
#[derive(Debug, Clone)]
pub struct PlatformRegistry {
    specs: BTreeMap<String, PlatformSpec>,
    default_name: String,
}

impl PlatformRegistry {
    /// Name of the default platform, the one an absent `platform` request
    /// field resolves to.
    pub const DEFAULT: &'static str = "sim-tx2";

    /// Registry holding only the four committed built-in specs.
    pub fn builtin() -> Self {
        let mut specs = BTreeMap::new();
        for spec in [
            PlatformSpec::tx2(),
            PlatformSpec::measured_host(),
            PlatformSpec::gpu_heavy(),
            PlatformSpec::cpu_only(),
        ] {
            specs.insert(spec.name.clone(), spec);
        }
        PlatformRegistry {
            specs,
            default_name: PlatformRegistry::DEFAULT.to_string(),
        }
    }

    /// Registers one validated spec; duplicate names are rejected so spec
    /// files can never shadow a built-in (cache keys depend on that).
    pub fn insert(&mut self, spec: PlatformSpec) -> Result<(), PlatformError> {
        if self.specs.contains_key(&spec.name) {
            return Err(PlatformError::Duplicate(spec.name));
        }
        self.specs.insert(spec.name.clone(), spec);
        Ok(())
    }

    /// Loads every `*.json` spec file in `dir` (sorted order), validating
    /// each. Returns how many were added; the first unreadable, unparsable
    /// or invalid file aborts with [`PlatformError::BadSpecFile`] naming
    /// it.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, PlatformError> {
        let bad = |reason: String| PlatformError::BadSpecFile {
            path: dir.display().to_string(),
            reason,
        };
        let entries = std::fs::read_dir(dir).map_err(|e| bad(e.to_string()))?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        paths.sort();
        let mut added = 0;
        for path in paths {
            let bad = |reason: String| PlatformError::BadSpecFile {
                path: path.display().to_string(),
                reason,
            };
            let text = std::fs::read_to_string(&path).map_err(|e| bad(e.to_string()))?;
            let spec: PlatformSpec =
                serde_json::from_str(&text).map_err(|e| bad(format!("invalid JSON: {e}")))?;
            spec.validate().map_err(bad)?;
            match self.insert(spec) {
                Ok(()) => added += 1,
                Err(PlatformError::Duplicate(name)) => {
                    return Err(bad(format!("duplicate platform name `{name}`")))
                }
                Err(other) => return Err(other),
            }
        }
        Ok(added)
    }

    /// Looks a spec up by exact name.
    pub fn get(&self, name: &str) -> Option<&PlatformSpec> {
        self.specs.get(name)
    }

    /// Resolves a request's platform field: empty means the default.
    pub fn resolve(&self, requested: &str) -> Result<&PlatformSpec, PlatformError> {
        let name = if requested.is_empty() {
            &self.default_name
        } else {
            requested
        };
        self.specs.get(name).ok_or_else(|| PlatformError::Unknown {
            requested: name.to_string(),
            available: self.names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// The name an empty `platform` field resolves to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// Points the default at another registered platform.
    pub fn set_default(&mut self, name: &str) -> Result<(), PlatformError> {
        if !self.specs.contains_key(name) {
            return Err(PlatformError::Unknown {
                requested: name.to_string(),
                available: self.names().iter().map(|s| s.to_string()).collect(),
            });
        }
        self.default_name = name.to_string();
        Ok(())
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.specs.keys().map(String::as_str).collect()
    }

    /// All registered specs, sorted by name.
    pub fn specs(&self) -> impl Iterator<Item = &PlatformSpec> {
        self.specs.values()
    }

    /// Builds the live `Platform` impl a spec describes.
    pub fn instantiate(&self, spec: &PlatformSpec) -> Box<dyn Platform> {
        match spec.kind {
            PlatformKind::Analytical => Box::new(AnalyticalPlatform::from_spec(spec)),
            PlatformKind::Measured => Box::new(MeasuredPlatform::from_spec(spec)),
        }
    }
}

impl Default for PlatformRegistry {
    fn default() -> Self {
        PlatformRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, Profiler};
    use qsdnn_nn::zoo;

    #[test]
    fn builtin_registry_has_the_four_committed_targets() {
        let r = PlatformRegistry::builtin();
        assert_eq!(
            r.names(),
            vec!["measured-host", "sim-cpu-only", "sim-gpu-heavy", "sim-tx2"]
        );
        assert_eq!(r.resolve("").expect("default").name, "sim-tx2");
        assert!(matches!(
            r.resolve("sim-saturn-v"),
            Err(PlatformError::Unknown { .. })
        ));
    }

    #[test]
    fn builtins_cannot_be_shadowed() {
        let mut r = PlatformRegistry::builtin();
        assert_eq!(
            r.insert(PlatformSpec::tx2()),
            Err(PlatformError::Duplicate("sim-tx2".to_string()))
        );
    }

    #[test]
    fn instantiated_platforms_carry_the_spec_name_and_profile() {
        let r = PlatformRegistry::builtin();
        let net = zoo::by_name("tiny_cnn", 1).expect("zoo");
        for name in ["sim-tx2", "sim-gpu-heavy", "sim-cpu-only"] {
            let spec = r.resolve(name).expect("builtin");
            let platform = r.instantiate(spec);
            assert_eq!(platform.name(), name);
            let lut = Profiler::with_repeats(platform, 2).profile(&net, Mode::Cpu);
            assert_eq!(lut.platform(), name);
            lut.validate().expect("profiled LUT is coherent");
        }
    }

    #[test]
    fn gpu_heavy_shifts_conv_work_to_the_gpu() {
        // The same network profiled on the two specs must price GPU convs
        // differently: the synthetic GPU-heavy target makes them cheaper
        // relative to the CPU than the TX-2 does.
        use qsdnn_primitives::Processor;
        let r = PlatformRegistry::builtin();
        let net = zoo::by_name("tiny_cnn", 1).expect("zoo");
        let ratio = |name: &str| -> f64 {
            let spec = r.resolve(name).expect("builtin");
            let lut = Profiler::with_repeats(r.instantiate(spec), 3).profile(&net, Mode::Gpgpu);
            let conv = lut
                .layers()
                .iter()
                .find(|l| l.name == "conv1")
                .expect("conv1");
            let best = |proc: Processor| {
                conv.candidates
                    .iter()
                    .zip(&conv.time_ms)
                    .filter(|(c, _)| c.processor == proc)
                    .map(|(_, &t)| t)
                    .fold(f64::INFINITY, f64::min)
            };
            best(Processor::Gpu) / best(Processor::Cpu)
        };
        assert!(
            ratio("sim-gpu-heavy") < ratio("sim-tx2"),
            "gpu-heavy must favor GPU convs more than the TX-2"
        );
    }

    #[test]
    fn load_dir_reports_corrupt_files_instead_of_panicking() {
        let dir = std::env::temp_dir().join(format!("qsdnn-specs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("broken.json"), "{not json").expect("write");
        let err = PlatformRegistry::builtin()
            .load_dir(&dir)
            .expect_err("corrupt file must be an error");
        match &err {
            PlatformError::BadSpecFile { path, .. } => {
                assert!(path.contains("broken.json"), "error names the file: {err}")
            }
            other => panic!("expected BadSpecFile, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_adds_valid_specs() {
        let dir = std::env::temp_dir().join(format!("qsdnn-specs-ok-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut custom = PlatformSpec::gpu_heavy();
        custom.name = "my-board".to_string();
        std::fs::write(
            dir.join("my-board.json"),
            serde_json::to_string(&custom).expect("serialize"),
        )
        .expect("write");
        let mut r = PlatformRegistry::builtin();
        assert_eq!(r.load_dir(&dir).expect("load"), 1);
        assert_eq!(r.resolve("my-board").expect("loaded").name, "my-board");
        std::fs::remove_dir_all(&dir).ok();
    }
}
