//! Platforms as data: [`PlatformSpec`] describes one heterogeneous target
//! — core types, bandwidths, the CPU↔GPU link and per-processor powers —
//! as a plain serializable value, so targets can be committed as JSON,
//! shipped in a `--platform-dir`, fingerprinted into cache keys and
//! compared for transfer distance. A spec never executes anything; the
//! [`PlatformRegistry`](super::PlatformRegistry) instantiates a concrete
//! [`Platform`](super::Platform) impl from it.

use serde::{Deserialize, Serialize};

use super::{Mode, PlatformConfig};
use crate::Fnv64;

/// Which `Platform` implementation a spec instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlatformKind {
    /// Roofline-style analytical model driven entirely by the spec numbers.
    #[default]
    Analytical,
    /// Wall-clock timing of the real kernels on the host CPU; GPU
    /// primitives and cross-processor links fall back to the analytical
    /// model built from the same spec.
    Measured,
}

impl PlatformKind {
    /// Stable lowercase tag (`"analytical"` / `"measured"`).
    pub fn label(&self) -> &'static str {
        match self {
            PlatformKind::Analytical => "analytical",
            PlatformKind::Measured => "measured",
        }
    }
}

impl std::str::FromStr for PlatformKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "analytical" => Ok(PlatformKind::Analytical),
            "measured" => Ok(PlatformKind::Measured),
            other => Err(format!(
                "unknown platform kind `{other}` (analytical|measured)"
            )),
        }
    }
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for PlatformKind {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for PlatformKind {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(s) => s.parse().map_err(|e: String| serde::Error::custom(&e)),
            _ => Err(serde::Error::custom(
                "expected \"analytical\" or \"measured\"",
            )),
        }
    }
}

/// One core type of a platform: the numbers the roofline model needs to
/// time a kernel on it, plus its active power for the energy objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// Effective memory bandwidth of this core type (GB/s).
    pub bandwidth_gbs: f64,
    /// Per-kernel dispatch/launch overhead (ms).
    pub launch_ms: f64,
    /// Utilization knee: MACs at which efficiency reaches 50%.
    pub saturation_macs: f64,
    /// Layout-repack bandwidth on this core type (GB/s).
    pub repack_gbs: f64,
    /// Active power of this core type under load (W) — the basis of every
    /// energy number the profiler emits for primitives on this core.
    pub power_w: f64,
    /// Sustained-compute multiplier relative to the TX-2-class calibration
    /// tables (1.0 = TX-2; 2.0 = twice the GMAC/s on every primitive).
    pub compute_scale: f64,
}

/// The CPU↔GPU interconnect of a platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Copy bandwidth across the interconnect (GB/s).
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency (ms).
    pub latency_ms: f64,
    /// Power drawn while moving data across the link (W).
    pub power_w: f64,
}

/// A heterogeneous target described as pure data.
///
/// Everything a [`Platform`](super::Platform) impl needs — core types with
/// bandwidth/launch/knee/compute-scale, the CPU↔GPU link, per-processor
/// powers, measurement noise — lives here, so a platform can be committed
/// as JSON, listed over the wire and selected per request. The committed
/// built-ins are [`PlatformSpec::tx2`] (the default), a measured host spec
/// and two synthetic targets; `--platform-dir` adds more from disk.
///
/// # Examples
///
/// ```
/// use qsdnn_engine::{Mode, PlatformSpec};
///
/// let tx2 = PlatformSpec::tx2();
/// assert_eq!(tx2.name, "sim-tx2");
/// assert!(tx2.supports(Mode::Gpgpu));
/// assert!(!PlatformSpec::cpu_only().supports(Mode::Gpgpu));
/// assert_eq!(tx2.fingerprint(), PlatformSpec::tx2().fingerprint());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Registry name clients select with `platform: "<name>"`.
    pub name: String,
    /// One-line human description for `platforms` listings.
    #[serde(default)]
    pub description: String,
    /// Which `Platform` implementation to instantiate.
    #[serde(default)]
    pub kind: PlatformKind,
    /// The CPU core type (always present).
    pub cpu: CoreSpec,
    /// The GPU core type; `None` describes a CPU-only target, which
    /// rejects `gpgpu`-mode requests (see [`PlatformSpec::supports`]).
    #[serde(default)]
    pub gpu: Option<CoreSpec>,
    /// The CPU↔GPU interconnect (unused when `gpu` is `None`).
    pub link: LinkSpec,
    /// Multiplicative measurement-noise amplitude of the analytical model
    /// (0.03 = ±3%).
    #[serde(default)]
    pub noise: f64,
    /// Noise RNG seed (analytical) / fixture seed (measured).
    #[serde(default)]
    pub seed: u64,
}

/// Sentinel GPU numbers for CPU-only specs: finite but hopeless, so a
/// mis-routed GPU primitive prices itself out instead of panicking.
/// Callers are expected to gate on [`PlatformSpec::supports`] first.
fn absent_gpu() -> CoreSpec {
    CoreSpec {
        bandwidth_gbs: 1e-3,
        launch_ms: 1e3,
        saturation_macs: 1e12,
        repack_gbs: 1e-3,
        power_w: 0.0,
        compute_scale: 1e-6,
    }
}

impl PlatformSpec {
    /// The calibrated sim-TX2 spec — the registry default, numerically
    /// identical to the historical `PlatformConfig::default()` so
    /// default-platform requests stay byte-identical.
    pub fn tx2() -> Self {
        PlatformSpec {
            name: "sim-tx2".to_string(),
            description: "Calibrated analytical Jetson TX-2 model (paper default)".to_string(),
            kind: PlatformKind::Analytical,
            cpu: CoreSpec {
                bandwidth_gbs: 8.0,
                launch_ms: 0.002,
                saturation_macs: 2.0e4,
                repack_gbs: 4.0,
                power_w: 1.8,
                compute_scale: 1.0,
            },
            gpu: Some(CoreSpec {
                bandwidth_gbs: 30.0,
                launch_ms: 0.05,
                saturation_macs: 3.0e6,
                repack_gbs: 25.0,
                power_w: 7.0,
                compute_scale: 1.0,
            }),
            link: LinkSpec {
                bandwidth_gbs: 16.0,
                latency_ms: 0.35,
                power_w: 2.5,
            },
            noise: 0.03,
            seed: 0xDA7E_2019,
        }
    }

    /// Wall-clock host-CPU measurement; GPU primitives and the link fall
    /// back to TX-2-class analytical numbers.
    pub fn measured_host() -> Self {
        let mut spec = PlatformSpec::tx2();
        spec.name = "measured-host".to_string();
        spec.description =
            "Wall-clock timing of the real kernels on the host CPU (GPU falls back to sim-tx2)"
                .to_string();
        spec.kind = PlatformKind::Measured;
        spec.seed = 7;
        spec
    }

    /// Synthetic discrete-GPU-class target: a much faster GPU behind a
    /// thinner, higher-latency link — plans should shift conv work onto
    /// the GPU and batch transfers compared with the TX-2.
    pub fn gpu_heavy() -> Self {
        PlatformSpec {
            name: "sim-gpu-heavy".to_string(),
            description:
                "Synthetic discrete-GPU workstation: 5x GPU compute behind a PCIe-class link"
                    .to_string(),
            kind: PlatformKind::Analytical,
            cpu: CoreSpec {
                bandwidth_gbs: 10.0,
                launch_ms: 0.002,
                saturation_macs: 2.0e4,
                repack_gbs: 5.0,
                power_w: 2.5,
                compute_scale: 1.2,
            },
            gpu: Some(CoreSpec {
                bandwidth_gbs: 160.0,
                launch_ms: 0.02,
                saturation_macs: 1.0e6,
                repack_gbs: 120.0,
                power_w: 15.0,
                compute_scale: 5.0,
            }),
            link: LinkSpec {
                bandwidth_gbs: 12.0,
                latency_ms: 0.08,
                power_w: 4.0,
            },
            noise: 0.03,
            seed: 0xD15C_4A11,
        }
    }

    /// Synthetic big-core CPU-only target (no GPU at all): `gpgpu`-mode
    /// requests are rejected, and all plans stay on the CPU.
    pub fn cpu_only() -> Self {
        PlatformSpec {
            name: "sim-cpu-only".to_string(),
            description: "Synthetic big-core CPU-only embedded target (no GPU)".to_string(),
            kind: PlatformKind::Analytical,
            cpu: CoreSpec {
                bandwidth_gbs: 14.0,
                launch_ms: 0.0015,
                saturation_macs: 1.5e4,
                repack_gbs: 7.0,
                power_w: 3.0,
                compute_scale: 2.0,
            },
            gpu: None,
            link: LinkSpec {
                bandwidth_gbs: 1.0,
                latency_ms: 1.0,
                power_w: 0.1,
            },
            noise: 0.03,
            seed: 0xC0DE_0CB0,
        }
    }

    /// Whether this platform can serve `mode` (CPU-only targets reject
    /// `gpgpu`).
    pub fn supports(&self, mode: Mode) -> bool {
        match mode {
            Mode::Cpu => true,
            Mode::Gpgpu => self.gpu.is_some(),
        }
    }

    /// Lowers the spec to the analytical model's constant block. CPU-only
    /// specs get finite-but-hopeless sentinel numbers for the GPU side.
    pub fn to_config(&self) -> PlatformConfig {
        let gpu = self.gpu.clone().unwrap_or_else(absent_gpu);
        PlatformConfig {
            cpu_bandwidth_gbs: self.cpu.bandwidth_gbs,
            cpu_launch_ms: self.cpu.launch_ms,
            cpu_saturation_macs: self.cpu.saturation_macs,
            gpu_bandwidth_gbs: gpu.bandwidth_gbs,
            gpu_launch_ms: gpu.launch_ms,
            gpu_saturation_macs: gpu.saturation_macs,
            transfer_gbs: self.link.bandwidth_gbs,
            transfer_latency_ms: self.link.latency_ms,
            repack_cpu_gbs: self.cpu.repack_gbs,
            repack_gpu_gbs: gpu.repack_gbs,
            noise: self.noise,
            seed: self.seed,
            cpu_power_w: self.cpu.power_w,
            gpu_power_w: gpu.power_w,
            transfer_power_w: self.link.power_w,
            cpu_compute_scale: self.cpu.compute_scale,
            gpu_compute_scale: gpu.compute_scale,
        }
    }

    /// Stable 64-bit content fingerprint over every field that can change
    /// a profiled number — what joins the profile cache key and the
    /// scenario descriptor when a non-default platform is selected.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("qsdnn-platform-v1");
        h.write_str(&self.name);
        h.write_str(self.kind.label());
        let write_core = |h: &mut Fnv64, core: &CoreSpec| {
            h.write_f64(core.bandwidth_gbs);
            h.write_f64(core.launch_ms);
            h.write_f64(core.saturation_macs);
            h.write_f64(core.repack_gbs);
            h.write_f64(core.power_w);
            h.write_f64(core.compute_scale);
        };
        write_core(&mut h, &self.cpu);
        match &self.gpu {
            Some(gpu) => {
                h.write_str("gpu");
                write_core(&mut h, gpu);
            }
            None => h.write_str("no-gpu"),
        }
        h.write_f64(self.link.bandwidth_gbs);
        h.write_f64(self.link.latency_ms);
        h.write_f64(self.link.power_w);
        h.write_f64(self.noise);
        h.write_u64(self.seed);
        h.finish()
    }

    /// Log-scale numeric summary for [`ScenarioDescriptor::distance`]'s
    /// platform term: nearby specs yield nearby vectors, and divergence in
    /// any bandwidth, compute scale, launch cost, power or link number
    /// moves the vectors apart. The leading element flags GPU absence so
    /// a CPU-only target sits far from every GPU-bearing one.
    ///
    /// [`ScenarioDescriptor::distance`]: crate::ScenarioDescriptor::distance
    pub fn features(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(16);
        out.push(if self.gpu.is_some() { 0.0 } else { 8.0 });
        let core_features = |out: &mut Vec<f64>, core: &CoreSpec| {
            out.push(core.bandwidth_gbs.max(1e-9).ln());
            out.push(core.compute_scale.max(1e-9).ln());
            out.push(core.launch_ms.max(1e-9).ln());
            out.push(core.saturation_macs.max(1e-9).ln());
            out.push(core.power_w.max(1e-9).ln());
            out.push(core.repack_gbs.max(1e-9).ln());
        };
        core_features(&mut out, &self.cpu);
        core_features(&mut out, &self.gpu.clone().unwrap_or_else(absent_gpu));
        out.push(self.link.bandwidth_gbs.max(1e-9).ln());
        out.push(self.link.latency_ms.max(1e-9).ln());
        out
    }

    /// Sanity-checks a spec (names non-empty, all physical quantities
    /// strictly positive, noise within [0, 1)) so a typo in a JSON spec
    /// file is a startup error, not a NaN plan three requests later.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("platform spec has an empty name".to_string());
        }
        let check_core = |label: &str, core: &CoreSpec| -> Result<(), String> {
            let fields = [
                ("bandwidth_gbs", core.bandwidth_gbs),
                ("launch_ms", core.launch_ms),
                ("saturation_macs", core.saturation_macs),
                ("repack_gbs", core.repack_gbs),
                ("compute_scale", core.compute_scale),
            ];
            for (field, v) in fields {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "{}: {label}.{field} must be finite and > 0, got {v}",
                        self.name
                    ));
                }
            }
            if !core.power_w.is_finite() || core.power_w < 0.0 {
                return Err(format!(
                    "{}: {label}.power_w must be finite and >= 0, got {}",
                    self.name, core.power_w
                ));
            }
            Ok(())
        };
        check_core("cpu", &self.cpu)?;
        if let Some(gpu) = &self.gpu {
            check_core("gpu", gpu)?;
        }
        let link = [
            ("link.bandwidth_gbs", self.link.bandwidth_gbs),
            ("link.latency_ms", self.link.latency_ms),
        ];
        for (field, v) in link {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!(
                    "{}: {field} must be finite and > 0, got {v}",
                    self.name
                ));
            }
        }
        if !self.link.power_w.is_finite() || self.link.power_w < 0.0 {
            return Err(format!(
                "{}: link.power_w must be finite and >= 0, got {}",
                self.name, self.link.power_w
            ));
        }
        if !self.noise.is_finite() || !(0.0..1.0).contains(&self.noise) {
            return Err(format!(
                "{}: noise must be in [0, 1), got {}",
                self.name, self.noise
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_spec_lowers_to_the_historical_default_config() {
        assert_eq!(PlatformSpec::tx2().to_config(), PlatformConfig::default());
    }

    #[test]
    fn builtin_specs_validate() {
        for spec in [
            PlatformSpec::tx2(),
            PlatformSpec::measured_host(),
            PlatformSpec::gpu_heavy(),
            PlatformSpec::cpu_only(),
        ] {
            spec.validate().expect(&spec.name);
        }
    }

    #[test]
    fn fingerprints_separate_the_builtins_and_see_single_field_changes() {
        let mut seen = std::collections::HashSet::new();
        for spec in [
            PlatformSpec::tx2(),
            PlatformSpec::measured_host(),
            PlatformSpec::gpu_heavy(),
            PlatformSpec::cpu_only(),
        ] {
            assert!(seen.insert(spec.fingerprint()), "{} collides", spec.name);
        }
        let mut tweaked = PlatformSpec::tx2();
        if let Some(gpu) = &mut tweaked.gpu {
            gpu.power_w += 1e-9;
        }
        assert_ne!(tweaked.fingerprint(), PlatformSpec::tx2().fingerprint());
    }

    #[test]
    fn cpu_only_rejects_gpgpu() {
        let spec = PlatformSpec::cpu_only();
        assert!(spec.supports(Mode::Cpu));
        assert!(!spec.supports(Mode::Gpgpu));
        // The sentinel GPU numbers are finite, so even a mis-routed GPU
        // primitive yields a huge finite time, never NaN.
        let cfg = spec.to_config();
        assert!(cfg.gpu_bandwidth_gbs > 0.0 && cfg.gpu_bandwidth_gbs.is_finite());
    }

    #[test]
    fn validation_catches_bad_numbers() {
        let mut spec = PlatformSpec::tx2();
        spec.cpu.bandwidth_gbs = 0.0;
        assert!(spec.validate().is_err());
        let mut spec = PlatformSpec::tx2();
        spec.noise = 1.5;
        assert!(spec.validate().is_err());
        let mut spec = PlatformSpec::tx2();
        spec.name.clear();
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        for spec in [PlatformSpec::tx2(), PlatformSpec::cpu_only()] {
            let json = serde_json::to_string(&spec).expect("serialize");
            let back: PlatformSpec = serde_json::from_str(&json).expect("parse");
            assert_eq!(spec, back);
            assert_eq!(spec.fingerprint(), back.fingerprint());
        }
    }

    #[test]
    fn gpu_power_alone_flips_the_weighted_cpu_vs_gpu_ranking() {
        // Two specs differing ONLY in GPU power: under Weighted{lambda},
        // the frugal GPU makes the GPU plan win and the hungry GPU hands
        // the win to the CPU plan — energy flows from the spec, not from
        // hardcoded constants.
        use crate::{AnalyticalPlatform, Objective, Platform};
        use qsdnn_nn::zoo;
        use qsdnn_primitives::{registry, Library, Processor};

        let mut frugal = PlatformSpec::tx2();
        frugal.noise = 0.0;
        frugal.gpu.as_mut().expect("tx2 has a gpu").power_w = 0.1;
        let mut hungry = frugal.clone();
        hungry.gpu.as_mut().expect("tx2 has a gpu").power_w = 500.0;
        assert_ne!(frugal.fingerprint(), hungry.fingerprint());

        let net = zoo::vgg19(1);
        let conv = net
            .layers()
            .iter()
            .find(|l| l.desc.name == "conv2_1")
            .expect("conv2_1");
        let cands = registry::candidates(conv);
        let gpu = *cands
            .iter()
            .find(|c| c.library == Library::CuDnn)
            .expect("gpu candidate");
        let cpu = *cands
            .iter()
            .find(|c| c.library == Library::ArmCl && c.processor == Processor::Cpu)
            .expect("cpu candidate");
        let weighted = Objective::Weighted { lambda: 2.0 };
        let cost = |spec: &PlatformSpec, prim| {
            let mut p = AnalyticalPlatform::from_spec(spec);
            let t = p.layer_time_ms(&net, conv, &prim);
            let e = p.layer_energy_mj(&net, conv, &prim);
            weighted.scalarize(t, e)
        };
        assert!(
            cost(&frugal, gpu) < cost(&frugal, cpu),
            "a frugal GPU must win the weighted objective"
        );
        assert!(
            cost(&hungry, gpu) > cost(&hungry, cpu),
            "a power-hungry GPU must lose the weighted objective"
        );
    }

    #[test]
    fn features_diverge_monotonically_with_spec_divergence() {
        let base = PlatformSpec::tx2();
        let mut mild = PlatformSpec::tx2();
        mild.name = "mild".to_string();
        if let Some(gpu) = &mut mild.gpu {
            gpu.compute_scale = 1.5;
        }
        let mut wild = PlatformSpec::gpu_heavy();
        wild.name = "wild".to_string();
        let dist = |a: &PlatformSpec, b: &PlatformSpec| -> f64 {
            let (fa, fb) = (a.features(), b.features());
            fa.iter().zip(&fb).map(|(x, y)| (x - y).abs()).sum::<f64>() / fa.len() as f64
        };
        assert_eq!(dist(&base, &base), 0.0);
        let near = dist(&base, &mild);
        let far = dist(&base, &wild);
        assert!(near > 0.0 && near < far, "near {near} vs far {far}");
        // A CPU-only target is farther still: the presence flag dominates.
        assert!(dist(&base, &PlatformSpec::cpu_only()) > far);
    }
}
