//! Hand-built toy LUTs, including the paper's Fig. 1 local-minimum example.

use qsdnn_gemm::BlasBackend;
use qsdnn_nn::LayerTag;
use qsdnn_primitives::{Algorithm, Library, Lowering, Primitive, Processor};
use qsdnn_tensor::DataLayout;

use crate::{CostLut, IncomingEdge, LayerEntry, Mode};

fn nchw_cpu(lib: Library) -> Primitive {
    Primitive::new(
        lib,
        Algorithm::Direct,
        Lowering::None,
        None,
        Processor::Cpu,
        DataLayout::Nchw,
    )
}

fn nhwc_cpu(lib: Library) -> Primitive {
    Primitive::new(
        lib,
        Algorithm::DirectOpt,
        Lowering::None,
        None,
        Processor::Cpu,
        DataLayout::Nhwc,
    )
}

/// The paper's Fig. 1: a 3-layer network where the middle layer's *fastest*
/// primitive (red path) is NHWC-only, so choosing it pays two layout
/// conversions; the globally fastest path (blue) keeps a slightly slower
/// NCHW primitive.
///
/// Layer times (ms):
///
/// | layer | NCHW (vanilla/blas) | NHWC (armcl) |
/// |-------|--------------------:|-------------:|
/// | L0    | 1.0                 | 1.3          |
/// | L1    | 0.9                 | 0.5 ← local min |
/// | L2    | 1.0                 | 1.2          |
///
/// Each layout flip on an edge costs 0.4 ms, so greedy = 1.0+0.5+1.0+0.8 =
/// 3.3 while the optimum = 1.0+0.9+1.0 = 2.9.
pub fn fig1_lut() -> CostLut {
    let penalty_flip = 0.4;
    let pen = |from: &[Primitive], to: &[Primitive]| {
        let mut m = Vec::new();
        for pf in from {
            for pt in to {
                m.push(if pf.layout == pt.layout {
                    0.0
                } else {
                    penalty_flip
                });
            }
        }
        m
    };
    let l0 = vec![nchw_cpu(Library::Vanilla), nhwc_cpu(Library::ArmCl)];
    let l1 = vec![nchw_cpu(Library::Vanilla), nhwc_cpu(Library::ArmCl)];
    let l2 = vec![nchw_cpu(Library::Vanilla), nhwc_cpu(Library::ArmCl)];
    let layers = vec![
        LayerEntry {
            name: "layer0".into(),
            tag: LayerTag::Conv,
            candidates: l0.clone(),
            time_ms: vec![1.0, 1.3],
            energy_mj: vec![],
            incoming: vec![],
        },
        LayerEntry {
            name: "layer1".into(),
            tag: LayerTag::Conv,
            candidates: l1.clone(),
            time_ms: vec![0.9, 0.5],
            energy_mj: vec![],
            incoming: vec![IncomingEdge {
                from: 0,
                penalty: pen(&l0, &l1),
                penalty_energy_mj: vec![],
            }],
        },
        LayerEntry {
            name: "layer2".into(),
            tag: LayerTag::Conv,
            candidates: l2.clone(),
            time_ms: vec![1.0, 1.2],
            energy_mj: vec![],
            incoming: vec![IncomingEdge {
                from: 1,
                penalty: pen(&l1, &l2),
                penalty_energy_mj: vec![],
            }],
        },
    ];
    CostLut::from_parts("fig1_toy", "hand-built", Mode::Cpu, layers)
}

/// A slightly larger hand-built chain (5 layers × 3 candidates) with a BLAS
/// backend axis, used by search unit tests that need a non-trivial but
/// exhaustively-searchable space.
pub fn small_chain_lut() -> CostLut {
    let cands = vec![
        nchw_cpu(Library::Vanilla),
        Primitive::new(
            Library::Blas,
            Algorithm::Gemm,
            Lowering::Im2col,
            Some(BlasBackend::OpenBlasLike),
            Processor::Cpu,
            DataLayout::Nchw,
        ),
        nhwc_cpu(Library::ArmCl),
    ];
    let times = [
        vec![2.0, 0.8, 0.7],
        vec![2.2, 0.9, 0.6],
        vec![1.5, 0.7, 0.9],
        vec![2.4, 1.0, 0.5],
        vec![1.8, 0.6, 0.8],
    ];
    let pen = |from: &[Primitive], to: &[Primitive]| {
        let mut m = Vec::new();
        for pf in from {
            for pt in to {
                m.push(if pf.layout == pt.layout { 0.0 } else { 0.35 });
            }
        }
        m
    };
    let mut layers = Vec::new();
    for (i, t) in times.iter().enumerate() {
        let incoming = if i == 0 {
            vec![]
        } else {
            vec![IncomingEdge {
                from: i - 1,
                penalty: pen(&cands, &cands),
                penalty_energy_mj: vec![],
            }]
        };
        layers.push(LayerEntry {
            name: format!("layer{i}"),
            tag: LayerTag::Conv,
            candidates: cands.clone(),
            time_ms: t.clone(),
            energy_mj: vec![],
            incoming,
        });
    }
    CostLut::from_parts("small_chain_toy", "hand-built", Mode::Cpu, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_greedy_falls_into_local_minimum() {
        let lut = fig1_lut();
        let greedy = lut.greedy_assignment();
        assert_eq!(
            greedy,
            vec![0, 1, 0],
            "greedy picks the fast NHWC middle layer"
        );
        let optimal = vec![0, 0, 0];
        assert!(lut.cost(&optimal) < lut.cost(&greedy));
        assert!((lut.cost(&greedy) - 3.3).abs() < 1e-9);
        assert!((lut.cost(&optimal) - 2.9).abs() < 1e-9);
    }

    #[test]
    fn small_chain_has_243_implementations() {
        let lut = small_chain_lut();
        assert_eq!(lut.design_space_size() as usize, 243);
    }
}
