//! Phase 1 of QS-DNN: inference on the (simulated) embedded system to
//! populate the [`CostLut`].
//!
//! Mirrors paper §V.A:
//!
//! 1. every primitive type is benchmarked network-wide (mean over a
//!    configurable number of repeats — 50 in the paper, one per image);
//! 2. all compatibility layers between *consecutive* (graph-adjacent)
//!    layers are profiled, branches included (Fig. 3);
//! 3. the LUT is assembled.

use qsdnn_nn::Network;
use qsdnn_primitives::{registry, Library, Primitive};

use crate::{CostLut, IncomingEdge, LayerEntry, Mode, Platform};

/// Phase-1 profiler driving a [`Platform`].
///
/// # Examples
///
/// ```
/// use qsdnn_engine::{AnalyticalPlatform, Mode, Profiler};
/// use qsdnn_nn::zoo;
///
/// let net = zoo::lenet5(1);
/// let mut profiler = Profiler::new(AnalyticalPlatform::tx2());
/// let lut = profiler.profile(&net, Mode::Cpu);
/// assert_eq!(lut.len(), net.len());
/// ```
#[derive(Debug)]
pub struct Profiler<P: Platform> {
    platform: P,
    repeats: usize,
}

impl<P: Platform> Profiler<P> {
    /// Profiler with the paper's repeat count (50 inferences per primitive).
    pub fn new(platform: P) -> Self {
        Profiler {
            platform,
            repeats: 50,
        }
    }

    /// Profiler with a custom repeat count (≥1).
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn with_repeats(platform: P, repeats: usize) -> Self {
        assert!(repeats > 0, "at least one repeat is required");
        Profiler { platform, repeats }
    }

    /// Consumes the profiler, returning the platform.
    pub fn into_platform(self) -> P {
        self.platform
    }

    /// Number of whole-network inference sweeps Phase 1 performs: one per
    /// distinct global implementation (per library, its maximum per-layer
    /// variant count), plus one for compatibility profiling (paper §V.A).
    pub fn inference_count(net: &Network, mode: Mode) -> usize {
        let mut sweeps = 0;
        for lib in Library::ALL {
            let max_variants = net
                .layers()
                .iter()
                .map(|node| {
                    registry::candidates(node)
                        .into_iter()
                        .filter(|p| mode.admits(p) && p.library == lib)
                        .count()
                })
                .max()
                .unwrap_or(0);
            sweeps += max_variants;
        }
        sweeps + 1
    }

    /// Runs Phase 1 and assembles the LUT.
    pub fn profile(&mut self, net: &Network, mode: Mode) -> CostLut {
        let profile_start = std::time::Instant::now();
        let mut entries: Vec<LayerEntry> = Vec::with_capacity(net.len());
        // 1) Per-primitive benchmarking, averaged over repeats.
        let mut all_candidates: Vec<Vec<Primitive>> = Vec::with_capacity(net.len());
        for node in net.layers() {
            let candidates: Vec<Primitive> = registry::candidates(node)
                .into_iter()
                .filter(|p| mode.admits(p))
                .collect();
            let mut time_ms = Vec::with_capacity(candidates.len());
            let mut energy_mj = Vec::with_capacity(candidates.len());
            for prim in &candidates {
                let mut acc = 0.0;
                let mut acc_e = 0.0;
                for _ in 0..self.repeats {
                    acc += self.platform.layer_time_ms(net, node, prim);
                    acc_e += self.platform.layer_energy_mj(net, node, prim);
                }
                time_ms.push(acc / self.repeats as f64);
                energy_mj.push(acc_e / self.repeats as f64);
            }
            all_candidates.push(candidates.clone());
            entries.push(LayerEntry {
                name: node.desc.name.clone(),
                tag: node.desc.tag(),
                candidates,
                time_ms,
                energy_mj,
                incoming: Vec::new(),
            });
        }
        // 2) Compatibility layers on every graph edge (branches handled).
        for node in net.layers() {
            let li = node.id.0;
            for &producer in &node.inputs {
                let shape = net.node(producer).output_shape;
                let from_cands = &all_candidates[producer.0];
                let self_cands = &all_candidates[li];
                let mut penalty = Vec::with_capacity(from_cands.len() * self_cands.len());
                let mut penalty_energy_mj = Vec::with_capacity(penalty.capacity());
                for pf in from_cands {
                    for pt in self_cands {
                        penalty.push(self.platform.conversion_time_ms(shape, pf, pt));
                        penalty_energy_mj.push(self.platform.conversion_energy_mj(shape, pf, pt));
                    }
                }
                entries[li].incoming.push(IncomingEdge {
                    from: producer.0,
                    penalty,
                    penalty_energy_mj,
                });
            }
        }
        let registry = qsdnn_obs::global();
        registry
            .histogram(
                "qsdnn_profile_us",
                "Wall time of one Phase-1 profiling run (full network)",
                &[],
            )
            .record_duration(profile_start.elapsed());
        registry
            .counter(
                "qsdnn_profile_layers_total",
                "Network layers profiled in Phase-1 runs",
                &[],
            )
            .add(net.len() as u64);
        CostLut::from_parts(net.name(), self.platform.name(), mode, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalyticalPlatform;
    use qsdnn_nn::zoo;
    use qsdnn_primitives::Processor;

    fn quick_lut(name: &str, mode: Mode) -> CostLut {
        let net = zoo::by_name(name, 1).expect("known net");
        Profiler::with_repeats(AnalyticalPlatform::tx2(), 3).profile(&net, mode)
    }

    #[test]
    fn lut_covers_every_layer_and_edge() {
        let net = zoo::googlenet(1);
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Cpu);
        assert_eq!(lut.len(), net.len());
        let edges: usize = lut.layers().iter().map(|l| l.incoming.len()).sum();
        assert_eq!(edges, net.edges().len(), "all branches profiled (Fig. 3)");
    }

    #[test]
    fn cpu_mode_excludes_gpu_candidates() {
        let lut = quick_lut("lenet5", Mode::Cpu);
        for l in lut.layers() {
            assert!(l.candidates.iter().all(|p| p.processor == Processor::Cpu));
        }
    }

    #[test]
    fn gpgpu_mode_includes_gpu_candidates() {
        let lut = quick_lut("lenet5", Mode::Gpgpu);
        let has_gpu = lut
            .layers()
            .iter()
            .any(|l| l.candidates.iter().any(|p| p.processor == Processor::Gpu));
        assert!(has_gpu);
    }

    #[test]
    fn averaging_repeats_tightens_towards_base() {
        // With many repeats the profiled mean must approach the noise-free
        // base time.
        let net = zoo::lenet5(1);
        let platform = AnalyticalPlatform::tx2();
        let conv1 = &net.layers()[1];
        let prim = qsdnn_primitives::registry::candidates(conv1)[1];
        let base = platform.base_layer_time_ms(&net, conv1, &prim);
        let lut = Profiler::with_repeats(platform, 200).profile(&net, Mode::Cpu);
        let ci = lut.candidates(1).iter().position(|p| *p == prim).unwrap();
        let measured = lut.time(1, ci);
        assert!(
            (measured - base).abs() / base < 0.02,
            "{measured} vs {base}"
        );
    }

    #[test]
    fn inference_count_matches_paper_structure() {
        let net = zoo::vgg19(1);
        // CPU mode: vanilla 1 + blas 6 + nnpack 2 + armcl 2 + sparse 1
        // (fc/pointwise) + 1 compatibility sweep.
        let n = Profiler::<AnalyticalPlatform>::inference_count(&net, Mode::Cpu);
        assert!(n > 5 && n < 30, "sweep count {n}");
        let n_gpu = Profiler::<AnalyticalPlatform>::inference_count(&net, Mode::Gpgpu);
        assert!(n_gpu > n, "GPGPU adds cuDNN/cuBLAS sweeps");
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let _ = Profiler::with_repeats(AnalyticalPlatform::tx2(), 0);
    }

    #[test]
    fn energy_is_profiled_alongside_time() {
        let lut = quick_lut("lenet5", Mode::Gpgpu);
        for (l, entry) in lut.layers().iter().enumerate().skip(1) {
            for ci in 0..entry.candidates.len() {
                assert!(lut.energy(l, ci) > 0.0, "{}: candidate {ci}", entry.name);
            }
        }
        let v = lut.vanilla_assignment();
        assert!(lut.energy_cost(&v) > 0.0);
    }

    #[test]
    fn gpu_burns_more_power_per_unit_time() {
        // Energy/time ratio must reflect the processor's power draw.
        let lut = quick_lut("lenet5", Mode::Gpgpu);
        let conv2 = 3; // lenet conv2 entry
        let entry = &lut.layers()[conv2];
        let gpu = entry
            .candidates
            .iter()
            .position(|p| p.processor == Processor::Gpu)
            .expect("gpu candidate");
        let cpu = 0;
        let gpu_ratio = lut.energy(conv2, gpu) / lut.time(conv2, gpu);
        let cpu_ratio = lut.energy(conv2, cpu) / lut.time(conv2, cpu);
        assert!(
            gpu_ratio > cpu_ratio * 2.0,
            "gpu {gpu_ratio} vs cpu {cpu_ratio}"
        );
    }

    #[test]
    fn objective_scalarization_is_linear() {
        use crate::Objective;
        let lut = quick_lut("lenet5", Mode::Gpgpu);
        let a = lut.greedy_assignment();
        let base = lut.cost(&a);
        let energy = lut.energy_cost(&a);
        let weighted = lut.with_objective(Objective::Weighted { lambda: 2.0 });
        assert!((weighted.cost(&a) - (base + 2.0 * energy)).abs() < 1e-9);
        let pure_e = lut.with_objective(Objective::Energy);
        assert!((pure_e.cost(&a) - energy).abs() < 1e-9);
        let identity = lut.with_objective(Objective::Latency);
        assert!((identity.cost(&a) - base).abs() < 1e-12);
    }
}
