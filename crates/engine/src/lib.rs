//! Inference engine optimizer of the QS-DNN reproduction (paper §III).
//!
//! The engine couples the primitive registry to a heterogeneous platform:
//!
//! * [`Platform`] — source of empirical layer times and compatibility-layer
//!   penalties, with two implementations: [`AnalyticalPlatform`] (the
//!   calibrated sim-TX2 model used for all paper-scale experiments) and
//!   [`MeasuredPlatform`] (wall-clock timing of the real kernels);
//! * [`Profiler`] — Phase 1 of QS-DNN: benchmarks every primitive type
//!   network-wide, profiles every compatibility layer (branches included),
//!   and assembles the [`CostLut`];
//! * [`CostLut`] — the look-up table Phase 2 searches against: per-layer
//!   candidate times plus pairwise penalties on every graph edge;
//! * [`run_network`] — executes an assignment end to end with real kernels
//!   to verify functional equivalence.
//!
//! # Examples
//!
//! Phase 1 on LeNet-5, then score two baseline implementations:
//!
//! ```
//! use qsdnn_engine::{AnalyticalPlatform, Mode, Profiler};
//! use qsdnn_nn::zoo;
//! use qsdnn_primitives::Library;
//!
//! let net = zoo::lenet5(1);
//! let mut profiler = Profiler::with_repeats(AnalyticalPlatform::tx2(), 5);
//! let lut = profiler.profile(&net, Mode::Cpu);
//!
//! let vanilla = lut.cost(&lut.vanilla_assignment());
//! let blas = lut.cost(&lut.single_library_assignment(Library::Blas));
//! assert!(blas < vanilla, "BLAS must beat the dependency-free baseline");
//! ```

pub mod executor;
mod fingerprint;
mod lut;
mod platform;
mod profiler;
mod scenario;
pub mod toy;

pub use executor::{run_network, ExecutionResult};
pub use fingerprint::Fnv64;
pub use lut::{Assignment, CostLut, IncomingEdge, LayerEntry};
pub use platform::{
    AnalyticalPlatform, CoreSpec, LinkSpec, MeasuredPlatform, Mode, Objective, Platform,
    PlatformConfig, PlatformError, PlatformKind, PlatformRegistry, PlatformSpec,
};
pub use profiler::Profiler;
pub use scenario::{LayerSummary, ScenarioDescriptor};
