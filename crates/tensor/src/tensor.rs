use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{DataLayout, Shape, TensorError};

/// Dense 4-D `f32` tensor with an explicit [`DataLayout`].
///
/// # Examples
///
/// ```
/// use qsdnn_tensor::{DataLayout, Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::new(1, 2, 2, 2), DataLayout::Nchw);
/// t.set(0, 1, 0, 1, 7.0);
/// assert_eq!(t.at(0, 1, 0, 1), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    layout: DataLayout,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape, layout: DataLayout) -> Self {
        Tensor {
            shape,
            layout,
            data: vec![0.0; shape.volume()],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// `shape.volume()`.
    pub fn from_vec(shape: Shape, layout: DataLayout, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                got: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            layout,
            data,
        })
    }

    /// Creates a tensor whose element at logical position `(n, c, h, w)` is
    /// `f(n, c, h, w)`.
    pub fn from_fn<F>(shape: Shape, layout: DataLayout, mut f: F) -> Self
    where
        F: FnMut(usize, usize, usize, usize) -> f32,
    {
        let mut t = Tensor::zeros(shape, layout);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        t.set(n, c, h, w, f(n, c, h, w));
                    }
                }
            }
        }
        t
    }

    /// Creates a tensor filled with deterministic pseudo-random values in
    /// `[-1, 1)` from `seed`.
    pub fn random(shape: Shape, layout: DataLayout, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = (0..shape.volume())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Tensor {
            shape,
            layout,
            data,
        }
    }

    /// Logical shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Memory layout.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Immutable view of the underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at logical position `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.layout.offset(&self.shape, n, c, h, w)]
    }

    /// Sets the element at logical position `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let off = self.layout.offset(&self.shape, n, c, h, w);
        self.data[off] = value;
    }

    /// Returns a copy of this tensor converted to `layout`.
    ///
    /// If the layout already matches, this is a plain clone. Otherwise every
    /// element is permuted — exactly the work a *compatibility layer*
    /// performs at inference time.
    pub fn to_layout(&self, layout: DataLayout) -> Tensor {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor::zeros(self.shape, layout);
        let s = self.shape;
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        out.set(n, c, h, w, self.at(n, c, h, w));
                    }
                }
            }
        }
        out
    }

    /// Largest absolute element-wise difference between two tensors of the
    /// same shape (layouts may differ).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape,
                right: other.shape,
            });
        }
        let s = self.shape;
        let mut max = 0.0f32;
        for n in 0..s.n {
            for c in 0..s.c {
                for h in 0..s.h {
                    for w in 0..s.w {
                        let d = (self.at(n, c, h, w) - other.at(n, c, h, w)).abs();
                        if d > max {
                            max = d;
                        }
                    }
                }
            }
        }
        Ok(max)
    }

    /// Whether every element of `self` is within `tol` of the corresponding
    /// element of `other` (layout-agnostic).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::zeros(Shape::new(1, 2, 3, 4), DataLayout::Nchw);
        assert_eq!(t.at(0, 1, 2, 3), 0.0);
        t.set(0, 1, 2, 3, 42.0);
        assert_eq!(t.at(0, 1, 2, 3), 42.0);
    }

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor::from_vec(Shape::new(1, 1, 2, 2), DataLayout::Nchw, vec![0.0; 3]);
        assert!(matches!(
            err,
            Err(TensorError::LengthMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn from_fn_respects_layout() {
        let shape = Shape::new(1, 2, 2, 2);
        let f = |_n: usize, c: usize, h: usize, w: usize| (c * 100 + h * 10 + w) as f32;
        let a = Tensor::from_fn(shape, DataLayout::Nchw, f);
        let b = Tensor::from_fn(shape, DataLayout::Nhwc, f);
        // Logical view identical, buffers permuted.
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.0);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn layout_conversion_roundtrip_exact() {
        let t = Tensor::random(Shape::new(2, 3, 5, 4), DataLayout::Nchw, 7);
        let back = t.to_layout(DataLayout::Nhwc).to_layout(DataLayout::Nchw);
        assert_eq!(t, back);
    }

    #[test]
    fn to_same_layout_is_identity() {
        let t = Tensor::random(Shape::new(1, 4, 3, 3), DataLayout::Nhwc, 3);
        assert_eq!(t, t.to_layout(DataLayout::Nhwc));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let shape = Shape::new(1, 3, 8, 8);
        let a = Tensor::random(shape, DataLayout::Nchw, 11);
        let b = Tensor::random(shape, DataLayout::Nchw, 11);
        let c = Tensor::random(shape, DataLayout::Nchw, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn max_abs_diff_shape_mismatch() {
        let a = Tensor::zeros(Shape::new(1, 1, 2, 2), DataLayout::Nchw);
        let b = Tensor::zeros(Shape::new(1, 1, 2, 3), DataLayout::Nchw);
        assert!(a.max_abs_diff(&b).is_err());
    }

    #[test]
    fn approx_eq_across_layouts() {
        let a = Tensor::random(Shape::new(1, 5, 4, 4), DataLayout::Nchw, 1);
        let b = a.to_layout(DataLayout::Nhwc);
        assert!(a.approx_eq(&b, 0.0).unwrap());
    }

    proptest! {
        #[test]
        fn prop_layout_roundtrip(
            n in 1usize..3, c in 1usize..6, h in 1usize..6, w in 1usize..6, seed in 0u64..1000
        ) {
            let t = Tensor::random(Shape::new(n, c, h, w), DataLayout::Nchw, seed);
            let rt = t.to_layout(DataLayout::Nhwc).to_layout(DataLayout::Nchw);
            prop_assert_eq!(t, rt);
        }

        #[test]
        fn prop_conversion_preserves_logical_view(
            c in 1usize..5, h in 1usize..5, w in 1usize..5, seed in 0u64..1000
        ) {
            let t = Tensor::random(Shape::new(1, c, h, w), DataLayout::Nchw, seed);
            let u = t.to_layout(DataLayout::Nhwc);
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        prop_assert_eq!(t.at(0, ci, hi, wi), u.at(0, ci, hi, wi));
                    }
                }
            }
        }
    }
}
