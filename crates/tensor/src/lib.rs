//! 4-D `f32` tensors with explicit data layouts for the QS-DNN reproduction.
//!
//! Every activation and weight tensor in the inference engine is a dense,
//! contiguous 4-D `f32` array tagged with a [`DataLayout`] (`NCHW` or
//! `NHWC`). Primitive implementations in `qsdnn-primitives` declare which
//! layout they consume/produce; the engine inserts *compatibility layers*
//! ([`Tensor::to_layout`]) whenever two consecutive primitives disagree —
//! the very conversions whose cost the QS-DNN search learns to avoid.
//!
//! # Examples
//!
//! ```
//! use qsdnn_tensor::{DataLayout, Shape, Tensor};
//!
//! let shape = Shape::new(1, 3, 2, 2);
//! let t = Tensor::from_fn(shape, DataLayout::Nchw, |n, c, h, w| {
//!     (c * 4 + h * 2 + w) as f32
//! });
//! let u = t.to_layout(DataLayout::Nhwc);
//! assert_eq!(t.at(0, 2, 1, 0), u.at(0, 2, 1, 0));
//! ```

mod error;
mod layout;
mod shape;
mod tensor;

pub use error::TensorError;
pub use layout::DataLayout;
pub use shape::Shape;
pub use tensor::Tensor;
