use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Shape;

/// Memory layout of a 4-D tensor buffer.
///
/// The QS-DNN primitive libraries disagree on layout — e.g. the Vanilla and
/// BLAS `im2col` paths consume `NCHW` while ArmCL-style kernels and the
/// `im2row` lowering consume `NHWC`. Mixing primitives across layers forces
/// layout-conversion *compatibility layers*, whose cost is what the search
/// engine must learn to trade off.
///
/// # Examples
///
/// ```
/// use qsdnn_tensor::{DataLayout, Shape};
///
/// let s = Shape::new(1, 3, 4, 4);
/// // In NCHW the channel stride is the whole spatial plane...
/// assert_eq!(DataLayout::Nchw.strides(&s), [48, 16, 4, 1]);
/// // ...in NHWC channels are innermost.
/// assert_eq!(DataLayout::Nhwc.strides(&s), [48, 1, 12, 3]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataLayout {
    /// Batch, channel, height, width — channels outermost (Caffe/cuDNN
    /// default).
    Nchw,
    /// Batch, height, width, channel — channels innermost (TensorFlow /
    /// ArmCL default).
    Nhwc,
}

impl DataLayout {
    /// All supported layouts.
    pub const ALL: [DataLayout; 2] = [DataLayout::Nchw, DataLayout::Nhwc];

    /// Strides (in elements) for each *logical* dimension `(n, c, h, w)` of
    /// a dense tensor with this layout.
    pub fn strides(&self, shape: &Shape) -> [usize; 4] {
        match self {
            DataLayout::Nchw => [shape.c * shape.h * shape.w, shape.h * shape.w, shape.w, 1],
            DataLayout::Nhwc => [shape.h * shape.w * shape.c, 1, shape.w * shape.c, shape.c],
        }
    }

    /// Flat buffer offset of logical element `(n, c, h, w)`.
    #[inline]
    pub fn offset(&self, shape: &Shape, n: usize, c: usize, h: usize, w: usize) -> usize {
        let s = self.strides(shape);
        n * s[0] + c * s[1] + h * s[2] + w * s[3]
    }

    /// Short lowercase name (`"nchw"` / `"nhwc"`).
    pub fn name(&self) -> &'static str {
        match self {
            DataLayout::Nchw => "nchw",
            DataLayout::Nhwc => "nhwc",
        }
    }
}

impl fmt::Display for DataLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_offsets_are_row_major() {
        let s = Shape::new(2, 3, 4, 5);
        let l = DataLayout::Nchw;
        assert_eq!(l.offset(&s, 0, 0, 0, 0), 0);
        assert_eq!(l.offset(&s, 0, 0, 0, 1), 1);
        assert_eq!(l.offset(&s, 0, 0, 1, 0), 5);
        assert_eq!(l.offset(&s, 0, 1, 0, 0), 20);
        assert_eq!(l.offset(&s, 1, 0, 0, 0), 60);
    }

    #[test]
    fn nhwc_offsets_put_channels_innermost() {
        let s = Shape::new(1, 3, 4, 5);
        let l = DataLayout::Nhwc;
        assert_eq!(l.offset(&s, 0, 0, 0, 0), 0);
        assert_eq!(l.offset(&s, 0, 1, 0, 0), 1);
        assert_eq!(l.offset(&s, 0, 0, 0, 1), 3);
        assert_eq!(l.offset(&s, 0, 0, 1, 0), 15);
    }

    #[test]
    fn offsets_cover_buffer_exactly_once() {
        let s = Shape::new(2, 3, 2, 2);
        for layout in DataLayout::ALL {
            let mut seen = vec![false; s.volume()];
            for n in 0..s.n {
                for c in 0..s.c {
                    for h in 0..s.h {
                        for w in 0..s.w {
                            let o = layout.offset(&s, n, c, h, w);
                            assert!(!seen[o], "{layout} offset {o} repeated");
                            seen[o] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DataLayout::Nchw.to_string(), "nchw");
        assert_eq!(DataLayout::Nhwc.to_string(), "nhwc");
    }
}
