use std::fmt;

use serde::{Deserialize, Serialize};

/// Logical shape of a 4-D tensor in `(N, C, H, W)` order.
///
/// The shape is *layout independent*: it always names dimensions logically
/// (batch, channels, height, width) regardless of how the underlying buffer
/// is laid out. Vectors (e.g. fully-connected activations) are represented
/// as `N × C × 1 × 1`.
///
/// # Examples
///
/// ```
/// use qsdnn_tensor::Shape;
///
/// let s = Shape::new(1, 64, 56, 56);
/// assert_eq!(s.volume(), 64 * 56 * 56);
/// assert_eq!(s.spatial(), 56 * 56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Shape {
    /// Creates a new shape from `(N, C, H, W)` extents.
    pub fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { n, c, h, w }
    }

    /// Shape of a feature vector (`N × C × 1 × 1`), as produced by
    /// fully-connected layers.
    pub fn vector(n: usize, c: usize) -> Self {
        Shape { n, c, h: 1, w: 1 }
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Number of spatial positions (`H × W`).
    pub fn spatial(&self) -> usize {
        self.h * self.w
    }

    /// Number of bytes occupied by an `f32` tensor of this shape.
    pub fn bytes(&self) -> usize {
        self.volume() * std::mem::size_of::<f32>()
    }

    /// Returns `true` if any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.volume() == 0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

impl From<(usize, usize, usize, usize)> for Shape {
    fn from((n, c, h, w): (usize, usize, usize, usize)) -> Self {
        Shape::new(n, c, h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_bytes() {
        let s = Shape::new(2, 3, 4, 5);
        assert_eq!(s.volume(), 120);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.spatial(), 20);
        assert!(!s.is_empty());
    }

    #[test]
    fn vector_shape_has_unit_spatial() {
        let s = Shape::vector(1, 1000);
        assert_eq!(s.h, 1);
        assert_eq!(s.w, 1);
        assert_eq!(s.volume(), 1000);
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::new(1, 0, 3, 3).is_empty());
    }

    #[test]
    fn display_formats_all_dims() {
        assert_eq!(Shape::new(1, 2, 3, 4).to_string(), "1x2x3x4");
    }

    #[test]
    fn from_tuple() {
        let s: Shape = (1, 2, 3, 4).into();
        assert_eq!(s, Shape::new(1, 2, 3, 4));
    }
}
