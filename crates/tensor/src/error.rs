use std::fmt;

use crate::{DataLayout, Shape};

/// Error type for tensor construction and access.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The provided buffer length does not match the shape's element count.
    LengthMismatch {
        /// Elements required by the shape.
        expected: usize,
        /// Elements actually provided.
        got: usize,
    },
    /// Two tensors were expected to share a shape but do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// Two tensors were expected to share a layout but do not.
    LayoutMismatch {
        /// Layout of the left-hand operand.
        left: DataLayout,
        /// Layout of the right-hand operand.
        right: DataLayout,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "buffer length {got} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::LayoutMismatch { left, right } => {
                write!(f, "layout mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = TensorError::LengthMismatch {
            expected: 4,
            got: 3,
        };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
