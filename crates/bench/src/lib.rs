//! Shared harness utilities for the paper-reproduction benchmarks.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md §4); this crate hosts the common plumbing:
//! LUT construction, Best-Single-Library computation and table formatting.

use qsdnn::engine::{AnalyticalPlatform, CostLut, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::primitives::Library;

/// Profiles `network` on the sim-TX2 with the paper's 50-repeat averaging.
///
/// # Panics
///
/// Panics if `network` is not in the zoo.
pub fn lut_for(network: &str, mode: Mode) -> CostLut {
    let net = zoo::by_name(network, 1).expect("network exists in the zoo");
    Profiler::with_repeats(AnalyticalPlatform::tx2(), 50).profile(&net, mode)
}

/// Fast variant (5 repeats) for the sweep-heavy figures.
pub fn lut_for_quick(network: &str, mode: Mode) -> CostLut {
    let net = zoo::by_name(network, 1).expect("network exists in the zoo");
    Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, mode)
}

/// Cost of the single-library global implementation.
pub fn single_library_cost(lut: &CostLut, lib: Library) -> f64 {
    lut.cost(&lut.single_library_assignment(lib))
}

/// Best Single Library: `(library, cost)` of the strongest per-library
/// global implementation.
pub fn best_single_library(lut: &CostLut) -> (Library, f64) {
    Library::ALL
        .iter()
        .map(|&lib| (lib, single_library_cost(lut, lib)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("non-empty library list")
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsl_is_min_over_libraries() {
        let lut = lut_for_quick("lenet5", Mode::Cpu);
        let (lib, cost) = best_single_library(&lut);
        for l in Library::ALL {
            assert!(
                single_library_cost(&lut, l) >= cost,
                "{l} beats reported BSL {lib}"
            );
        }
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-12);
    }
}
