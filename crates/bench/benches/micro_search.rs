//! Criterion micro-benchmarks of the search machinery itself: episode
//! throughput of QS-DNN vs Random Search against a profiled LUT, Phase-1
//! profiling cost, and the exact solvers. Grounds the paper's "the search
//! takes less than 10 min to converge" claim (ours runs in milliseconds
//! because the LUT-backed environment is in-memory).
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench micro_search
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use qsdnn::baselines::{pbqp_search, solve_chain_dp, RandomSearch};
use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::lut_for_quick;

fn bench_search(c: &mut Criterion) {
    let lut = lut_for_quick("mobilenet_v1", Mode::Gpgpu);
    let mut g = c.benchmark_group("search_mobilenet_gpgpu");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    g.bench_function("qsdnn_1000_episodes", |bench| {
        bench.iter(|| {
            QsDnnSearch::new(QsDnnConfig::with_episodes(1000))
                .run(black_box(&lut))
                .best_cost_ms
        })
    });
    g.bench_function("random_1000_episodes", |bench| {
        bench.iter(|| RandomSearch::new(1000, 1).run(black_box(&lut)).best_cost_ms)
    });
    g.bench_function("chain_dp_exact", |bench| {
        bench.iter(|| solve_chain_dp(black_box(&lut)))
    });
    g.bench_function("pbqp", |bench| {
        bench.iter(|| pbqp_search(black_box(&lut)).best_cost_ms)
    });
    g.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let net = zoo::googlenet(1);
    let mut g = c.benchmark_group("phase1_profiling");
    g.measurement_time(Duration::from_secs(5)).sample_size(10);
    g.bench_function("googlenet_gpgpu_5_repeats", |bench| {
        bench.iter(|| {
            Profiler::with_repeats(AnalyticalPlatform::tx2(), 5)
                .profile(black_box(&net), Mode::Gpgpu)
                .len()
        })
    });
    g.finish();
}

fn bench_lut_evaluation(c: &mut Criterion) {
    let lut = lut_for_quick("vgg19", Mode::Gpgpu);
    let assign = lut.greedy_assignment();
    let mut g = c.benchmark_group("lut_evaluation");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    g.bench_function("vgg19_full_cost", |bench| {
        bench.iter(|| black_box(&lut).cost(black_box(&assign)))
    });
    g.finish();
}

criterion_group!(benches, bench_search, bench_profiling, bench_lut_evaluation);
criterion_main!(benches);
