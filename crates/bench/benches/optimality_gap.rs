//! **Optimality audit** (extension beyond the paper's tables): how close
//! each search lands to the provable optimum of the same LUT, per network
//! and mode. Chain networks get the exact DP optimum; branchy ones get the
//! PBQP bound (exact whenever only R0/RI/RII reductions fire).
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench optimality_gap
//! ```

use qsdnn::baselines::{
    pbqp_search, solve_chain_dp, RandomSearch, SimulatedAnnealing, SimulatedAnnealingConfig,
};
use qsdnn::engine::Mode;
use qsdnn::nn::zoo;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{best_single_library, lut_for, rule};

fn main() {
    println!("QS-DNN reproduction — optimality audit (gap to the best known bound)");
    for mode in [Mode::Cpu, Mode::Gpgpu] {
        println!("\n=== {mode} mode ===");
        println!(
            "{:<15} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
            "network",
            "bound(ms)",
            "bound-by",
            "QS-DNN(ms)",
            "RS(ms)",
            "SA(ms)",
            "QS gap",
            "BSL gap"
        );
        rule(100);
        for name in zoo::PAPER_ROSTER {
            let lut = lut_for(name, mode);
            let episodes = 1000usize.max(40 * lut.len());
            let (bound, bound_by) = match solve_chain_dp(&lut) {
                Some((_, c)) => (c, "chain-dp"),
                None => {
                    let p = pbqp_search(&lut);
                    (
                        p.best_cost_ms,
                        if p.method.contains("exact") {
                            "pbqp*"
                        } else {
                            "pbqp-rn"
                        },
                    )
                }
            };
            let qs = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes)).run(&lut);
            let rs = RandomSearch::new(episodes, 1).run(&lut);
            let sa = SimulatedAnnealing::new(SimulatedAnnealingConfig {
                evaluations: episodes,
                ..Default::default()
            })
            .run(&lut);
            let (_, bsl) = best_single_library(&lut);
            println!(
                "{:<15} {:>12.3} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>7.1}% {:>7.1}%",
                name,
                bound,
                bound_by,
                qs.best_cost_ms,
                rs.best_cost_ms,
                sa.best_cost_ms,
                (qs.best_cost_ms / bound - 1.0) * 100.0,
                (bsl / bound - 1.0) * 100.0
            );
        }
    }
    println!("\n(* = exact optimum; QS gap is QS-DNN's distance from the bound,");
    println!("  BSL gap shows how much headroom single-library deployment leaves)");
}
