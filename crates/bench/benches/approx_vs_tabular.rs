//! **Function approximation vs tabular Q** (paper §VII future work: "Deep
//! RL to approximate the value function for better scalability"): the
//! 27-weight linear model against the full Q-table across network sizes and
//! episode budgets.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench approx_vs_tabular
//! ```

use qsdnn::approx::FEATURE_DIM;
use qsdnn::engine::Mode;
use qsdnn::{ApproxQsDnnSearch, QTable, QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{lut_for_quick, mean_std, rule};

const SEEDS: [u64; 3] = [5, 15, 25];

fn main() {
    println!("QS-DNN reproduction — linear value-function approximation vs tabular Q");
    println!("(GPGPU mode; mean best latency over 3 seeds)\n");

    println!(
        "{:<15} {:>8} {:>10} {:>9} {:>12} {:>12} {:>12}",
        "network", "layers", "Q entries", "episodes", "tabular(ms)", "linear(ms)", "lin/tab"
    );
    rule(84);
    for (name, budgets) in [
        ("lenet5", [100usize, 500]),
        ("squeezenet_v11", [200, 1000]),
        ("mobilenet_v1", [200, 1000]),
        ("googlenet", [200, 1000]),
    ] {
        let lut = lut_for_quick(name, Mode::Gpgpu);
        let entries = QTable::new(&lut).entries();
        for episodes in budgets {
            let tab: Vec<f64> = SEEDS
                .iter()
                .map(|&s| {
                    QsDnnSearch::new(QsDnnConfig::with_episodes(episodes).with_seed(s))
                        .run(&lut)
                        .best_cost_ms
                })
                .collect();
            let lin: Vec<f64> = SEEDS
                .iter()
                .map(|&s| {
                    ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(episodes).with_seed(s))
                        .run(&lut)
                        .best_cost_ms
                })
                .collect();
            let (tm, _) = mean_std(&tab);
            let (lm, _) = mean_std(&lin);
            println!(
                "{:<15} {:>8} {:>10} {:>9} {:>12.2} {:>12.2} {:>11.2}x",
                name,
                lut.len(),
                entries,
                episodes,
                tm,
                lm,
                lm / tm
            );
        }
    }
    rule(84);
    println!(
        "linear model: {FEATURE_DIM} shared weights; tabular: one value per (depth, prev, action)"
    );
    println!("(lin/tab < 1 means the approximation generalizes better at that budget)");
}
