//! **Batch-size study** (extension): how the learned implementation changes
//! with batch size. The paper evaluates single-image latency; batching
//! shifts FC layers from GEMV (weights re-streamed per sample) to batched
//! GEMM (weights amortized) and improves per-image throughput.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench batch_sweep
//! ```

use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::{zoo, LayerTag};
use qsdnn::primitives::Algorithm;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::rule;

fn main() {
    // CPU mode: on the GPU, cuBLAS bandwidth hides the GEMV re-streaming,
    // so the algorithm migration is a CPU phenomenon.
    println!("QS-DNN reproduction — batch-size sweep (CPU mode)");
    for name in ["lenet5", "alexnet"] {
        println!("\nnetwork: {name}");
        println!(
            "{:>6} {:>14} {:>16} {:>22}",
            "batch", "latency(ms)", "per-image(ms)", "fc algorithms chosen"
        );
        rule(64);
        let mut prev_per_image = f64::INFINITY;
        for batch in [1usize, 2, 4, 8] {
            let net = zoo::by_name(name, batch).expect("roster");
            let lut =
                Profiler::with_repeats(AnalyticalPlatform::tx2(), 10).profile(&net, Mode::Cpu);
            let episodes = 1000usize.max(40 * lut.len());
            let report = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes)).run(&lut);
            let mut fc_algos: Vec<&'static str> = Vec::new();
            for (l, &ci) in report.best_assignment.iter().enumerate() {
                if lut.layers()[l].tag == LayerTag::Fc {
                    fc_algos.push(match lut.candidates(l)[ci].algorithm {
                        Algorithm::Gemv => "gemv",
                        Algorithm::Gemm => "gemm",
                        Algorithm::SparseCsr => "sparse",
                        _ => "other",
                    });
                }
            }
            let per_image = report.best_cost_ms / batch as f64;
            println!(
                "{batch:>6} {:>14.3} {:>16.3} {:>22}",
                report.best_cost_ms,
                per_image,
                fc_algos.join(",")
            );
            assert!(
                per_image <= prev_per_image * 1.05,
                "per-image latency should not grow materially with batch"
            );
            prev_per_image = per_image;
        }
    }
    println!("\nbatching amortizes weight traffic; FC layers migrate GEMV -> GEMM ✔");
}
