//! **Fig. 4** — the RL learning curve: 1000 episodes, first 500 fully
//! exploratory, then ε decreased by 0.1 every 50 episodes towards
//! exploitation. Prints the per-episode series (decimated) exactly as the
//! figure plots it: inference time of the sampled implementation per
//! episode plus the ε staircase.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench fig4_learning_curve
//! ```

use qsdnn::engine::Mode;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{lut_for, mean_std, rule};

fn main() {
    println!("QS-DNN reproduction — Fig. 4 (learning curve, MobileNet-v1, GPGPU)");
    let lut = lut_for("mobilenet_v1", Mode::Gpgpu);
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(1000)).run(&lut);

    println!("\nepisode  epsilon  sampled_ms  best_so_far_ms");
    rule(48);
    for r in report.curve.iter().step_by(25) {
        println!(
            "{:>7}  {:>7.2}  {:>10.3}  {:>14.3}",
            r.episode, r.epsilon, r.cost_ms, r.best_so_far_ms
        );
    }
    let last = report.curve.last().expect("non-empty");
    println!(
        "{:>7}  {:>7.2}  {:>10.3}  {:>14.3}",
        last.episode, last.epsilon, last.cost_ms, last.best_so_far_ms
    );

    // Quantitative shape checks mirroring the figure.
    let explore: Vec<f64> = report.curve[..500].iter().map(|r| r.cost_ms).collect();
    let exploit: Vec<f64> = report.curve[950..].iter().map(|r| r.cost_ms).collect();
    let (m_explore, s_explore) = mean_std(&explore);
    let (m_exploit, s_exploit) = mean_std(&exploit);
    rule(48);
    println!("exploration phase (ep 0-499)  : {m_explore:>9.2} ± {s_explore:.2} ms");
    println!("exploitation tail (ep 950-999): {m_exploit:>9.2} ± {s_exploit:.2} ms");
    println!(
        "best found                    : {:>9.2} ms",
        report.best_cost_ms
    );
    println!(
        "search wall time              : {:>9.0} ms",
        report.wall_time_ms
    );

    assert!(
        m_exploit < m_explore,
        "exploitation must sample far better paths"
    );
    assert!(s_exploit < s_explore, "variance must collapse as ε→0");
    assert!(report.curve[499].epsilon == 1.0 && report.curve[500].epsilon < 1.0);
    println!("\ncurve shape matches the paper's Fig. 4 ✔");
}
