//! **Fig. 5** — RL vs Random Search on MobileNet-v1: mean best-found
//! inference time over 5 full searches per episode budget, with variance
//! shrinking as the search converges. Also reproduces the §VI.B quotes:
//! RS ≈ 50% worse than RL at 25 episodes and ≈ 2× worse after 350.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench fig5_rl_vs_rs
//! ```

use qsdnn::baselines::RandomSearch;
use qsdnn::engine::Mode;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{lut_for, mean_std, rule};

const BUDGETS: [usize; 8] = [25, 50, 100, 200, 350, 500, 700, 1000];
const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

fn main() {
    println!("QS-DNN reproduction — Fig. 5 (RL vs RS, MobileNet-v1, GPGPU)");
    println!("(each point: mean ± std of the best implementation over 5 full searches)\n");
    let lut = lut_for("mobilenet_v1", Mode::Gpgpu);

    println!(
        "{:>8}  {:>10} {:>8}   {:>10} {:>8}   {:>8}",
        "episodes", "RL mean", "RL std", "RS mean", "RS std", "RS/RL"
    );
    rule(64);

    let mut ratio_at = std::collections::BTreeMap::new();
    for budget in BUDGETS {
        let rl: Vec<f64> = SEEDS
            .iter()
            .map(|&s| {
                QsDnnSearch::new(QsDnnConfig::with_episodes(budget).with_seed(s))
                    .run(&lut)
                    .best_cost_ms
            })
            .collect();
        let rs: Vec<f64> = SEEDS
            .iter()
            .map(|&s| RandomSearch::new(budget, s).run(&lut).best_cost_ms)
            .collect();
        let (rl_m, rl_s) = mean_std(&rl);
        let (rs_m, rs_s) = mean_std(&rs);
        ratio_at.insert(budget, rs_m / rl_m);
        println!(
            "{budget:>8}  {rl_m:>8.2}ms {rl_s:>7.2}   {rs_m:>8.2}ms {rs_s:>7.2}   {:>7.2}x",
            rs_m / rl_m
        );
    }

    rule(64);
    println!("§VI.B shape checks:");
    println!(
        "  RS/RL at   25 episodes: {:.2}x (paper: ~1.5x)",
        ratio_at[&25]
    );
    println!(
        "  RS/RL at  350 episodes: {:.2}x (paper: ~2x)",
        ratio_at[&350]
    );
    println!("  RS/RL at 1000 episodes: {:.2}x", ratio_at[&1000]);
    assert!(ratio_at[&350] > 1.0, "RL must lead at 350 episodes");
    assert!(ratio_at[&1000] > 1.0, "RL must lead at 1000 episodes");
    println!("\nRL dominates RS at every budget ✔");
}
