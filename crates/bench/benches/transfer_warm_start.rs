//! **Scenario-transfer study**: how many episodes a QS-DNN search needs to
//! get within 5% of the chain optimum, cold vs warm-started from the
//! previous batch size's plan — the batch-sweep shape of
//! `batch_sweep.rs`, now with transfer — plus a **cross-platform sweep**:
//! the same network solved on one registry platform warm-starts the
//! search on another (descriptor distance scores genuine spec divergence
//! since the platform registry landed, so these donors are admissible).
//!
//! Results are printed as a table *and* recorded as JSON under
//! `crates/bench/results/transfer_warm_start.json`, so the repository
//! carries a perf trajectory for the transfer subsystem.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench transfer_warm_start
//! ```

use serde::Serialize;

use qsdnn::baselines::solve_chain_dp;
use qsdnn::engine::{
    AnalyticalPlatform, CostLut, Mode, PlatformRegistry, Profiler, ScenarioDescriptor,
};
use qsdnn::nn::zoo;
use qsdnn::{QTable, QsDnnConfig, QsDnnSearch, SearchReport, TransferMapping};
use qsdnn_bench::rule;

const BATCHES: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct RunRecord {
    episodes_total: usize,
    episodes_to_5pct: usize,
    best_ms: f64,
}

#[derive(Serialize)]
struct SweepPoint {
    batch: usize,
    optimum_ms: f64,
    cold: RunRecord,
    /// `None` for the first batch (nothing to transfer from yet).
    warm: Option<RunRecord>,
    donor_distance: f64,
}

#[derive(Serialize)]
struct NetworkSweep {
    network: String,
    points: Vec<SweepPoint>,
}

#[derive(Serialize)]
struct CrossPlatformPoint {
    network: String,
    donor_platform: String,
    target_platform: String,
    donor_distance: f64,
    optimum_ms: f64,
    cold: RunRecord,
    warm: RunRecord,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    mode: String,
    sweeps: Vec<NetworkSweep>,
    cross_platform: Vec<CrossPlatformPoint>,
}

/// First episode count whose best-so-far is within 5% of the optimum
/// (the whole budget if the run never gets there).
fn episodes_to_5pct(report: &SearchReport, optimum: f64) -> usize {
    report
        .curve
        .iter()
        .position(|r| r.best_so_far_ms <= optimum * 1.05 + 1e-12)
        .map_or(report.curve.len(), |i| i + 1)
}

fn record(report: &SearchReport, optimum: f64) -> RunRecord {
    RunRecord {
        episodes_total: report.episodes,
        episodes_to_5pct: episodes_to_5pct(report, optimum),
        best_ms: report.best_cost_ms,
    }
}

/// Rebuilds the donor's policy-backbone table from its plan — the same
/// reconstruction `qsdnn-serve` uses for cached donors: per-candidate
/// mean times only (the descriptor carries no transition penalties), so
/// the bench measures exactly what the served warm-start path achieves.
fn backbone(lut: &CostLut, report: &SearchReport) -> QTable {
    let dims: Vec<usize> = (0..lut.len()).map(|l| lut.candidates(l).len()).collect();
    let costs: Vec<f64> = report
        .best_assignment
        .iter()
        .enumerate()
        .map(|(l, &ci)| lut.time(l, ci))
        .collect();
    QTable::from_best_path(&dims, &report.best_assignment, &costs).expect("consistent plan")
}

fn main() {
    println!("QS-DNN reproduction — scenario transfer: cold vs warm batch sweep (CPU mode)");
    let mut sweeps = Vec::new();
    for name in ["lenet5", "alexnet"] {
        println!("\nnetwork: {name}");
        println!(
            "{:>6} {:>12} {:>14} {:>14} {:>12} {:>12}",
            "batch", "optimum(ms)", "cold to-5%", "warm to-5%", "cold best", "warm best"
        );
        rule(76);
        let mut points: Vec<SweepPoint> = Vec::new();
        let mut donor: Option<(CostLut, ScenarioDescriptor, SearchReport)> = None;
        for batch in BATCHES {
            let net = zoo::by_name(name, batch).expect("roster");
            let lut =
                Profiler::with_repeats(AnalyticalPlatform::tx2(), 10).profile(&net, Mode::Cpu);
            let descriptor = ScenarioDescriptor::of(&lut).with_batch(batch);
            let (_, optimum) = solve_chain_dp(&lut).expect("roster networks are chains");
            let episodes = 1000usize.max(40 * lut.len());

            let cold_cfg = QsDnnConfig::with_episodes(episodes);
            let cold = QsDnnSearch::new(cold_cfg.clone()).run(&lut);

            let (warm, donor_distance) = match &donor {
                None => (None, 0.0),
                Some((donor_lut, donor_desc, donor_report)) => {
                    let mapping = TransferMapping::between(donor_desc, &descriptor);
                    let table = backbone(donor_lut, donor_report);
                    let mut cfg = cold_cfg.clone();
                    cfg.warm_start = true;
                    let report = QsDnnSearch::new(cfg).run_warm(&lut, &table, &mapping);
                    (Some(report), donor_desc.distance(&descriptor))
                }
            };

            let cold_rec = record(&cold, optimum);
            let warm_rec = warm.as_ref().map(|r| record(r, optimum));
            println!(
                "{batch:>6} {optimum:>12.3} {:>9}/{:<4} {:>9}/{:<4} {:>12.3} {:>12}",
                cold_rec.episodes_to_5pct,
                cold_rec.episodes_total,
                warm_rec.as_ref().map_or(0, |w| w.episodes_to_5pct),
                warm_rec.as_ref().map_or(0, |w| w.episodes_total),
                cold_rec.best_ms,
                warm_rec
                    .as_ref()
                    .map_or("-".to_string(), |w| format!("{:.3}", w.best_ms)),
            );
            if let Some(w) = &warm_rec {
                assert!(
                    w.episodes_total < cold_rec.episodes_total,
                    "warm runs a shortened schedule"
                );
                assert!(
                    w.episodes_to_5pct <= cold_rec.episodes_to_5pct,
                    "a batch neighbor's plan must not slow convergence \
                     (warm {} vs cold {})",
                    w.episodes_to_5pct,
                    cold_rec.episodes_to_5pct
                );
                assert!(
                    w.best_ms <= cold_rec.best_ms * 1.05 + 1e-9,
                    "warm stays within 5% of the cold plan"
                );
            }
            // Next batch warm-starts from this one, chaining the sweep.
            donor = Some((lut, descriptor, cold));
            points.push(SweepPoint {
                batch,
                optimum_ms: optimum,
                cold: cold_rec,
                warm: warm_rec,
                donor_distance,
            });
        }
        sweeps.push(NetworkSweep {
            network: name.to_string(),
            points,
        });
    }

    // Cross-platform sweep: solve each platform cold, then warm every
    // ordered pair from the other platform's plan at the same batch.
    // `Mode::Cpu` keeps the CPU-only target in the roster.
    const PLATFORMS: [&str; 3] = ["sim-tx2", "sim-gpu-heavy", "sim-cpu-only"];
    let registry = PlatformRegistry::builtin();
    let mut cross_platform = Vec::new();
    for name in ["lenet5", "alexnet"] {
        println!("\ncross-platform transfer: {name} (batch 1)");
        println!(
            "{:>14} -> {:<14} {:>9} {:>14} {:>14} {:>12}",
            "donor", "target", "distance", "cold to-5%", "warm to-5%", "warm best"
        );
        rule(84);
        let solved: Vec<(String, CostLut, ScenarioDescriptor, SearchReport, f64)> = PLATFORMS
            .iter()
            .map(|platform| {
                let spec = registry.resolve(platform).expect("built-in");
                let net = zoo::by_name(name, 1).expect("roster");
                let lut =
                    Profiler::with_repeats(registry.instantiate(spec), 10).profile(&net, Mode::Cpu);
                let descriptor = ScenarioDescriptor::of(&lut)
                    .with_batch(1)
                    .with_platform_features(spec.features());
                let (_, optimum) = solve_chain_dp(&lut).expect("chain");
                let episodes = 1000usize.max(40 * lut.len());
                let cold = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes)).run(&lut);
                (spec.name.clone(), lut, descriptor, cold, optimum)
            })
            .collect();
        for (donor_name, donor_lut, donor_desc, donor_report, _) in &solved {
            for (target_name, lut, descriptor, cold, optimum) in &solved {
                if donor_name == target_name {
                    continue;
                }
                let mapping = TransferMapping::between(donor_desc, descriptor);
                let table = backbone(donor_lut, donor_report);
                let mut cfg = QsDnnConfig::with_episodes(cold.episodes);
                cfg.warm_start = true;
                let warm = QsDnnSearch::new(cfg).run_warm(lut, &table, &mapping);
                let cold_rec = record(cold, *optimum);
                let warm_rec = record(&warm, *optimum);
                let distance = donor_desc.distance(descriptor);
                println!(
                    "{donor_name:>14} -> {target_name:<14} {distance:>9.3} {:>9}/{:<4} {:>9}/{:<4} {:>12.3}",
                    cold_rec.episodes_to_5pct,
                    cold_rec.episodes_total,
                    warm_rec.episodes_to_5pct,
                    warm_rec.episodes_total,
                    warm_rec.best_ms,
                );
                assert!(
                    warm_rec.episodes_total < cold_rec.episodes_total,
                    "warm runs a shortened schedule"
                );
                assert!(
                    warm_rec.episodes_to_5pct <= cold_rec.episodes_to_5pct,
                    "a cross-platform donor must not slow convergence \
                     ({donor_name} -> {target_name}: warm {} vs cold {})",
                    warm_rec.episodes_to_5pct,
                    cold_rec.episodes_to_5pct
                );
                assert!(
                    warm_rec.best_ms <= cold_rec.best_ms * 1.05 + 1e-9,
                    "warm stays within 5% of the cold plan"
                );
                cross_platform.push(CrossPlatformPoint {
                    network: name.to_string(),
                    donor_platform: donor_name.clone(),
                    target_platform: target_name.clone(),
                    donor_distance: distance,
                    optimum_ms: *optimum,
                    cold: cold_rec,
                    warm: warm_rec,
                });
            }
        }
    }

    let report = BenchReport {
        bench: "transfer_warm_start".into(),
        mode: "cpu".into(),
        sweeps,
        cross_platform,
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("transfer_warm_start.json");
    std::fs::create_dir_all(out.parent().expect("has parent")).expect("create results dir");
    std::fs::write(&out, &json).expect("write bench json");
    println!("\nwarm starts converge in a fraction of the cold episode budget ✔");
    println!("recorded {}", out.display());
}
