//! **Fig. 3** — profiling of compatibility layers between all consecutive
//! layers ("exceptions and branches are handled"): edge coverage on the
//! branchiest network (GoogLeNet), penalty distribution, and the Phase-1
//! sweep count.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench fig3_compat_profile
//! ```

use qsdnn::engine::{AnalyticalPlatform, Mode, Profiler};
use qsdnn::nn::zoo;
use qsdnn_bench::rule;

fn main() {
    println!("QS-DNN reproduction — Fig. 3 (compatibility-layer profiling)");

    for name in ["googlenet", "resnet18", "squeezenet_v11", "vgg19"] {
        let net = zoo::by_name(name, 1).expect("roster");
        let sweeps = Profiler::<AnalyticalPlatform>::inference_count(&net, Mode::Gpgpu);
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 5).profile(&net, Mode::Gpgpu);

        let graph_edges = net.edges().len();
        let lut_edges: usize = lut.layers().iter().map(|l| l.incoming.len()).sum();
        let joins = net.layers().iter().filter(|n| n.inputs.len() > 1).count();
        let branches = net.consumers().iter().filter(|c| c.len() > 1).count();

        let mut pairs = 0usize;
        let mut nonzero = 0usize;
        let mut max_pen = 0.0f64;
        for entry in lut.layers() {
            for e in &entry.incoming {
                pairs += e.penalty.len();
                nonzero += e.penalty.iter().filter(|&&p| p > 0.0).count();
                max_pen = e.penalty.iter().fold(max_pen, |m, &p| m.max(p));
            }
        }

        rule(72);
        println!("{name}: {} layers, {} graph edges", net.len(), graph_edges);
        println!("  Phase-1 whole-network sweeps (one per global impl + compat): {sweeps}");
        println!("  edges profiled in LUT        : {lut_edges} (must equal graph edges)");
        println!("  multi-input joins handled    : {joins}");
        println!("  fan-out branch points        : {branches}");
        println!(
            "  primitive pairs profiled     : {pairs} ({nonzero} incompatible, max penalty {max_pen:.3} ms)"
        );
        assert_eq!(lut_edges, graph_edges, "every branch edge must be profiled");
    }
    println!("\nall branches and exceptions handled ✔");
}
