//! Wire throughput on the cache-hit hot path: the same warm plan batch
//! pipelined over a protocol-v2 (JSON lines) connection and a
//! protocol-v3 (binary frames) connection to the *same* server, so both
//! sides read the same plan-cache entries and only the wire layer
//! differs. The v3 side additionally exercises the zero-copy path: an
//! eligible cache hit's response body is preserialized next to the
//! cached plan, so serving it is one memcpy into the outbox instead of
//! a fresh encode per request.
//!
//! Method: `ROUNDS` pipelined replays of a `BATCH`-request warm batch
//! per trial, best of `TRIALS` interleaved trials per side (min-of-N
//! suppresses scheduler noise the way the other micro benches do).
//! The run fails unless v3 sustains at least `MIN_SPEEDUP`× the v2
//! request rate, and records the measurement in
//! `crates/bench/results/wire_throughput.json`.

use serde::Serialize;

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{PlanRequest, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const TRIALS: usize = 7;
const ROUNDS: usize = 150;
const BATCH: usize = 32;
const MIN_SPEEDUP: f64 = 2.0;

#[derive(Serialize)]
struct SideReport {
    label: String,
    protocol: u32,
    binary: bool,
    best_trial_s: f64,
    requests_per_s: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    trials: usize,
    rounds: usize,
    requests_per_round: usize,
    sides: Vec<SideReport>,
    /// v3 request rate over v2 request rate on the pipelined hot path.
    v3_speedup: f64,
}

fn requests() -> Vec<PlanRequest> {
    (0..BATCH)
        .map(|i| PlanRequest {
            // Small networks keep the per-hit response clone cheap; the
            // wide seed portfolio keeps the response float-heavy, which
            // is exactly what the wire layers differ on (text formatting
            // versus raw IEEE-754 bits).
            network: ["tiny_cnn", "toy_branchy"][i % 2].to_string(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: 120 + i % 4,
            seeds: (0..8).map(|s| 0x5EED + s).collect(),
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        })
        .collect()
}

/// One trial: `ROUNDS` pipelined replays of the warm batch; returns the
/// wall seconds for the whole trial.
fn trial(client: &mut PlanClient, reqs: &[PlanRequest]) -> f64 {
    let started = std::time::Instant::now();
    for _ in 0..ROUNDS {
        let plans = client.plan_many(reqs).expect("pipelined batch");
        for plan in &plans {
            assert!(plan.cache_hit, "hot path must stay cache-served");
        }
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    println!("QS-DNN reproduction — wire throughput, JSON v2 vs binary v3, cache-hit hot path");
    let reqs = requests();

    // Observability off: obs_overhead.rs owns that measurement; this
    // bench isolates the wire layer.
    let server = PlanServer::start(ServerConfig {
        threads: 2,
        max_in_flight: BATCH,
        instrument: false,
        recorder: false,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    let mut v2 = PlanClient::connect_with_version(addr, 2).expect("v2 connect");
    assert!(!v2.is_binary(), "v2 connection must stay on JSON framing");
    let mut v3 = PlanClient::connect(addr).expect("v3 connect");
    assert!(v3.is_binary(), "default connection must negotiate v3");

    // Populate the shared plan cache (cold searches) and fault in every
    // code path — the v3 warm replay also attaches the preserialized
    // bodies — before anything is timed.
    let warmup = v2.plan_many(&reqs).expect("cold warmup");
    assert_eq!(warmup.len(), reqs.len());
    trial(&mut v2, &reqs);
    trial(&mut v3, &reqs);

    // Interleave trials so slow drift (thermal, noisy neighbors) hits
    // both sides equally; keep the best trial per side.
    let (mut best_v2, mut best_v3) = (f64::INFINITY, f64::INFINITY);
    for t in 0..TRIALS {
        let s2 = trial(&mut v2, &reqs);
        best_v2 = best_v2.min(s2);
        let s3 = trial(&mut v3, &reqs);
        best_v3 = best_v3.min(s3);
        println!(
            "trial {}/{TRIALS}  v2 {s2:.4} s (best {best_v2:.4})  v3 {s3:.4} s (best {best_v3:.4})",
            t + 1
        );
    }

    let per_trial = (ROUNDS * BATCH) as f64;
    let v3_speedup = best_v2 / best_v3;
    println!(
        "hot hit path: v2 {:.0} req/s, v3 {:.0} req/s ({v3_speedup:.2}x)",
        per_trial / best_v2,
        per_trial / best_v3
    );
    assert!(
        v3_speedup >= MIN_SPEEDUP,
        "v3 cache-hit throughput is only {v3_speedup:.2}x v2 (floor {MIN_SPEEDUP}x)"
    );

    let report = BenchReport {
        bench: "wire_throughput".into(),
        trials: TRIALS,
        rounds: ROUNDS,
        requests_per_round: BATCH,
        sides: vec![
            SideReport {
                label: "json-v2".into(),
                protocol: 2,
                binary: false,
                best_trial_s: best_v2,
                requests_per_s: per_trial / best_v2,
            },
            SideReport {
                label: "binary-v3".into(),
                protocol: 3,
                binary: true,
                best_trial_s: best_v3,
                requests_per_s: per_trial / best_v3,
            },
        ],
        v3_speedup,
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("wire_throughput.json");
    std::fs::create_dir_all(out.parent().expect("has parent")).expect("create results dir");
    std::fs::write(&out, &json).expect("write bench json");
    server.shutdown();
    println!("v3 clears the {MIN_SPEEDUP}x floor ✔");
    println!("recorded {}", out.display());
}
