//! **Ablations** — the design choices §IV/V call out, isolated one at a
//! time on MobileNet-v1 (GPGPU) and GoogLeNet (GPGPU):
//!
//! * reward shaping (per-layer negated times) vs a single terminal reward;
//! * experience replay on vs off;
//! * the paper's ε schedule vs constant-ε and linear decay;
//! * learning-rate α and discount γ sweeps.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench ablations
//! ```

use qsdnn::engine::Mode;
use qsdnn::{EpsilonSchedule, QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{lut_for_quick, mean_std, rule};

const SEEDS: [u64; 5] = [7, 17, 27, 37, 47];
const EPISODES: usize = 500;

fn run(lut: &qsdnn::engine::CostLut, make: impl Fn(u64) -> QsDnnConfig) -> (f64, f64) {
    let costs: Vec<f64> = SEEDS
        .iter()
        .map(|&s| QsDnnSearch::new(make(s)).run(lut).best_cost_ms)
        .collect();
    mean_std(&costs)
}

fn main() {
    println!("QS-DNN reproduction — ablations ({EPISODES} episodes, 5 seeds)\n");
    for net in ["mobilenet_v1", "googlenet"] {
        let lut = lut_for_quick(net, Mode::Gpgpu);
        println!("network: {net}");
        rule(58);

        let base = |s: u64| QsDnnConfig::with_episodes(EPISODES).with_seed(s);
        let (m, sd) = run(&lut, base);
        println!(
            "{:<34} {m:>9.2} ± {sd:.2} ms",
            "paper config (shaping+replay)"
        );

        let (m_ns, sd_ns) = run(&lut, |s| QsDnnConfig {
            reward_shaping: false,
            ..base(s)
        });
        println!("{:<34} {m_ns:>9.2} ± {sd_ns:.2} ms", "terminal reward only");

        let (m_nr, sd_nr) = run(&lut, |s| QsDnnConfig {
            replay: false,
            ..base(s)
        });
        println!("{:<34} {m_nr:>9.2} ± {sd_nr:.2} ms", "no experience replay");

        let (m_nj, sd_nj) = run(&lut, |s| QsDnnConfig {
            jumpstart: true,
            ..base(s)
        });
        println!(
            "{:<34} {m_nj:>9.2} ± {sd_nj:.2} ms",
            "decaying alpha (jumpstart)"
        );

        let (m_c, sd_c) = run(&lut, |s| QsDnnConfig {
            schedule: EpsilonSchedule::constant(0.3, EPISODES),
            ..base(s)
        });
        println!("{:<34} {m_c:>9.2} ± {sd_c:.2} ms", "constant eps = 0.3");

        let (m_l, sd_l) = run(&lut, |s| QsDnnConfig {
            schedule: EpsilonSchedule::linear(EPISODES),
            ..base(s)
        });
        println!("{:<34} {m_l:>9.2} ± {sd_l:.2} ms", "linear eps decay");

        for alpha in [0.01, 0.05, 0.2] {
            let (ma, sa) = run(&lut, |s| QsDnnConfig { alpha, ..base(s) });
            println!("{:<34} {ma:>9.2} ± {sa:.2} ms", format!("alpha = {alpha}"));
        }
        for gamma in [0.5, 0.9, 1.0] {
            let (mg, sg) = run(&lut, |s| QsDnnConfig { gamma, ..base(s) });
            println!("{:<34} {mg:>9.2} ± {sg:.2} ms", format!("gamma = {gamma}"));
        }
        println!();
    }
    println!("(lower is better; the paper config should be at or near the top)");
}
