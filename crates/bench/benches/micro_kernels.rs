//! Criterion micro-benchmarks of the executable kernels: GEMM variants and
//! the convolution algorithm families. These verify, with *wall-clock*
//! numbers, the ordering the analytical platform assumes (direct ≪
//! GEMM-lowered < Winograd for 3×3/s1).
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench micro_kernels
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use qsdnn::gemm::{sgemm_blocked, sgemm_naive, sgemm_packed, BlasBackend, Gemm};
use qsdnn::nn::ConvParams;
use qsdnn::primitives::kernels::{conv_direct, lowering, winograd};
use qsdnn::tensor::{DataLayout, Shape, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let (m, k, n) = (96, 128, 96);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.1).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; m * n];
    let mut g = c.benchmark_group("sgemm_96x128x96");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    g.bench_function("naive", |bench| {
        bench.iter(|| sgemm_naive(m, k, n, black_box(&a), black_box(&b), &mut out))
    });
    g.bench_function("blocked_atlas", |bench| {
        bench.iter(|| sgemm_blocked(m, k, n, black_box(&a), black_box(&b), &mut out, 32, 64, 32))
    });
    g.bench_function("packed_openblas", |bench| {
        bench.iter(|| sgemm_packed(m, k, n, black_box(&a), black_box(&b), &mut out))
    });
    g.finish();
}

fn bench_conv_algorithms(c: &mut Criterion) {
    // A mid-size 3x3/s1 convolution where every algorithm family applies.
    let in_shape = Shape::new(1, 16, 32, 32);
    let p = ConvParams::square(32, 3, 1, 1);
    let out_shape = Shape::new(1, 32, 32, 32);
    let input = Tensor::random(in_shape, DataLayout::Nchw, 3);
    let input_nhwc = input.to_layout(DataLayout::Nhwc);
    let w: Vec<f32> = (0..32 * 16 * 9)
        .map(|i| ((i % 11) as f32 - 5.0) * 0.05)
        .collect();
    let bias = vec![0.1f32; 32];
    let gemm = Gemm::new(BlasBackend::OpenBlasLike);

    let mut g = c.benchmark_group("conv_3x3_16to32_32x32");
    g.measurement_time(Duration::from_secs(3)).sample_size(15);
    g.bench_function("vanilla_direct", |bench| {
        bench.iter(|| {
            conv_direct::conv_direct_vanilla(
                black_box(&input),
                &w,
                &bias,
                &p,
                out_shape,
                DataLayout::Nchw,
            )
        })
    });
    g.bench_function("nnpack_direct_opt", |bench| {
        bench.iter(|| conv_direct::conv_direct_opt(black_box(&input), &w, &bias, &p, out_shape))
    });
    g.bench_function("blas_im2col_gemm", |bench| {
        bench.iter(|| lowering::conv_im2col_gemm(black_box(&input), &w, &bias, &p, out_shape, gemm))
    });
    g.bench_function("blas_im2row_gemm", |bench| {
        bench.iter(|| {
            lowering::conv_im2row_gemm(black_box(&input_nhwc), &w, &bias, &p, out_shape, gemm)
        })
    });
    g.bench_function("blas_kn2row_gemm", |bench| {
        bench.iter(|| lowering::conv_kn2row_gemm(black_box(&input), &w, &bias, &p, out_shape, gemm))
    });
    g.bench_function("winograd_f2x2", |bench| {
        bench.iter(|| winograd::conv_winograd(black_box(&input), &w, &bias, &p, out_shape))
    });
    g.finish();
}

fn bench_layout_conversion(c: &mut Criterion) {
    let t = Tensor::random(Shape::new(1, 64, 56, 56), DataLayout::Nchw, 9);
    let mut g = c.benchmark_group("compatibility_layer");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("nchw_to_nhwc_64x56x56", |bench| {
        bench.iter(|| black_box(&t).to_layout(DataLayout::Nhwc))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_conv_algorithms,
    bench_layout_conversion
);
criterion_main!(benches);
