//! Observability overhead on the hot path: cached plan requests (the
//! fastest thing the server does end to end) against two identically
//! configured servers, one with instrumentation on (spans, histograms,
//! gauges — the default) and one with `instrument: false`. The run
//! fails if spans cost more than 5% of hot-hit-path throughput, and
//! records the measurement in `crates/bench/results/obs_overhead.json`.
//!
//! Method: one pipelined (protocol-v2) connection per server replays the
//! same warm plan batch for `ROUNDS` rounds per trial; the best of
//! `TRIALS` interleaved trials is kept per server, which suppresses
//! scheduler noise the way min-of-N does in the micro benches.

use serde::Serialize;

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{PlanRequest, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const TRIALS: usize = 7;
const ROUNDS: usize = 200;
const BATCH: usize = 32;
const MAX_OVERHEAD_PCT: f64 = 5.0;

#[derive(Serialize)]
struct SideReport {
    instrument: bool,
    best_round_trip_s: f64,
    requests_per_s: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    trials: usize,
    rounds: usize,
    requests_per_round: usize,
    off: SideReport,
    on: SideReport,
    overhead_pct: f64,
}

fn config(instrument: bool) -> ServerConfig {
    ServerConfig {
        threads: 2,
        max_in_flight: BATCH,
        instrument,
        ..ServerConfig::default()
    }
}

fn requests() -> Vec<PlanRequest> {
    (0..BATCH)
        .map(|i| PlanRequest {
            network: ["tiny_cnn", "toy_branchy"][i % 2].to_string(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: 120 + i % 4,
            seeds: vec![0x5EED],
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        })
        .collect()
}

/// One trial: `ROUNDS` pipelined replays of the warm batch; returns the
/// wall seconds for the whole trial.
fn trial(client: &mut PlanClient, reqs: &[PlanRequest]) -> f64 {
    let started = std::time::Instant::now();
    for _ in 0..ROUNDS {
        let plans = client.plan_many(reqs).expect("pipelined batch");
        for plan in &plans {
            assert!(plan.cache_hit, "hot path must stay cache-served");
        }
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    println!("QS-DNN reproduction — observability overhead on the cached-plan hot path");
    let reqs = requests();

    let mut servers = Vec::new();
    let mut clients = Vec::new();
    for instrument in [false, true] {
        let server = PlanServer::start(config(instrument)).expect("start server");
        let mut client = PlanClient::connect(server.local_addr()).expect("connect");
        // Populate the cache (cold searches) and fault in every code
        // path once before anything is timed.
        let warmup = client.plan_many(&reqs).expect("warmup batch");
        assert_eq!(warmup.len(), reqs.len());
        trial(&mut client, &reqs);
        servers.push(server);
        clients.push(client);
    }

    // Interleave trials so slow drift (thermal, noisy neighbors) hits
    // both sides equally; keep the best trial per side.
    let mut best = [f64::INFINITY; 2];
    for t in 0..TRIALS {
        for (side, client) in clients.iter_mut().enumerate() {
            let s = trial(client, &reqs);
            best[side] = best[side].min(s);
            println!(
                "trial {}/{TRIALS} instrument={} {s:.4} s (best {:.4} s)",
                t + 1,
                side == 1,
                best[side]
            );
        }
    }

    let per_trial = (ROUNDS * BATCH) as f64;
    let side = |i: usize| SideReport {
        instrument: i == 1,
        best_round_trip_s: best[i],
        requests_per_s: per_trial / best[i],
    };
    let overhead_pct = (best[1] - best[0]) / best[0] * 100.0;
    println!(
        "\nhot hit path: {:.0} req/s uninstrumented, {:.0} req/s instrumented \
         -> {overhead_pct:+.2}% overhead",
        per_trial / best[0],
        per_trial / best[1]
    );
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT,
        "instrumentation costs {overhead_pct:.2}% on the hot path (budget {MAX_OVERHEAD_PCT}%)"
    );

    let report = BenchReport {
        bench: "obs_overhead".into(),
        trials: TRIALS,
        rounds: ROUNDS,
        requests_per_round: BATCH,
        off: side(0),
        on: side(1),
        overhead_pct,
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("obs_overhead.json");
    std::fs::create_dir_all(out.parent().expect("has parent")).expect("create results dir");
    std::fs::write(&out, &json).expect("write bench json");
    for server in servers {
        server.shutdown();
    }
    println!("instrumentation stays under the {MAX_OVERHEAD_PCT}% budget ✔");
    println!("recorded {}", out.display());
}
