//! Observability overhead on the hot path: cached plan requests (the
//! fastest thing the server does end to end) against three identically
//! configured servers — bare (`instrument: false, recorder: false`),
//! spans only (`instrument: true, recorder: false`), and the shipping
//! default (spans + flight recorder). The run fails if spans cost more
//! than 5% over bare, or the recorder more than 5% over spans, and
//! records the measurement in `crates/bench/results/obs_overhead.json`.
//!
//! Method: one pipelined (protocol-v2) connection per server replays the
//! same warm plan batch for `ROUNDS` rounds per trial; the best of
//! `TRIALS` interleaved trials is kept per server, which suppresses
//! scheduler noise the way min-of-N does in the micro benches.

use serde::Serialize;

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{PlanRequest, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const TRIALS: usize = 7;
const ROUNDS: usize = 200;
const BATCH: usize = 32;
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// The three measured configurations, cheapest first.
const SIDES: [(&str, bool, bool); 3] = [
    ("bare", false, false),
    ("spans", true, false),
    ("spans+recorder", true, true),
];

#[derive(Serialize)]
struct SideReport {
    label: String,
    instrument: bool,
    recorder: bool,
    best_round_trip_s: f64,
    requests_per_s: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    trials: usize,
    rounds: usize,
    requests_per_round: usize,
    sides: Vec<SideReport>,
    /// Spans + histograms + gauges over bare, percent.
    span_overhead_pct: f64,
    /// Flight recorder over spans-only, percent.
    recorder_overhead_pct: f64,
}

fn config(instrument: bool, recorder: bool) -> ServerConfig {
    ServerConfig {
        threads: 2,
        max_in_flight: BATCH,
        instrument,
        recorder,
        ..ServerConfig::default()
    }
}

fn requests() -> Vec<PlanRequest> {
    (0..BATCH)
        .map(|i| PlanRequest {
            network: ["tiny_cnn", "toy_branchy"][i % 2].to_string(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: 120 + i % 4,
            seeds: vec![0x5EED],
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        })
        .collect()
}

/// One trial: `ROUNDS` pipelined replays of the warm batch; returns the
/// wall seconds for the whole trial.
fn trial(client: &mut PlanClient, reqs: &[PlanRequest]) -> f64 {
    let started = std::time::Instant::now();
    for _ in 0..ROUNDS {
        let plans = client.plan_many(reqs).expect("pipelined batch");
        for plan in &plans {
            assert!(plan.cache_hit, "hot path must stay cache-served");
        }
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    println!("QS-DNN reproduction — observability overhead on the cached-plan hot path");
    let reqs = requests();

    let mut servers = Vec::new();
    let mut clients = Vec::new();
    for (_, instrument, recorder) in SIDES {
        let server = PlanServer::start(config(instrument, recorder)).expect("start server");
        let mut client = PlanClient::connect(server.local_addr()).expect("connect");
        // Populate the cache (cold searches) and fault in every code
        // path once before anything is timed.
        let warmup = client.plan_many(&reqs).expect("warmup batch");
        assert_eq!(warmup.len(), reqs.len());
        trial(&mut client, &reqs);
        servers.push(server);
        clients.push(client);
    }

    // Interleave trials so slow drift (thermal, noisy neighbors) hits
    // every side equally; keep the best trial per side.
    let mut best = [f64::INFINITY; SIDES.len()];
    for t in 0..TRIALS {
        for (side, client) in clients.iter_mut().enumerate() {
            let s = trial(client, &reqs);
            best[side] = best[side].min(s);
            println!(
                "trial {}/{TRIALS} {} {s:.4} s (best {:.4} s)",
                t + 1,
                SIDES[side].0,
                best[side]
            );
        }
    }

    let per_trial = (ROUNDS * BATCH) as f64;
    let span_overhead_pct = (best[1] - best[0]) / best[0] * 100.0;
    let recorder_overhead_pct = (best[2] - best[1]) / best[1] * 100.0;
    for (i, (label, _, _)) in SIDES.iter().enumerate() {
        println!("hot hit path [{label}]: {:.0} req/s", per_trial / best[i]);
    }
    println!(
        "spans {span_overhead_pct:+.2}% over bare, \
         recorder {recorder_overhead_pct:+.2}% over spans"
    );
    assert!(
        span_overhead_pct < MAX_OVERHEAD_PCT,
        "spans cost {span_overhead_pct:.2}% on the hot path (budget {MAX_OVERHEAD_PCT}%)"
    );
    assert!(
        recorder_overhead_pct < MAX_OVERHEAD_PCT,
        "recorder costs {recorder_overhead_pct:.2}% on the hot path (budget {MAX_OVERHEAD_PCT}%)"
    );

    let report = BenchReport {
        bench: "obs_overhead".into(),
        trials: TRIALS,
        rounds: ROUNDS,
        requests_per_round: BATCH,
        sides: SIDES
            .iter()
            .enumerate()
            .map(|(i, &(label, instrument, recorder))| SideReport {
                label: label.to_string(),
                instrument,
                recorder,
                best_round_trip_s: best[i],
                requests_per_s: per_trial / best[i],
            })
            .collect(),
        span_overhead_pct,
        recorder_overhead_pct,
    };
    let json = serde_json::to_string(&report).expect("serializes");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("obs_overhead.json");
    std::fs::create_dir_all(out.parent().expect("has parent")).expect("create results dir");
    std::fs::write(&out, &json).expect("write bench json");
    for server in servers {
        server.shutdown();
    }
    println!("both layers stay under the {MAX_OVERHEAD_PCT}% budget ✔");
    println!("recorded {}", out.display());
}
