//! **Multi-objective search** (paper §VII future work: "different reward
//! choices or having multi-objective search"): sweep the latency/energy
//! trade-off knob λ on MobileNet-v1 (GPGPU) and trace the Pareto front the
//! same QS-DNN agent discovers when the LUT is scalarized.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench multi_objective
//! ```

use qsdnn::engine::{Mode, Objective};
use qsdnn::primitives::Processor;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{lut_for, rule};

fn main() {
    println!("QS-DNN reproduction — multi-objective extension (MobileNet-v1, GPGPU)");
    let lut = lut_for("mobilenet_v1", Mode::Gpgpu);
    let episodes = 1000usize.max(40 * lut.len());

    println!(
        "\n{:<22} {:>12} {:>12} {:>10} {:>10}",
        "objective", "latency(ms)", "energy(mJ)", "gpu-layers", "cpu-layers"
    );
    rule(72);

    let objectives: [(&str, Objective); 5] = [
        ("latency (paper)", Objective::Latency),
        ("weighted λ=0.1", Objective::Weighted { lambda: 0.1 }),
        ("weighted λ=0.5", Objective::Weighted { lambda: 0.5 }),
        ("weighted λ=2.0", Objective::Weighted { lambda: 2.0 }),
        ("energy only", Objective::Energy),
    ];

    let mut results = Vec::new();
    for (label, obj) in objectives {
        let scalarized = lut.with_objective(obj);
        let report = QsDnnSearch::new(QsDnnConfig::with_episodes(episodes)).run(&scalarized);
        // Evaluate the found assignment under the *raw* metrics.
        let latency = lut.cost(&report.best_assignment);
        let energy = lut.energy_cost(&report.best_assignment);
        let gpu = report
            .best_assignment
            .iter()
            .enumerate()
            .filter(|(l, &ci)| lut.candidates(*l)[ci].processor == Processor::Gpu)
            .count();
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>10} {:>10}",
            label,
            latency,
            energy,
            gpu,
            lut.len() - gpu
        );
        results.push((label, latency, energy, gpu));
    }

    rule(72);
    let (_, lat_latency, lat_energy, _) = results[0];
    let (_, en_latency, en_energy, en_gpu) = results[4];
    println!("latency-optimal solution : {lat_latency:.2} ms / {lat_energy:.2} mJ");
    println!("energy-optimal solution  : {en_latency:.2} ms / {en_energy:.2} mJ");
    assert!(
        en_energy <= lat_energy + 1e-9,
        "energy objective must not raise energy"
    );
    assert!(
        lat_latency <= en_latency + 1e-9,
        "latency objective must not raise latency"
    );
    let _ = en_gpu;
    println!("\ntrade-off front is consistent (each objective wins its own metric) ✔");
}
