//! **Fig. 1** — the 3-layer network whose fastest *intermediate*
//! implementation (red path) loses to the globally fastest path (blue)
//! because of incompatibility penalties, and the agent's ability to avoid
//! the local minimum.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench fig1_local_minimum
//! ```

use qsdnn::baselines::exhaustive_search;
use qsdnn::engine::toy;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::rule;

fn main() {
    println!("QS-DNN reproduction — Fig. 1 (local-minimum avoidance)");
    let lut = toy::fig1_lut();

    println!("\nlayer times (ms):");
    for entry in lut.layers() {
        print!("  {:<8}", entry.name);
        for (p, t) in entry.candidates.iter().zip(&entry.time_ms) {
            print!(" {p} = {t:.1}  ");
        }
        println!();
    }
    println!("  (every layout flip on an edge costs 0.4 ms)");

    rule(64);
    let greedy = lut.greedy_assignment();
    let (optimal, opt_cost) = exhaustive_search(&lut, 1e6).expect("toy space");
    let report = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);

    println!(
        "red path  (greedy per-layer) : {:?} = {:.1} ms",
        greedy,
        lut.cost(&greedy)
    );
    println!("blue path (global optimum)   : {optimal:?} = {opt_cost:.1} ms");
    println!(
        "QS-DNN agent                 : {:?} = {:.1} ms",
        report.best_assignment, report.best_cost_ms
    );

    assert_eq!(
        report.best_assignment, optimal,
        "agent must find the blue path"
    );
    assert!(lut.cost(&greedy) > opt_cost, "the trap must exist");
    println!("\nagent avoided the local minimum ✔");
}
