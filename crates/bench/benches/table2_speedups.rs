//! **Table II** — Inference-time speedup of CPU- and GPGPU-based
//! implementations with respect to Vanilla, per network: every single
//! library, the Best Single Library (BSL), QS-DNN, QS-DNN vs BSL, and
//! QS-DNN vs Random Search at 1000 episodes.
//!
//! ```sh
//! cargo bench -p qsdnn-bench --bench table2_speedups
//! ```

use qsdnn::baselines::RandomSearch;
use qsdnn::engine::Mode;
use qsdnn::nn::zoo;
use qsdnn::primitives::Library;
use qsdnn::{QsDnnConfig, QsDnnSearch};
use qsdnn_bench::{best_single_library, lut_for, rule, single_library_cost};

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

/// QS-DNN episode budget, scaled with network depth so the tabular agent
/// sees each (state, action) pair often enough on the deepest networks.
/// RS stays at the paper's 1000 episodes for the QS-DNN/RS column.
fn episodes_for(lut: &qsdnn::engine::CostLut) -> usize {
    1000usize.max(40 * lut.len())
}

fn mean_best(costs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = costs.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

fn run_mode(mode: Mode, libs: &[Library]) {
    println!("\n=== Table II ({} mode): speedup vs Vanilla ===", mode);
    print!("{:<15} {:>9}", "network", "vanilla");
    for lib in libs {
        print!(" {:>9}", lib.name());
    }
    println!(
        " {:>9} {:>9} {:>11} {:>11}",
        "BSL", "QS-DNN", "QS-DNN/BSL", "QS-DNN/RS"
    );
    rule(15 + 10 + libs.len() * 10 + 10 + 10 + 12 + 12);

    for name in zoo::PAPER_ROSTER {
        let lut = lut_for(name, mode);
        let vanilla = lut.cost(&lut.vanilla_assignment());
        print!("{:<15} {:>8.1}ms", name, vanilla);
        for lib in libs {
            let cost = single_library_cost(&lut, *lib);
            print!(" {:>8.1}x", vanilla / cost);
        }
        let (_, bsl) = best_single_library(&lut);
        let episodes = episodes_for(&lut);
        let qs = mean_best(SEEDS.iter().map(|&s| {
            QsDnnSearch::new(QsDnnConfig::with_episodes(episodes).with_seed(s))
                .run(&lut)
                .best_cost_ms
        }));
        let rs = mean_best(
            SEEDS
                .iter()
                .map(|&s| RandomSearch::new(1000, s).run(&lut).best_cost_ms),
        );
        println!(
            " {:>8.1}x {:>8.1}x {:>10.2}x {:>10.2}x",
            vanilla / bsl,
            vanilla / qs,
            bsl / qs,
            rs / qs
        );
    }
}

fn main() {
    println!("QS-DNN reproduction — Table II");
    println!("(5-seed means, paper schedule, 1000 episodes, sim-TX2 platform)");

    let cpu_libs = [
        Library::Blas,
        Library::Nnpack,
        Library::ArmCl,
        Library::Sparse,
    ];
    run_mode(Mode::Cpu, &cpu_libs);

    let gpu_libs = [
        Library::Blas,
        Library::Nnpack,
        Library::ArmCl,
        Library::CuDnn,
        Library::CuBlas,
    ];
    run_mode(Mode::Gpgpu, &gpu_libs);

    println!("\nPaper headline checks:");
    println!("  - CPU-mode QS-DNN vs Vanilla should reach tens of x (paper: up to 45x)");
    println!("  - GPGPU-mode QS-DNN vs BSL should average ~2x (paper: 2x)");
    println!("  - QS-DNN vs RS should grow with design-space size (paper: up to 15x)");
}
