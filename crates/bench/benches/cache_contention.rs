//! Plan-cache contention micro-benchmark: throughput under a 16-thread
//! fan-out, sharded vs the seed's single-mutex layout (reproduced with
//! `--cache-shards 1`).
//!
//! Sixteen persistent worker threads are released in barrier-gated rounds;
//! one timed iteration is one round across all 16 threads. Keys are
//! pre-formatted so the timed region is lock + lookup, nothing else.
//!
//! Two workloads:
//!
//! * `hit_path` — every access hits a warm, pre-populated cache. On a
//!   many-core box this is where the single mutex becomes the hot path
//!   (every hit serializes on one lock / one cache line); on a single-core
//!   runner the lock is rarely truly contended and the configurations tie.
//! * `churn` — the keyspace is 4× the resident bound, so most accesses
//!   miss, claim a slot and evict an LRU victim. The victim scan runs
//!   under the shard lock and is O(resident/shards), so sharding wins
//!   even without parallel hardware.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qsdnn::engine::{toy, CostLut};
use qsdnn_serve::{EvictionPolicy, PlanCache};

const THREADS: usize = 16;
const HITS_PER_THREAD: usize = 512;
const HIT_KEYSPACE: usize = 256;

const CHURN_PER_THREAD: usize = 64;
const CHURN_KEYSPACE: usize = 2048;
const CHURN_RESIDENT: usize = 512;

fn keys(n: usize) -> Arc<Vec<String>> {
    Arc::new((0..n).map(|k| format!("{k:016x}")).collect())
}

fn cache(shards: usize, max_entries: usize) -> Arc<PlanCache<CostLut>> {
    Arc::new(
        PlanCache::<CostLut>::new()
            .with_shards(shards)
            .with_max_entries(max_entries)
            .with_eviction(EvictionPolicy::Lru),
    )
}

/// Sixteen persistent workers that each run `work(tid)` once per barrier
/// round, so the timed region contains no thread spawns.
struct FanOut {
    start: Arc<Barrier>,
    done: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl FanOut {
    fn launch(work: impl Fn(usize) + Send + Sync + 'static) -> FanOut {
        let start = Arc::new(Barrier::new(THREADS + 1));
        let done = Arc::new(Barrier::new(THREADS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let work = Arc::new(work);
        let workers = (0..THREADS)
            .map(|tid| {
                let start = Arc::clone(&start);
                let done = Arc::clone(&done);
                let stop = Arc::clone(&stop);
                let work = Arc::clone(&work);
                std::thread::spawn(move || loop {
                    start.wait();
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    work(tid);
                    done.wait();
                })
            })
            .collect();
        FanOut {
            start,
            done,
            stop,
            workers,
        }
    }

    /// One timed round: every worker completes its batch.
    fn round(&self) {
        self.start.wait();
        self.done.wait();
    }
}

impl Drop for FanOut {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.start.wait();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn bench_hit_path(c: &mut Criterion) {
    let keys = keys(HIT_KEYSPACE);
    let mut group = c.benchmark_group("cache_contention");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, shards) in [
        ("hit_path_16thr/single_mutex_1shard", 1),
        ("hit_path_16thr/sharded_8", 8),
        ("hit_path_16thr/sharded_16", 16),
    ] {
        let cache = cache(shards, 4096);
        let lut = toy::fig1_lut();
        for key in keys.iter() {
            cache.get_or_compute(key, || lut.clone());
        }
        let fan_out = {
            let cache = Arc::clone(&cache);
            let keys = Arc::clone(&keys);
            FanOut::launch(move |tid| {
                // A fixed per-thread stride decorrelates the threads' key
                // sequences without an RNG in the timed loop.
                let mut k = tid * 37;
                for _ in 0..HITS_PER_THREAD {
                    k = (k + 97) % HIT_KEYSPACE;
                    let (out, hit) = cache.get_or_compute(&keys[k], || panic!("warm cache"));
                    debug_assert!(hit);
                    black_box(out);
                }
            })
        };
        group.bench_function(label, |b| b.iter(|| fan_out.round()));
    }
    group.finish();
}

fn bench_churn(c: &mut Criterion) {
    let keys = keys(CHURN_KEYSPACE);
    let mut group = c.benchmark_group("cache_contention");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    for (label, shards) in [
        ("churn_16thr/single_mutex_1shard", 1),
        ("churn_16thr/sharded_8", 8),
        ("churn_16thr/sharded_16", 16),
    ] {
        let cache = cache(shards, CHURN_RESIDENT);
        let lut = toy::fig1_lut();
        let fan_out = {
            let cache = Arc::clone(&cache);
            let keys = Arc::clone(&keys);
            let lut = lut.clone();
            FanOut::launch(move |tid| {
                let mut k = tid * 151;
                for _ in 0..CHURN_PER_THREAD {
                    k = (k + 127) % CHURN_KEYSPACE;
                    let (out, _) = cache.get_or_compute(&keys[k], || lut.clone());
                    black_box(out);
                }
            })
        };
        group.bench_function(label, |b| b.iter(|| fan_out.round()));
    }
    group.finish();
}

fn bench_cache_contention(c: &mut Criterion) {
    bench_hit_path(c);
    bench_churn(c);
}

criterion_group!(benches, bench_cache_contention);
criterion_main!(benches);
