//! Pure-Rust SGEMM/SGEMV kernels for the QS-DNN reproduction.
//!
//! The paper's BLAS group contains *ATLAS* and *OpenBLAS*, each providing
//! `GEMM`/`GEMV` routines consumed by the `im2col`/`im2row`/`kn2row`
//! convolution lowerings. We cannot link those vendor libraries here, so this
//! crate reimplements the same routine family in safe Rust at three
//! optimization levels:
//!
//! * [`sgemm_naive`] — triple loop, the reference implementation;
//! * [`sgemm_blocked`] — cache-tiled loops;
//! * [`sgemm_packed`] — panel packing plus a 4×4 register micro-kernel.
//!
//! A [`BlasBackend`] selects the tuning (tile sizes) used by the dispatching
//! [`Gemm`] handle, mimicking the fact that ATLAS and OpenBLAS achieve
//! different fractions of peak on the same processor.
//!
//! All matrices are dense, row-major `f32`.
//!
//! # Examples
//!
//! ```
//! use qsdnn_gemm::{BlasBackend, Gemm};
//!
//! let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
//! let b = [5.0, 6.0, 7.0, 8.0]; // 2x2
//! let mut c = [0.0; 4];
//! Gemm::new(BlasBackend::OpenBlasLike).sgemm(2, 2, 2, &a, &b, &mut c);
//! assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
//! ```

mod backend;
mod blocked;
mod gemv;
mod naive;
mod packed;

pub use backend::{BlasBackend, Gemm};
pub use blocked::sgemm_blocked;
pub use gemv::sgemv;
pub use naive::sgemm_naive;
pub use packed::sgemm_packed;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect()
    }

    fn max_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn all_variants_agree_on_square() {
        let (m, k, n) = (17, 23, 19);
        let a = random_matrix(m, k, 1);
        let b = random_matrix(k, n, 2);
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        sgemm_naive(m, k, n, &a, &b, &mut c0);
        sgemm_blocked(m, k, n, &a, &b, &mut c1, 8, 8, 8);
        sgemm_packed(m, k, n, &a, &b, &mut c2);
        assert!(max_diff(&c0, &c1) < 1e-4);
        assert!(max_diff(&c0, &c2) < 1e-4);
    }

    #[test]
    fn backends_agree_with_reference() {
        let (m, k, n) = (13, 29, 7);
        let a = random_matrix(m, k, 3);
        let b = random_matrix(k, n, 4);
        let mut expect = vec![0.0; m * n];
        sgemm_naive(m, k, n, &a, &b, &mut expect);
        for backend in BlasBackend::ALL {
            let mut c = vec![0.0; m * n];
            Gemm::new(backend).sgemm(m, k, n, &a, &b, &mut c);
            assert!(max_diff(&expect, &c) < 1e-4, "{backend:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_blocked_matches_naive(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..500
        ) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 1);
            let mut c0 = vec![0.0; m * n];
            let mut c1 = vec![0.0; m * n];
            sgemm_naive(m, k, n, &a, &b, &mut c0);
            sgemm_blocked(m, k, n, &a, &b, &mut c1, 6, 10, 7);
            prop_assert!(max_diff(&c0, &c1) < 1e-4);
        }

        #[test]
        fn prop_packed_matches_naive(
            m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..500
        ) {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed + 1);
            let mut c0 = vec![0.0; m * n];
            let mut c1 = vec![0.0; m * n];
            sgemm_naive(m, k, n, &a, &b, &mut c0);
            sgemm_packed(m, k, n, &a, &b, &mut c1);
            prop_assert!(max_diff(&c0, &c1) < 1e-4);
        }

        #[test]
        fn prop_gemv_matches_gemm_with_unit_n(
            m in 1usize..32, k in 1usize..32, seed in 0u64..500
        ) {
            let a = random_matrix(m, k, seed);
            let x = random_matrix(k, 1, seed + 1);
            let mut y0 = vec![0.0; m];
            let mut y1 = vec![0.0; m];
            sgemm_naive(m, k, 1, &a, &x, &mut y0);
            sgemv(m, k, &a, &x, &mut y1);
            prop_assert!(max_diff(&y0, &y1) < 1e-4);
        }
    }
}
