/// SGEMV: `y = A · x` for a row-major `m×k` matrix.
///
/// This is the routine the paper's *cuBLAS* group exposes for fully-connected
/// layers (the only cuBLAS primitive QS-DNN uses) and the BLAS groups expose
/// on CPU.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied size.
///
/// # Examples
///
/// ```
/// let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
/// let x = [1.0, 1.0];
/// let mut y = [0.0; 2];
/// qsdnn_gemm::sgemv(2, 2, &a, &x, &mut y);
/// assert_eq!(y, [3.0, 7.0]);
/// ```
pub fn sgemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert!(a.len() >= m * k, "a too short");
    assert!(x.len() >= k, "x too short");
    assert!(y.len() >= m, "y too short");
    for i in 0..m {
        let row = &a[i * k..i * k + k];
        let mut acc = 0.0f32;
        // Unrolled-by-4 accumulation: the shape of a NEON/SSE dot product.
        let chunks = k / 4;
        let mut acc4 = [0.0f32; 4];
        for ch in 0..chunks {
            let base = ch * 4;
            for lane in 0..4 {
                acc4[lane] += row[base + lane] * x[base + lane];
            }
        }
        for p in chunks * 4..k {
            acc += row[p] * x[p];
        }
        y[i] = acc + acc4.iter().sum::<f32>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_vector() {
        let a = [2.0, 0.0, 0.0, 3.0];
        let x = [5.0, 7.0];
        let mut y = [0.0; 2];
        sgemv(2, 2, &a, &x, &mut y);
        assert_eq!(y, [10.0, 21.0]);
    }

    #[test]
    fn k_not_multiple_of_four() {
        let k = 7;
        let a: Vec<f32> = (0..k).map(|i| i as f32).collect();
        let x = vec![1.0; k];
        let mut y = [0.0; 1];
        sgemv(1, k, &a, &x, &mut y);
        assert_eq!(y[0], 21.0);
    }

    #[test]
    fn zero_k_gives_zero() {
        let mut y = [5.0];
        sgemv(1, 0, &[], &[], &mut y);
        assert_eq!(y[0], 0.0);
    }
}
