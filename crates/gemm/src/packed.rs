//! Panel-packing SGEMM with a 4×4 register micro-kernel — the structure of
//! hand-tuned OpenBLAS kernels.

const MR: usize = 4;
const NR: usize = 4;
const KC: usize = 128;
const MC: usize = 64;

/// Packed-panel SGEMM: `C = A · B`, row-major.
///
/// Packs `A` into `MR`-row panels and `B` into `NR`-column panels so the
/// inner 4×4 micro-kernel streams contiguous memory, as OpenBLAS does.
/// Semantics match [`sgemm_naive`](crate::sgemm_naive).
///
/// # Panics
///
/// Panics if any slice is shorter than its implied matrix size.
pub fn sgemm_packed(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "a too short");
    assert!(b.len() >= k * n, "b too short");
    assert!(c.len() >= m * n, "c too short");

    c[..m * n].fill(0.0);
    let mut packed_a = vec![0.0f32; MC * KC];
    let mut packed_b = vec![0.0f32; KC * n.div_ceil(NR) * NR];

    let mut p0 = 0;
    while p0 < k {
        let pc = (k - p0).min(KC);
        pack_b(&mut packed_b, b, p0, pc, n);
        let mut i0 = 0;
        while i0 < m {
            let ic = (m - i0).min(MC);
            pack_a(&mut packed_a, a, i0, ic, p0, pc, k);
            macro_block(&packed_a, &packed_b, c, i0, ic, pc, n);
            i0 += ic;
        }
        p0 += pc;
    }
}

/// Packs `ic` rows of A (columns `p0..p0+pc`) into MR-row panels.
fn pack_a(dst: &mut [f32], a: &[f32], i0: usize, ic: usize, p0: usize, pc: usize, k: usize) {
    let mut idx = 0;
    let mut ir = 0;
    while ir < ic {
        let rows = (ic - ir).min(MR);
        for p in 0..pc {
            for r in 0..MR {
                dst[idx] = if r < rows {
                    a[(i0 + ir + r) * k + p0 + p]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        ir += MR;
    }
}

/// Packs `pc` rows of B into NR-column panels.
fn pack_b(dst: &mut [f32], b: &[f32], p0: usize, pc: usize, n: usize) {
    let mut idx = 0;
    let mut jr = 0;
    while jr < n {
        let cols = (n - jr).min(NR);
        for p in 0..pc {
            for col in 0..NR {
                dst[idx] = if col < cols {
                    b[(p0 + p) * n + jr + col]
                } else {
                    0.0
                };
                idx += 1;
            }
        }
        jr += NR;
    }
}

fn macro_block(
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    i0: usize,
    ic: usize,
    pc: usize,
    n: usize,
) {
    let mut ir = 0;
    while ir < ic {
        let rows = (ic - ir).min(MR);
        let a_panel = &packed_a[(ir / MR) * pc * MR..];
        let mut jr = 0;
        while jr < n {
            let cols = (n - jr).min(NR);
            let b_panel = &packed_b[(jr / NR) * pc * NR..];
            micro_kernel(a_panel, b_panel, c, i0 + ir, jr, rows, cols, pc, n);
            jr += NR;
        }
        ir += MR;
    }
}

/// 4×4 register-accumulating micro-kernel over packed panels.
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pc: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..pc {
        let av = &a_panel[p * MR..p * MR + MR];
        let bv = &b_panel[p * NR..p * NR + NR];
        for (r, &ar) in av.iter().enumerate() {
            for (cn, &bc) in bv.iter().enumerate() {
                acc[r][cn] += ar * bc;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        for (cn, &v) in acc_row.iter().enumerate().take(cols) {
            c[(row0 + r) * n + col0 + cn] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgemm_naive;

    fn check(m: usize, k: usize, n: usize) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13 + 5) % 11) as f32 - 5.0)
            .collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 7 + 3) % 9) as f32 - 4.0).collect();
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        sgemm_naive(m, k, n, &a, &b, &mut c0);
        sgemm_packed(m, k, n, &a, &b, &mut c1);
        let d = c0
            .iter()
            .zip(&c1)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        assert!(d < 1e-4, "m={m} k={k} n={n} diff={d}");
    }

    #[test]
    fn exact_multiple_of_tiles() {
        check(8, 128, 8);
    }

    #[test]
    fn ragged_edges() {
        check(5, 3, 7);
        check(1, 1, 1);
        check(4, 129, 9);
    }

    #[test]
    fn k_larger_than_kc_splits_panels() {
        check(6, 300, 10);
    }

    #[test]
    fn m_larger_than_mc_splits_blocks() {
        check(130, 20, 6);
    }
}
