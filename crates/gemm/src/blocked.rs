/// Cache-tiled SGEMM: `C = A · B` with `mb×kb×nb` blocking.
///
/// Identical semantics to [`sgemm_naive`](crate::sgemm_naive) but iterates
/// in tiles so that working sets fit in cache — the structure used by
/// ATLAS-generated kernels.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied matrix size, or any block
/// extent is zero.
#[allow(clippy::too_many_arguments)] // m/k/n plus the three block extents are the whole point
pub fn sgemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    mb: usize,
    kb: usize,
    nb: usize,
) {
    assert!(a.len() >= m * k, "a too short");
    assert!(b.len() >= k * n, "b too short");
    assert!(c.len() >= m * n, "c too short");
    assert!(mb > 0 && kb > 0 && nb > 0, "block extents must be positive");

    c[..m * n].fill(0.0);
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + mb).min(m);
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + kb).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + nb).min(n);
                for i in i0..i1 {
                    for p in p0..p1 {
                        let aip = a[i * k + p];
                        for j in j0..j1 {
                            c[i * n + j] += aip * b[p * n + j];
                        }
                    }
                }
                j0 = j1;
            }
            p0 = p1;
        }
        i0 = i1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgemm_naive;

    #[test]
    fn matches_naive_with_odd_blocks() {
        let (m, k, n) = (9, 11, 13);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        sgemm_naive(m, k, n, &a, &b, &mut c0);
        sgemm_blocked(m, k, n, &a, &b, &mut c1, 4, 3, 5);
        assert_eq!(c0, c1);
    }

    #[test]
    fn blocks_larger_than_matrix() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut c = [0.0; 1];
        sgemm_blocked(1, 2, 1, &a, &b, &mut c, 64, 64, 64);
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn clears_stale_c() {
        let mut c = [123.0; 1];
        sgemm_blocked(1, 1, 1, &[1.0], &[1.0], &mut c, 2, 2, 2);
        assert_eq!(c[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "block extents must be positive")]
    fn rejects_zero_block() {
        let mut c = [0.0; 1];
        sgemm_blocked(1, 1, 1, &[1.0], &[1.0], &mut c, 0, 1, 1);
    }
}
