/// Reference SGEMM: `C = A · B` for row-major dense matrices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` is `m×n`; `c` is overwritten.
///
/// This is the semantics oracle for all optimized variants and the kernel
/// behind the *Vanilla* fully-connected primitive (dependency-free ANSI-C
/// style, no blocking, no packing).
///
/// # Panics
///
/// Panics if any slice is shorter than its implied matrix size.
///
/// # Examples
///
/// ```
/// let a = [1.0, 0.0, 0.0, 1.0]; // identity
/// let b = [3.0, 4.0, 5.0, 6.0];
/// let mut c = [0.0; 4];
/// qsdnn_gemm::sgemm_naive(2, 2, 2, &a, &b, &mut c);
/// assert_eq!(c, b);
/// ```
pub fn sgemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "a too short");
    assert!(b.len() >= k * n, "b too short");
    assert!(c.len() >= m * n, "c too short");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_by_one() {
        let mut c = [0.0];
        sgemm_naive(1, 1, 1, &[3.0], &[4.0], &mut c);
        assert_eq!(c[0], 12.0);
    }

    #[test]
    fn rectangular() {
        // A = [1 2 3; 4 5 6] (2x3), B = [1;1;1] (3x1)
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 1.0, 1.0];
        let mut c = [0.0; 2];
        sgemm_naive(2, 3, 1, &a, &b, &mut c);
        assert_eq!(c, [6.0, 15.0]);
    }

    #[test]
    fn overwrites_existing_c() {
        let mut c = [99.0; 1];
        sgemm_naive(1, 1, 1, &[2.0], &[5.0], &mut c);
        assert_eq!(c[0], 10.0);
    }

    #[test]
    #[should_panic(expected = "a too short")]
    fn panics_on_short_a() {
        let mut c = [0.0; 4];
        sgemm_naive(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
