//! `qsdnn-cli` — drive the QS-DNN pipeline from the shell.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match qsdnn_cli::parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match qsdnn_cli::run(&args) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
