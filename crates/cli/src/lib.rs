//! Implementation of the `qsdnn-cli` command-line tool.
//!
//! Seven subcommands drive the full pipeline from a shell:
//!
//! ```text
//! qsdnn-cli networks
//! qsdnn-cli profile --network mobilenet_v1 --mode gpgpu --out lut.json
//! qsdnn-cli search  --lut lut.json --episodes 2000 --out report.json
//! qsdnn-cli report  --lut lut.json --report report.json
//! qsdnn-cli serve   --addr 127.0.0.1:7878 --spill /var/cache/qsdnn
//! qsdnn-cli submit  --addr 127.0.0.1:7878 --network mobilenet_v1
//! qsdnn-cli top     --addr 127.0.0.1:7878
//! ```
//!
//! Argument parsing is hand-rolled (no external CLI dependency) and kept in
//! this library crate so it can be unit-tested. Unknown `--options` are
//! rejected per subcommand rather than silently ignored.

use std::collections::HashMap;

use qsdnn::baselines::{
    pbqp_search, solve_chain_dp, RandomSearch, SimulatedAnnealing, SimulatedAnnealingConfig,
};
use qsdnn::engine::{
    AnalyticalPlatform, CostLut, MeasuredPlatform, Mode, Objective, PlatformRegistry, Profiler,
};
use qsdnn::nn::zoo;
use qsdnn::{ApproxQsDnnSearch, QsDnnConfig, QsDnnSearch, SearchReport};
use qsdnn_serve::protocol::{
    EventMsg, EventsResponse, HistogramMsg, MetricValue, MetricsResponse, PlanRequest,
    PlanResponse, ProfileRequest, TasksResponse, TraceInfo, TransferMode,
};
use qsdnn_serve::{EvictionPolicy, IoModel, PlanClient, PlanServer, ServerConfig};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Subcommand name.
    pub command: String,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

/// Parses `argv[1..]` into a subcommand plus `--key value` pairs.
///
/// # Errors
///
/// Returns a usage message when the subcommand is missing or an option has
/// no value.
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let help = || {
        Ok(Args {
            command: "help".to_string(),
            options: HashMap::new(),
        })
    };
    let mut it = argv.iter();
    let command = it.next().ok_or_else(usage)?.clone();
    if command == "--help" || command == "-h" {
        return help();
    }
    let mut options = HashMap::new();
    while let Some(key) = it.next() {
        // `--help`/`-h` wins in any *key* position (`search --lut x --help`),
        // but an option's value is consumed verbatim — `--out -h` names a
        // file, it does not request help.
        if key == "--help" || key == "-h" {
            return help();
        }
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got `{key}`\n{}", usage()))?;
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for --{key}\n{}", usage()))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(Args { command, options })
}

/// Rejects any option key the subcommand does not understand — a silently
/// ignored `--episods 2000` typo would otherwise run a misconfigured
/// search.
///
/// # Errors
///
/// Returns a message naming every unknown key and the accepted set.
pub fn reject_unknown_options(args: &Args, allowed: &[&str]) -> Result<(), String> {
    let mut unknown: Vec<&str> = args
        .options
        .keys()
        .filter(|k| !allowed.contains(&k.as_str()))
        .map(String::as_str)
        .collect();
    if unknown.is_empty() {
        return Ok(());
    }
    unknown.sort_unstable();
    let mut accepted: Vec<&str> = allowed.to_vec();
    accepted.sort_unstable();
    Err(format!(
        "unknown option{} for `{}`: {}\naccepted options: {}\n{}",
        if unknown.len() == 1 { "" } else { "s" },
        args.command,
        unknown
            .iter()
            .map(|k| format!("--{k}"))
            .collect::<Vec<_>>()
            .join(", "),
        accepted
            .iter()
            .map(|k| format!("--{k}"))
            .collect::<Vec<_>>()
            .join(", "),
        usage()
    ))
}

/// The tool's usage text.
pub fn usage() -> String {
    "usage:\n  \
     qsdnn-cli networks\n  \
     qsdnn-cli profile --network <name> [--mode cpu|gpgpu] [--platform <name>]\n            \
     [--platform-dir <dir>] [--repeats N] [--batch N] --out <lut.json>\n            \
     (--platform takes a registry name such as sim-tx2 or sim-gpu-heavy, a\n            \
     spec from --platform-dir, or the aliases analytical|measured)\n  \
     qsdnn-cli search --lut <lut.json> [--method qsdnn|linear|random|annealing|pbqp|dp]\n            \
     [--episodes N] [--seed N] [--objective latency|energy|weighted:<lambda>] [--out <report.json>]\n  \
     qsdnn-cli report --lut <lut.json> --report <report.json>\n  \
     qsdnn-cli serve [--addr host:port] [--threads N] [--spill <dir>] [--repeats N]\n            \
     [--cache-shards N] [--eviction lru|cost] [--cache-entries N] [--max-in-flight N]\n            \
     [--transfer auto|off] [--index-entries N] [--io threads|epoll] [--dispatchers N]\n            \
     [--metrics-addr host:port] [--slow-ms N] [--platform <name>]\n            \
     [--platform-dir <dir>]\n            \
     (--io defaults to epoll on Linux: one readiness loop serves thousands of\n            \
     connections; threads elsewhere. --metrics-addr serves Prometheus text at\n            \
     /metrics; requests slower than --slow-ms are logged with a stage breakdown\n            \
     and journaled as flight-recorder exemplars; SIGTERM or a handler panic\n            \
     flushes the recorder to a post-mortem dump under --spill;\n            \
     --platform-dir loads extra platform specs from *.json files and\n            \
     --platform picks the server's default target)\n  \
     qsdnn-cli submit --addr <host:port>\n            \
     [--request plan|profile|search|platforms|stats|metrics|events|tasks]\n            \
     [--network <name> | --networks a,b,c] [--batch N | --batches 1,2,4,8]\n            \
     [--mode cpu|gpgpu] [--objective <obj>] [--episodes N] [--seeds a,b,c]\n            \
     [--transfer auto|off] [--repeats N] [--lut <lut.json>] [--trace true]\n            \
     [--histograms true] [--platform <name>] [--protocol 2|3]\n            \
     (--networks pipelines a batch over one connection; --batches sweeps\n            \
     batch sizes so each warm-starts from the previous one; --trace echoes\n            \
     per-stage server timings; --histograms adds latency quantiles to stats;\n            \
     --platform pins plan/profile/search requests to a named server platform\n            \
     and --request platforms lists what the server offers; --request events\n            \
     dumps the flight-recorder journal and slow-request exemplars and\n            \
     --request tasks shows what every worker thread is doing right now;\n            \
     --protocol 2 pins the JSON wire framing — the default, 3, negotiates\n            \
     the binary framing with automatic JSON fallback on older servers)\n  \
     qsdnn-cli top --addr <host:port> [--interval-ms N] [--frames N]\n            \
     (live dashboard: worker task table, rolling p50/p99 request latency and\n            \
     event rate from flight-recorder deltas; --frames N renders N frames and\n            \
     exits, for scripts and CI)\n  \
     qsdnn-cli help | --help | -h"
        .to_string()
}

/// Parses the `--mode` option.
///
/// # Errors
///
/// Returns a message for unknown modes.
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    match s {
        "cpu" => Ok(Mode::Cpu),
        "gpgpu" => Ok(Mode::Gpgpu),
        other => Err(format!("unknown mode `{other}` (cpu|gpgpu)")),
    }
}

/// Parses the `--objective` option (`latency`, `energy`, `weighted:<λ>`).
///
/// # Errors
///
/// Returns a message for unknown objectives or a malformed λ.
pub fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "latency" => Ok(Objective::Latency),
        "energy" => Ok(Objective::Energy),
        other => {
            if let Some(lambda) = other.strip_prefix("weighted:") {
                let lambda: f64 = lambda
                    .parse()
                    .map_err(|_| format!("bad lambda in `{other}`"))?;
                Ok(Objective::Weighted { lambda })
            } else {
                Err(format!(
                    "unknown objective `{other}` (latency|energy|weighted:<l>)"
                ))
            }
        }
    }
}

/// Parses the `--eviction` option (`lru`, `cost`/`cost-weighted`).
///
/// # Errors
///
/// Returns a message for unknown policies.
pub fn parse_eviction(s: &str) -> Result<EvictionPolicy, String> {
    s.parse()
}

/// Parses the `--transfer` option (`auto`, `off`).
///
/// # Errors
///
/// Returns a message for unknown modes.
pub fn parse_transfer(s: &str) -> Result<TransferMode, String> {
    s.parse()
}

/// Parses the `--io` option (`threads`, `epoll`).
///
/// # Errors
///
/// Returns a message for unknown connection layers.
pub fn parse_io(s: &str) -> Result<IoModel, String> {
    s.parse()
}

fn opt_parse<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String> {
    match args.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --{key}: `{v}`")),
    }
}

fn required<'a>(args: &'a Args, key: &str) -> Result<&'a String, String> {
    args.options
        .get(key)
        .ok_or_else(|| format!("missing --{key}\n{}", usage()))
}

fn cmd_networks(args: &Args) -> Result<String, String> {
    reject_unknown_options(args, &[])?;
    let mut out = String::from("available networks:\n");
    for name in zoo::PAPER_ROSTER {
        let net = zoo::by_name(name, 1).expect("roster");
        out.push_str(&format!(
            "  {:<15} {:>4} layers {:>10.1} MMACs {:>9.2} Mparams\n",
            name,
            net.len(),
            net.total_macs() as f64 / 1e6,
            net.total_params() as f64 / 1e6
        ));
    }
    out.push_str("  (plus test-scale: tiny_cnn, toy_branchy)\n");
    Ok(out)
}

fn cmd_profile(args: &Args) -> Result<String, String> {
    reject_unknown_options(
        args,
        &[
            "network",
            "mode",
            "platform",
            "platform-dir",
            "repeats",
            "batch",
            "out",
        ],
    )?;
    let name = required(args, "network")?;
    let batch = opt_parse(args, "batch", 1usize)?;
    let net = zoo::by_name(name, batch).ok_or_else(|| format!("unknown network `{name}`"))?;
    let mode = parse_mode(args.options.get("mode").map_or("gpgpu", String::as_str))?;
    let repeats = opt_parse(args, "repeats", 50usize)?;
    let platform = args
        .options
        .get("platform")
        .map_or("analytical", String::as_str);
    // `analytical`/`measured` predate the registry and stay as aliases for
    // the sim-tx2 model and the host-measured platform; any other value is
    // resolved as a registry name ("sim-gpu-heavy", specs from
    // --platform-dir, ...).
    let lut = match platform {
        "analytical" => {
            Profiler::with_repeats(AnalyticalPlatform::tx2(), repeats).profile(&net, mode)
        }
        "measured" => Profiler::with_repeats(MeasuredPlatform::new(7), repeats).profile(&net, mode),
        name => {
            let mut registry = PlatformRegistry::builtin();
            if let Some(dir) = args.options.get("platform-dir") {
                registry
                    .load_dir(std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
            }
            let spec = registry
                .resolve(name)
                .map_err(|e| format!("{e} (or use the aliases `analytical`/`measured`)"))?;
            if !spec.supports(mode) {
                return Err(format!(
                    "platform `{}` has no GPU; mode `{mode}` is unavailable on it",
                    spec.name
                ));
            }
            Profiler::with_repeats(registry.instantiate(spec), repeats).profile(&net, mode)
        }
    };
    let out_path = required(args, "out")?;
    let json = serde_json::to_string(&lut).map_err(|e| e.to_string())?;
    std::fs::write(out_path, json).map_err(|e| e.to_string())?;
    Ok(format!(
        "profiled {} ({} layers, {} mode, {} repeats) -> {out_path}\n\
         design space: {:.2e} implementations",
        net.name(),
        lut.len(),
        mode,
        repeats,
        lut.design_space_size()
    ))
}

fn load_lut(args: &Args) -> Result<CostLut, String> {
    let path = required(args, "lut")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lut: CostLut = serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))?;
    // A hand-edited or truncated LUT file would otherwise panic deep in
    // the search; surface a clean message instead.
    lut.validate()
        .map_err(|e| format!("{path}: invalid LUT: {e}"))?;
    Ok(lut)
}

fn cmd_search(args: &Args) -> Result<String, String> {
    reject_unknown_options(
        args,
        &["lut", "method", "episodes", "seed", "objective", "out"],
    )?;
    let raw = load_lut(args)?;
    let objective = parse_objective(
        args.options
            .get("objective")
            .map_or("latency", String::as_str),
    )?;
    let lut = raw.with_objective(objective);
    let episodes = opt_parse(args, "episodes", 1000usize.max(40 * lut.len()))?;
    let seed = opt_parse(args, "seed", 0x5EEDu64)?;
    let method = args.options.get("method").map_or("qsdnn", String::as_str);
    let report: SearchReport = match method {
        "qsdnn" => QsDnnSearch::new(QsDnnConfig::with_episodes(episodes).with_seed(seed)).run(&lut),
        "linear" => {
            ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(episodes).with_seed(seed)).run(&lut)
        }
        "random" => RandomSearch::new(episodes, seed).run(&lut),
        "annealing" => SimulatedAnnealing::new(SimulatedAnnealingConfig {
            evaluations: episodes,
            seed,
            ..Default::default()
        })
        .run(&lut),
        "pbqp" => pbqp_search(&lut),
        "dp" => {
            let (assign, cost) =
                solve_chain_dp(&lut).ok_or("network is not a chain; dp unavailable")?;
            SearchReport {
                method: "chain-dp".into(),
                network: lut.network().to_string(),
                best_assignment: assign,
                best_cost_ms: cost,
                episodes: 0,
                curve: Vec::new(),
                wall_time_ms: 0.0,
            }
        }
        other => return Err(format!("unknown method `{other}`")),
    };
    let mut summary = format!(
        "{} on {}: best objective value {:.3} (latency {:.3} ms, energy {:.3} mJ)\n\
         vs vanilla {:.3} ms | search wall time {:.1} ms",
        report.method,
        report.network,
        report.best_cost_ms,
        raw.cost(&report.best_assignment),
        raw.energy_cost(&report.best_assignment),
        raw.cost(&raw.vanilla_assignment()),
        report.wall_time_ms
    );
    if let Some(out_path) = args.options.get("out") {
        let json = serde_json::to_string(&report).map_err(|e| e.to_string())?;
        std::fs::write(out_path, json).map_err(|e| e.to_string())?;
        summary.push_str(&format!("\nreport written to {out_path}"));
    }
    Ok(summary)
}

fn cmd_report(args: &Args) -> Result<String, String> {
    reject_unknown_options(args, &["lut", "report"])?;
    let lut = load_lut(args)?;
    let path = required(args, "report")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report: SearchReport = serde_json::from_str(&json).map_err(|e| format!("{path}: {e}"))?;
    if report.best_assignment.len() != lut.len() {
        return Err("report does not match this LUT".to_string());
    }
    let mut out = format!(
        "{} on {}: {:.3} ms ({} episodes, {:.1} ms wall time)\n\nper-layer primitives:\n",
        report.method, report.network, report.best_cost_ms, report.episodes, report.wall_time_ms
    );
    for (l, &ci) in report.best_assignment.iter().enumerate() {
        let entry = &lut.layers()[l];
        out.push_str(&format!(
            "  {:<28} {:>9.4} ms  {}\n",
            entry.name,
            lut.time(l, ci),
            entry.candidates[ci]
        ));
    }
    Ok(out)
}

fn parse_batches(s: &str) -> Result<Vec<usize>, String> {
    let batches: Vec<usize> = s
        .split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.parse::<usize>()
                .ok()
                .filter(|&b| b >= 1)
                .ok_or_else(|| format!("bad batch `{part}` in --batches (need integers >= 1)"))
        })
        .collect::<Result<_, _>>()?;
    if batches.is_empty() {
        return Err("--batches needs at least one batch size".to_string());
    }
    Ok(batches)
}

fn parse_seeds(s: &str) -> Result<Vec<u64>, String> {
    s.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad seed `{part}` in --seeds"))
        })
        .collect()
}

fn format_plan(plan: &PlanResponse) -> String {
    let mut out = format!(
        "plan {} for {}: {:.3} ms ({}; {:.2}x vs vanilla {:.3} ms){}\n",
        plan.plan_key,
        plan.network,
        plan.best.best_cost_ms,
        plan.winner,
        plan.speedup(),
        plan.vanilla_cost_ms,
        if plan.cache_hit { " [cache hit]" } else { "" },
    );
    match &plan.warm_start {
        Some(w) => out.push_str(&format!(
            "warm start: donor {} ({}, distance {:.3}), {} states transferred, \
             {} episodes\n",
            w.donor_key, w.donor_network, w.donor_distance, w.transferred_states, w.episodes
        )),
        None => out.push_str("cold start\n"),
    }
    out.push_str("\nportfolio:\n");
    for m in &plan.members {
        match m.best_cost_ms {
            Some(cost) => out.push_str(&format!(
                "  {:<22} {:>10.3} ms  ({:>8.1} ms wall)\n",
                m.label, cost, m.wall_time_ms
            )),
            None => out.push_str(&format!("  {:<22} inapplicable\n", m.label)),
        }
    }
    out.push_str(&format!(
        "\nassignment ({} layers): {:?}",
        plan.best.best_assignment.len(),
        plan.best.best_assignment
    ));
    if let Some(trace) = &plan.trace {
        out.push('\n');
        out.push_str(&format_trace(trace));
    }
    out
}

/// Renders a `trace: true` stage breakdown as one line per stage.
fn format_trace(trace: &TraceInfo) -> String {
    let mut out = format!("server span ({:.3} ms total):", trace.total_ms);
    for s in &trace.stages {
        out.push_str(&format!("\n  {:<10} {:>10.3} ms", s.stage, s.ms));
    }
    out
}

/// Renders a metrics snapshot: histogram quantile tables first, then
/// counters and gauges, one labeled sample per line.
fn format_metrics(metrics: &MetricsResponse) -> String {
    let label = |labels: &[(String, String)]| -> String {
        if labels.is_empty() {
            String::new()
        } else {
            format!(
                "{{{}}}",
                labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        }
    };
    let mut out = format!(
        "server metrics (up {:.1} s)\n\n{:<46} {:>9} {:>9} {:>9} {:>9} {:>9}",
        metrics.uptime_ms as f64 / 1e3,
        "histogram",
        "count",
        "p50_us",
        "p90_us",
        "p99_us",
        "p999_us"
    );
    for family in &metrics.families {
        for sample in &family.samples {
            if let MetricValue::Histogram(h) = &sample.value {
                out.push_str(&format!(
                    "\n{:<46} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    format!("{}{}", family.name, label(&sample.labels)),
                    h.count,
                    h.p50_us,
                    h.p90_us,
                    h.p99_us,
                    h.p999_us
                ));
            }
        }
    }
    out.push_str("\n\ncounters & gauges:");
    for family in &metrics.families {
        for sample in &family.samples {
            match &sample.value {
                MetricValue::Counter(v) => out.push_str(&format!(
                    "\n  {:<46} {v}",
                    format!("{}{}", family.name, label(&sample.labels))
                )),
                MetricValue::Gauge(v) => out.push_str(&format!(
                    "\n  {:<46} {v}",
                    format!("{}{}", family.name, label(&sample.labels))
                )),
                MetricValue::Histogram(_) => {}
            }
        }
    }
    out
}

/// Renders one journaled event as a fixed-width line.
fn format_event_line(ev: &EventMsg) -> String {
    let req = if ev.serial == 0 {
        "       ".to_string()
    } else {
        format!("req#{:<3}", ev.serial)
    };
    format!(
        "  {:>12.3} ms  {:<20} {:<18} {req}  {}\n",
        ev.ts_us as f64 / 1e3,
        ev.thread,
        ev.event,
        ev.detail
    )
}

/// Renders the flight-recorder journal plus slow-request exemplars.
fn format_events(resp: &EventsResponse) -> String {
    let mut out = format!(
        "flight recorder: {} | {} events journaled | ring capacity {} per thread\n",
        if resp.recorder_enabled { "on" } else { "off" },
        resp.events_total,
        resp.ring_capacity
    );
    // The rings can retain thousands of events; the journal dump shows the
    // newest tail and says so, rather than scrolling the terminal away.
    const SHOWN: usize = 50;
    let skip = resp.events.len().saturating_sub(SHOWN);
    if skip > 0 {
        out.push_str(&format!(
            "\nnewest {SHOWN} of {} retained events:\n",
            resp.events.len()
        ));
    } else {
        out.push_str(&format!("\n{} retained events:\n", resp.events.len()));
    }
    for ev in &resp.events[skip..] {
        out.push_str(&format_event_line(ev));
    }
    if !resp.exemplars.is_empty() {
        out.push_str("\nslow-request exemplars:\n");
        for ex in &resp.exemplars {
            out.push_str(&format!(
                "  {} req#{}: {:.3} ms{}{}\n",
                ex.kind,
                ex.serial,
                ex.total_ms,
                if ex.plan_key.is_empty() {
                    String::new()
                } else {
                    format!(", plan {}", ex.plan_key)
                },
                if ex.panicked { "  [PANICKED]" } else { "" }
            ));
            for s in &ex.stages {
                out.push_str(&format!("    {:<10} {:>10.3} ms\n", s.stage, s.ms));
            }
            for ev in &ex.events {
                out.push_str(&format!("  {}", format_event_line(ev)));
            }
        }
    }
    out
}

/// Renders the live task table: one row per serving thread.
fn format_tasks(resp: &TasksResponse) -> String {
    let mut out = format!(
        "flight recorder: {} | {} events journaled | {} threads\n\n\
         {:<22} {:<14} {:<8} {:<10} {:<18} {:>11}",
        if resp.recorder_enabled { "on" } else { "off" },
        resp.events_total,
        resp.tasks.len(),
        "thread",
        "state",
        "req",
        "stage",
        "plan key",
        "elapsed"
    );
    for t in &resp.tasks {
        out.push_str(&format!(
            "\n{:<22} {:<14} {:<8} {:<10} {:<18} {:>9.1}ms",
            t.thread,
            t.state,
            if t.serial == 0 {
                "-".to_string()
            } else {
                format!("#{}", t.serial)
            },
            if t.stage.is_empty() {
                "-"
            } else {
                t.stage.as_str()
            },
            if t.key.is_empty() {
                "-"
            } else {
                t.key.as_str()
            },
            t.elapsed_ms
        ));
    }
    out
}

fn cmd_serve(args: &Args) -> Result<String, String> {
    reject_unknown_options(
        args,
        &[
            "addr",
            "threads",
            "spill",
            "repeats",
            "cache-shards",
            "eviction",
            "cache-entries",
            "max-in-flight",
            "transfer",
            "index-entries",
            "io",
            "dispatchers",
            "metrics-addr",
            "slow-ms",
            "platform",
            "platform-dir",
        ],
    )?;
    let addr = args
        .options
        .get("addr")
        .map_or("127.0.0.1:7878", String::as_str)
        .to_string();
    let default_io = IoModel::platform_default();
    let config = ServerConfig {
        addr,
        threads: opt_parse(args, "threads", 0usize)?,
        spill_dir: args.options.get("spill").map(std::path::PathBuf::from),
        profile_repeats: opt_parse(args, "repeats", 10usize)?,
        cache_shards: opt_parse(args, "cache-shards", 0usize)?,
        eviction: parse_eviction(args.options.get("eviction").map_or("lru", String::as_str))?,
        cache_max_entries: opt_parse(args, "cache-entries", 0usize)?,
        max_in_flight: opt_parse(args, "max-in-flight", 0usize)?,
        transfer: parse_transfer(args.options.get("transfer").map_or("auto", String::as_str))?,
        index_entries: opt_parse(args, "index-entries", 0usize)?,
        io: match args.options.get("io") {
            Some(s) => parse_io(s)?,
            None => default_io,
        },
        dispatchers: opt_parse(args, "dispatchers", 0usize)?,
        metrics_addr: args.options.get("metrics-addr").cloned(),
        slow_ms: opt_parse(args, "slow-ms", qsdnn_serve::DEFAULT_SLOW_MS)?,
        platform: args.options.get("platform").cloned().unwrap_or_default(),
        platform_dir: args
            .options
            .get("platform-dir")
            .map(std::path::PathBuf::from),
        ..ServerConfig::default()
    };
    let spill_note = config
        .spill_dir
        .as_ref()
        .map(|d| format!(", spilling plans to {}", d.display()))
        .unwrap_or_default();
    let io = config.io;
    let server = PlanServer::start(config).map_err(|e| e.to_string())?;
    let metrics_note = server
        .metrics_addr()
        .map(|a| format!(", Prometheus metrics on http://{a}/metrics"))
        .unwrap_or_default();
    // A handler panic anywhere in the process flushes the flight recorder
    // to a post-mortem dump before the default hook prints the backtrace:
    // the journal explains *what the server was doing* when it died, which
    // the backtrace alone does not.
    {
        let write_dump = server.postmortem_writer();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = write_dump("panic") {
                eprintln!(
                    "qsdnn-serve: post-mortem dump written to {}",
                    path.display()
                );
            }
            previous(info);
        }));
    }
    qsdnn_serve::signals::install_term_handler();
    eprintln!(
        "qsdnn-serve listening on {} ({io} connection layer; JSON-lines requests: \
         profile/search/plan/platforms/stats/metrics/events/tasks){spill_note}{metrics_note}",
        server.local_addr()
    );
    // Serve until SIGTERM. The latch is polled rather than waited on so the
    // handler itself stays async-signal-safe (one atomic store).
    while !qsdnn_serve::signals::term_requested() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    let dump_note = server
        .write_postmortem("sigterm")
        .map(|p| format!("; post-mortem dump at {}", p.display()))
        .unwrap_or_default();
    server.shutdown();
    Ok(format!(
        "qsdnn-serve: SIGTERM, shut down cleanly{dump_note}"
    ))
}

fn cmd_submit(args: &Args) -> Result<String, String> {
    reject_unknown_options(
        args,
        &[
            "addr",
            "request",
            "network",
            "networks",
            "batch",
            "batches",
            "mode",
            "objective",
            "episodes",
            "seeds",
            "transfer",
            "repeats",
            "lut",
            "trace",
            "histograms",
            "platform",
            "protocol",
        ],
    )?;
    let addr = required(args, "addr")?;
    // --protocol 2 pins the JSON framing (older servers, wire debugging);
    // the default negotiates the v3 binary framing with automatic JSON
    // fallback against pre-v3 servers.
    let protocol = opt_parse(args, "protocol", 3u32)?;
    let mut client = match protocol {
        3 => PlanClient::connect(addr.as_str()),
        1 | 2 => PlanClient::connect_with_version(addr.as_str(), protocol),
        other => {
            return Err(format!(
                "unsupported --protocol {other} (expected 1, 2 or 3)"
            ))
        }
    }
    .map_err(|e| e.to_string())?;
    let kind = args.options.get("request").map_or("plan", String::as_str);
    let network = || required(args, "network").cloned();
    let batch = opt_parse(args, "batch", 1usize)?;
    let mode = parse_mode(args.options.get("mode").map_or("gpgpu", String::as_str))?;
    let objective = parse_objective(
        args.options
            .get("objective")
            .map_or("latency", String::as_str),
    )?;
    let episodes = opt_parse(args, "episodes", 0usize)?;
    let seeds = parse_seeds(args.options.get("seeds").map_or("", String::as_str))?;
    let transfer = parse_transfer(args.options.get("transfer").map_or("auto", String::as_str))?;
    let trace = opt_parse(args, "trace", false)?;
    let platform = args.options.get("platform").cloned().unwrap_or_default();
    match kind {
        "plan" => {
            // `--batches 1,2,4,8` sweeps batch sizes for one network over
            // one pipelined (protocol-v2) connection. The sweep submits
            // strictly in order — each plan lands in the scenario index
            // before the next batch is requested, so every step
            // warm-starts from the previous one (the natural transfer
            // demo); concurrent submission would race all batches cold.
            if let Some(list) = args.options.get("batches") {
                if args.options.contains_key("batch") {
                    return Err("--batch and --batches are mutually exclusive; \
                         fold the single batch into --batches"
                        .to_string());
                }
                if args.options.contains_key("networks") {
                    return Err("--batches sweeps one --network, not --networks".to_string());
                }
                let batches = parse_batches(list)?;
                let network = network()?;
                let started = std::time::Instant::now();
                let mut out = String::new();
                for &batch in &batches {
                    let ticket = client
                        .submit_plan(PlanRequest {
                            network: network.clone(),
                            batch,
                            mode,
                            objective,
                            episodes,
                            seeds: seeds.clone(),
                            transfer,
                            trace,
                            platform: platform.clone(),
                        })
                        .map_err(|e| e.to_string())?;
                    let plan = client.wait_plan(ticket).map_err(|e| e.to_string())?;
                    out.push_str(&format!("batch {batch}: "));
                    out.push_str(&format_plan(&plan));
                    out.push_str("\n\n");
                }
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                out.push_str(&format!(
                    "{} batch sizes swept over one connection in {wall_ms:.0} ms",
                    batches.len()
                ));
                return Ok(out);
            }
            // `--networks a,b,c` pipelines the whole batch over this one
            // connection (tagged protocol-v2 requests): the server works
            // all plans concurrently and replies as each finishes.
            if let Some(list) = args.options.get("networks") {
                if args.options.contains_key("network") {
                    return Err("--network and --networks are mutually exclusive; \
                         fold the single network into --networks"
                        .to_string());
                }
                let names: Vec<&str> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    return Err("--networks needs at least one name".to_string());
                }
                let reqs: Vec<PlanRequest> = names
                    .iter()
                    .map(|name| PlanRequest {
                        network: (*name).to_string(),
                        batch,
                        mode,
                        objective,
                        episodes,
                        seeds: seeds.clone(),
                        transfer,
                        trace,
                        platform: platform.clone(),
                    })
                    .collect();
                let started = std::time::Instant::now();
                let plans = client.plan_many(&reqs).map_err(|e| e.to_string())?;
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let mut out = String::new();
                for plan in &plans {
                    out.push_str(&format_plan(plan));
                    out.push_str("\n\n");
                }
                out.push_str(&format!(
                    "{} plans pipelined over one connection in {wall_ms:.0} ms",
                    plans.len()
                ));
                return Ok(out);
            }
            let plan = client
                .plan(PlanRequest {
                    network: network()?,
                    batch,
                    mode,
                    objective,
                    episodes,
                    seeds,
                    transfer,
                    trace,
                    platform,
                })
                .map_err(|e| e.to_string())?;
            Ok(format_plan(&plan))
        }
        "profile" => {
            let resp = client
                .profile(ProfileRequest {
                    network: network()?,
                    batch,
                    mode,
                    repeats: opt_parse(args, "repeats", 0usize)?,
                    platform,
                })
                .map_err(|e| e.to_string())?;
            let json = serde_json::to_string(&resp.lut).map_err(|e| e.to_string())?;
            if let Some(out_path) = args.options.get("lut") {
                std::fs::write(out_path, &json).map_err(|e| e.to_string())?;
                Ok(format!(
                    "profiled {} ({} layers, fingerprint {}) -> {out_path}",
                    resp.lut.network(),
                    resp.lut.len(),
                    resp.fingerprint
                ))
            } else {
                Ok(json)
            }
        }
        "search" => {
            let lut = load_lut(args)?;
            let plan = client
                .search_on(lut, objective, episodes, seeds, platform)
                .map_err(|e| e.to_string())?;
            Ok(format_plan(&plan))
        }
        "platforms" => {
            let listing = client.platforms().map_err(|e| e.to_string())?;
            let mut out = format!("{} platforms registered:", listing.platforms.len());
            for p in &listing.platforms {
                out.push_str(&format!(
                    "\n  {:<16} {:<10} {:<8} fingerprint {}{}",
                    p.name,
                    p.kind,
                    if p.gpu { "cpu+gpu" } else { "cpu-only" },
                    p.fingerprint,
                    if p.is_default { "  (default)" } else { "" }
                ));
                if !p.description.is_empty() {
                    out.push_str(&format!("\n                   {}", p.description));
                }
            }
            Ok(out)
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            let mut out = format!(
                "qsdnn-serve v{} up {:.1} s | {} requests, {} plans, {} pipelined \
                 (peak {} in flight, cap {}) | plan cache: {} hits, \
                 {} misses, {} coalesced, {} spill loads, {} entries ({:.0}% hit rate), \
                 {} evictions, {} stalls over {} shards | profile cache: {} entries | \
                 {} workers | {} accept errors",
                stats.version,
                stats.uptime_ms as f64 / 1e3,
                stats.requests,
                stats.plans,
                stats.pipelined,
                stats.in_flight_peak,
                stats.max_in_flight,
                stats.plan_cache.hits,
                stats.plan_cache.misses,
                stats.plan_cache.coalesced,
                stats.plan_cache.spill_loads,
                stats.plan_cache.entries,
                stats.plan_cache.hit_rate() * 100.0,
                stats.plan_cache.evictions,
                stats.plan_cache.capacity_stalls,
                stats.plan_cache.shards,
                stats.profile_cache.entries,
                stats.workers,
                stats.accept_errors
            );
            out.push_str(&format!(
                "\ntransfer ({}): {} hits, {} warm starts, mean donor distance {:.3}, \
                 {} indexed scenarios",
                stats.transfer,
                stats.transfer_hits,
                stats.warm_starts,
                stats.mean_donor_distance,
                stats.index_entries
            ));
            for (i, s) in stats.plan_cache_shards.iter().enumerate() {
                out.push_str(&format!(
                    "\n  plan shard {i}: {}/{} resident ({} in flight), {} hits, {} misses, \
                     {} coalesced, {} evictions",
                    s.entries + s.in_flight,
                    s.capacity,
                    s.in_flight,
                    s.hits,
                    s.misses,
                    s.coalesced,
                    s.evictions
                ));
            }
            if opt_parse(args, "histograms", false)? {
                let metrics = client.metrics().map_err(|e| e.to_string())?;
                out.push_str("\n\n");
                out.push_str(&format_metrics(&metrics));
            }
            Ok(out)
        }
        "metrics" => {
            let metrics = client.metrics().map_err(|e| e.to_string())?;
            Ok(format_metrics(&metrics))
        }
        "events" => {
            let events = client.events().map_err(|e| e.to_string())?;
            Ok(format_events(&events))
        }
        "tasks" => {
            let tasks = client.tasks().map_err(|e| e.to_string())?;
            Ok(format_tasks(&tasks))
        }
        other => Err(format!(
            "unknown request `{other}` (plan|profile|search|platforms|stats|metrics|events|tasks)"
        )),
    }
}

/// One sampled `top` frame: the merged request-latency histogram (summed
/// over the per-kind samples) plus the recorder's event counter, so
/// consecutive frames can be differenced into a rolling window.
struct TopSample {
    /// Bucket index -> (upper bound in us, cumulative count).
    buckets: HashMap<u64, (u64, u64)>,
    sum_us: u64,
    count: u64,
    events_total: u64,
    uptime_ms: u64,
}

fn top_sample(metrics: &MetricsResponse, events_total: u64) -> TopSample {
    let mut buckets: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut sum_us = 0u64;
    let mut count = 0u64;
    for family in &metrics.families {
        if family.name != "qsdnn_request_us" {
            continue;
        }
        for sample in &family.samples {
            if let MetricValue::Histogram(h) = &sample.value {
                sum_us += h.sum_us;
                count += h.count;
                for &(i, upper, n) in &h.buckets {
                    buckets.entry(i).or_insert((upper, 0)).1 += n;
                }
            }
        }
    }
    TopSample {
        buckets,
        sum_us,
        count,
        events_total,
        uptime_ms: metrics.uptime_ms,
    }
}

/// Differences two samples and re-quantiles the interval through the wire
/// histogram's own snapshot reconstruction. Returns
/// `(requests, p50_us, p99_us, events)` for the window.
fn top_delta(prev: &TopSample, cur: &TopSample) -> (u64, u64, u64, u64) {
    let mut buckets: Vec<(u64, u64, u64)> = cur
        .buckets
        .iter()
        .map(|(&i, &(upper, n))| {
            let before = prev.buckets.get(&i).map_or(0, |&(_, p)| p);
            (i, upper, n.saturating_sub(before))
        })
        .filter(|&(_, _, n)| n > 0)
        .collect();
    buckets.sort_unstable();
    let count = cur.count.saturating_sub(prev.count);
    let window = HistogramMsg {
        count,
        sum_us: cur.sum_us.saturating_sub(prev.sum_us),
        p50_us: 0,
        p90_us: 0,
        p99_us: 0,
        p999_us: 0,
        buckets,
    }
    .to_snapshot();
    (
        count,
        window.p50(),
        window.p99(),
        cur.events_total.saturating_sub(prev.events_total),
    )
}

fn render_top(
    addr: &str,
    tasks: &TasksResponse,
    sample: &TopSample,
    delta: Option<(u64, u64, u64, u64)>,
    interval_ms: u64,
) -> String {
    let mut out = format!(
        "qsdnn-top — {addr} | up {:.1} s",
        sample.uptime_ms as f64 / 1e3
    );
    match delta {
        Some((reqs, p50, p99, events)) => {
            let secs = (interval_ms as f64 / 1e3).max(1e-3);
            out.push_str(&format!(
                "\nlast {secs:.1} s: {reqs} requests ({:.1}/s), p50 {p50} us, p99 {p99} us, \
                 {:.1} events/s",
                reqs as f64 / secs,
                events as f64 / secs
            ));
        }
        None => out.push_str("\nrolling p50/p99 and event rate appear from the second frame on"),
    }
    out.push_str("\n\n");
    out.push_str(&format_tasks(tasks));
    out
}

fn cmd_top(args: &Args) -> Result<String, String> {
    reject_unknown_options(args, &["addr", "interval-ms", "frames"])?;
    let addr = required(args, "addr")?;
    let interval_ms = opt_parse(args, "interval-ms", 1000u64)?;
    // 0 = refresh until the process is interrupted; N renders N frames and
    // returns the last one, for scripts and CI smoke tests.
    let frames = opt_parse(args, "frames", 0u64)?;
    let mut client = PlanClient::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let mut prev: Option<TopSample> = None;
    let mut frame = 0u64;
    loop {
        frame += 1;
        let tasks = client.tasks().map_err(|e| e.to_string())?;
        let metrics = client.metrics().map_err(|e| e.to_string())?;
        let sample = top_sample(&metrics, tasks.events_total);
        let delta = prev.as_ref().map(|p| top_delta(p, &sample));
        let body = render_top(addr, &tasks, &sample, delta, interval_ms);
        if frames != 0 && frame >= frames {
            return Ok(body);
        }
        // Interactive frame: clear, redraw, sleep until the next sample.
        println!("\x1b[2J\x1b[H{body}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        prev = Some(sample);
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Dispatches a parsed command line; returns the text to print.
///
/// # Errors
///
/// Returns a user-facing error message (bad arguments, I/O failures,
/// unknown names).
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "networks" => cmd_networks(args),
        "profile" => cmd_profile(args),
        "search" => cmd_search(args),
        "report" => cmd_report(args),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "top" => cmd_top(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_and_options() {
        let args = parse_args(&argv(&["search", "--lut", "x.json", "--episodes", "50"])).unwrap();
        assert_eq!(args.command, "search");
        assert_eq!(args.options["lut"], "x.json");
        assert_eq!(args.options["episodes"], "50");
    }

    #[test]
    fn parse_rejects_bare_options() {
        assert!(parse_args(&argv(&["search", "oops"])).is_err());
        assert!(parse_args(&argv(&["search", "--lut"])).is_err());
        assert!(parse_args(&argv(&[])).is_err());
    }

    #[test]
    fn objective_parsing() {
        assert_eq!(parse_objective("latency").unwrap(), Objective::Latency);
        assert_eq!(parse_objective("energy").unwrap(), Objective::Energy);
        assert_eq!(
            parse_objective("weighted:0.5").unwrap(),
            Objective::Weighted { lambda: 0.5 }
        );
        assert!(parse_objective("weighted:abc").is_err());
        assert!(parse_objective("speed").is_err());
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode("cpu").unwrap(), Mode::Cpu);
        assert_eq!(parse_mode("gpgpu").unwrap(), Mode::Gpgpu);
        assert!(parse_mode("tpu").is_err());
    }

    #[test]
    fn networks_lists_roster() {
        let out = run(&parse_args(&argv(&["networks"])).unwrap()).unwrap();
        for name in qsdnn::nn::zoo::PAPER_ROSTER {
            assert!(out.contains(name), "{name} missing");
        }
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run(&parse_args(&argv(&["frobnicate"])).unwrap()).unwrap_err();
        assert!(err.contains("usage:"));
    }

    #[test]
    fn unknown_options_are_rejected_not_ignored() {
        let err = run(&parse_args(&argv(&["networks", "--frobnicate", "1"])).unwrap()).unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
        assert!(err.contains("--frobnicate"), "{err}");
        // A typo'd key on a real command names the accepted set.
        let err =
            run(&parse_args(&argv(&["search", "--lut", "x.json", "--episods", "50"])).unwrap())
                .unwrap_err();
        assert!(err.contains("--episods"), "{err}");
        assert!(err.contains("accepted options"), "{err}");
        assert!(err.contains("--episodes"), "{err}");
    }

    #[test]
    fn help_flags_short_circuit_anywhere() {
        for argvv in [
            vec!["--help"],
            vec!["-h"],
            vec!["search", "--help"],
            vec!["profile", "--network", "lenet5", "-h"],
        ] {
            let args = parse_args(&argv(&argvv)).unwrap();
            assert_eq!(args.command, "help", "{argvv:?}");
            assert!(run(&args).unwrap().contains("usage:"));
        }
        // In a *value* position, `-h` is data, not a help request.
        let args = parse_args(&argv(&["profile", "--network", "lenet5", "--out", "-h"])).unwrap();
        assert_eq!(args.command, "profile");
        assert_eq!(args.options["out"], "-h");
    }

    #[test]
    fn eviction_parsing() {
        assert_eq!(parse_eviction("lru").unwrap(), EvictionPolicy::Lru);
        assert_eq!(
            parse_eviction("cost").unwrap(),
            EvictionPolicy::CostWeighted
        );
        assert_eq!(
            parse_eviction("cost-weighted").unwrap(),
            EvictionPolicy::CostWeighted
        );
        assert!(parse_eviction("fifo").is_err());
    }

    #[test]
    fn serve_rejects_unknown_cache_flags_and_accepts_real_ones() {
        // A typo'd cache flag must be rejected, naming the accepted set.
        let err = run(&parse_args(&argv(&["serve", "--cache-shard", "4", "--addr", "x"])).unwrap())
            .unwrap_err();
        assert!(err.contains("--cache-shard"), "{err}");
        assert!(err.contains("--cache-shards"), "{err}");
        assert!(err.contains("--eviction"), "{err}");
        // A bad eviction policy is a clean error, not a started server.
        let err = run(&parse_args(&argv(&["serve", "--eviction", "fifo"])).unwrap()).unwrap_err();
        assert!(err.contains("unknown eviction policy"), "{err}");
    }

    #[test]
    fn io_model_parsing() {
        assert_eq!(parse_io("threads").unwrap(), IoModel::Threads);
        assert_eq!(parse_io("epoll").unwrap(), IoModel::Epoll);
        assert!(parse_io("uring").is_err());
        // A bad io model is a clean error, not a started server.
        let err = run(&parse_args(&argv(&["serve", "--io", "uring"])).unwrap()).unwrap_err();
        assert!(err.contains("unknown io model"), "{err}");
    }

    #[test]
    fn seeds_lists_parse() {
        assert_eq!(parse_seeds("").unwrap(), Vec::<u64>::new());
        assert_eq!(parse_seeds("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_seeds("42").unwrap(), vec![42]);
        assert!(parse_seeds("1,x").is_err());
    }

    #[test]
    fn submit_round_trips_against_an_in_process_server() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        let out = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "tiny_cnn",
            "--episodes",
            "150",
            "--seeds",
            "7",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("plan"), "{out}");
        assert!(out.contains("tiny_cnn"), "{out}");
        assert!(out.contains("portfolio:"), "{out}");
        // Second submission of the identical scenario hits the cache.
        let out = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "tiny_cnn",
            "--episodes",
            "150",
            "--seeds",
            "7",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("[cache hit]"), "{out}");
        let stats =
            run(&parse_args(&argv(&["submit", "--addr", &addr, "--request", "stats"])).unwrap())
                .unwrap();
        assert!(stats.contains("plan cache: 1 hits"), "{stats}");
        server.shutdown();
    }

    /// `--protocol 2` pins JSON framing, `--protocol 3` (the default)
    /// negotiates binary — both must produce the same rendered plan for
    /// the same scenario, cache hit included.
    #[test]
    fn submit_protocol_flag_selects_the_wire_framing() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        let submit = |protocol: &str| {
            run(&parse_args(&argv(&[
                "submit",
                "--addr",
                &addr,
                "--network",
                "tiny_cnn",
                "--episodes",
                "140",
                "--seeds",
                "3",
                "--protocol",
                protocol,
            ]))
            .unwrap())
            .unwrap()
        };
        let via_v2 = submit("2");
        assert!(via_v2.contains("tiny_cnn"), "{via_v2}");
        // The v3 repeat is a cache hit served from the preserialized
        // binary body; the rendered plan must match the JSON one.
        let via_v3 = submit("3");
        assert!(via_v3.contains("[cache hit]"), "{via_v3}");
        let normalize = |s: &str| -> String {
            s.replace("[cache hit]", "")
                .lines()
                .map(str::trim_end)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            normalize(&via_v2),
            normalize(&via_v3),
            "wire framing changed the rendered plan"
        );
        let err = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--request",
            "stats",
            "--protocol",
            "9",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("unsupported --protocol"), "{err}");
        server.shutdown();
    }

    #[test]
    fn submit_networks_pipelines_a_batch_over_one_connection() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        let out = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--networks",
            "tiny_cnn, toy_branchy",
            "--episodes",
            "120",
            "--seeds",
            "3",
        ]))
        .unwrap())
        .unwrap();
        assert!(
            out.contains("2 plans pipelined over one connection"),
            "{out}"
        );
        assert!(out.contains("for tiny_cnn"), "{out}");
        assert!(out.contains("for toy_branchy"), "{out}");
        // The server really saw tagged (v2) requests.
        let stats =
            run(&parse_args(&argv(&["submit", "--addr", &addr, "--request", "stats"])).unwrap())
                .unwrap();
        assert!(stats.contains("2 pipelined"), "{stats}");
        // An empty list is rejected before touching the server.
        let err = run(&parse_args(&argv(&["submit", "--addr", &addr, "--networks", ","])).unwrap())
            .unwrap_err();
        assert!(err.contains("at least one name"), "{err}");
        // Conflicting --network/--networks is an error, not a silent drop.
        let err = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "vgg16",
            "--networks",
            "lenet5,tiny_cnn",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        server.shutdown();
    }

    #[test]
    fn transfer_and_batches_parsing() {
        assert_eq!(parse_transfer("auto").unwrap(), TransferMode::Auto);
        assert_eq!(parse_transfer("off").unwrap(), TransferMode::Off);
        assert!(parse_transfer("on").is_err());
        assert_eq!(parse_batches("1,2,4,8").unwrap(), vec![1, 2, 4, 8]);
        assert_eq!(parse_batches(" 2 , 16 ").unwrap(), vec![2, 16]);
        assert!(parse_batches("").is_err());
        assert!(parse_batches("1,0").is_err(), "batch 0 is invalid");
        assert!(parse_batches("1,x").is_err());
        // A bad serve transfer flag is a clean error, not a started server.
        let err = run(&parse_args(&argv(&["serve", "--transfer", "on"])).unwrap()).unwrap_err();
        assert!(err.contains("unknown transfer mode"), "{err}");
    }

    #[test]
    fn submit_batches_sweeps_warm_starts_over_one_connection() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        let out = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "tiny_cnn",
            "--batches",
            "1,2,4",
            "--episodes",
            "150",
            "--seeds",
            "7",
        ]))
        .unwrap())
        .unwrap();
        assert!(
            out.contains("3 batch sizes swept over one connection"),
            "{out}"
        );
        assert!(out.contains("batch 1: "), "{out}");
        assert!(out.contains("batch 4: "), "{out}");
        // The first batch is a cold start; every later one prints its
        // warm-start provenance (donor key + distance + episode budget).
        assert!(out.contains("cold start"), "{out}");
        assert!(out.contains("warm start: donor "), "{out}");
        let warm_lines = out.matches("warm start: donor ").count();
        assert_eq!(warm_lines, 2, "batches 2 and 4 warm-start: {out}");
        // Stats confirm the server really transferred.
        let stats =
            run(&parse_args(&argv(&["submit", "--addr", &addr, "--request", "stats"])).unwrap())
                .unwrap();
        assert!(stats.contains("transfer (auto):"), "{stats}");
        assert!(!stats.contains("transfer (auto): 0 hits"), "{stats}");
        // Conflicting flags are rejected before touching the server.
        let err = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "x",
            "--batch",
            "2",
            "--batches",
            "1,2",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--networks",
            "a,b",
            "--batches",
            "1,2",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("one --network"), "{err}");
        server.shutdown();
    }

    #[test]
    fn submit_events_and_tasks_surface_the_flight_recorder() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        // Drive one plan so the journal has request/cache/stage events.
        run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "tiny_cnn",
            "--episodes",
            "120",
            "--seeds",
            "3",
        ]))
        .unwrap())
        .unwrap();
        let out =
            run(&parse_args(&argv(&["submit", "--addr", &addr, "--request", "events"])).unwrap())
                .unwrap();
        assert!(out.contains("flight recorder: on"), "{out}");
        assert!(out.contains("request_begin"), "{out}");
        assert!(out.contains("cache_miss"), "{out}");
        let out =
            run(&parse_args(&argv(&["submit", "--addr", &addr, "--request", "tasks"])).unwrap())
                .unwrap();
        assert!(out.contains("thread"), "{out}");
        assert!(out.contains("state"), "{out}");
        server.shutdown();
    }

    #[test]
    fn top_renders_noninteractive_frames() {
        let server = qsdnn_serve::start_local().expect("server");
        let addr = server.local_addr().to_string();
        run(&parse_args(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--network",
            "tiny_cnn",
            "--episodes",
            "120",
            "--seeds",
            "3",
        ]))
        .unwrap())
        .unwrap();
        let out = run(&parse_args(&argv(&[
            "top",
            "--addr",
            &addr,
            "--frames",
            "2",
            "--interval-ms",
            "50",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("qsdnn-top"), "{out}");
        assert!(out.contains("p50"), "{out}");
        assert!(out.contains("plan key"), "{out}");
        server.shutdown();
    }

    #[test]
    fn end_to_end_profile_search_report_via_tempfiles() {
        let dir = std::env::temp_dir().join("qsdnn_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let lut_path = dir.join("lut.json");
        let report_path = dir.join("report.json");
        let lut_s = lut_path.to_str().unwrap();
        let report_s = report_path.to_str().unwrap();

        let out = run(&parse_args(&argv(&[
            "profile",
            "--network",
            "lenet5",
            "--mode",
            "gpgpu",
            "--repeats",
            "2",
            "--out",
            lut_s,
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("profiled lenet5"));

        let out = run(&parse_args(&argv(&[
            "search",
            "--lut",
            lut_s,
            "--episodes",
            "200",
            "--out",
            report_s,
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("qs-dnn on lenet5"));

        let out =
            run(&parse_args(&argv(&["report", "--lut", lut_s, "--report", report_s])).unwrap())
                .unwrap();
        assert!(out.contains("per-layer primitives"));
        assert!(out.contains("conv1"));

        std::fs::remove_dir_all(&dir).ok();
    }
}
