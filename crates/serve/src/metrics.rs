//! Server-side instrumentation: request spans, stage histograms, and the
//! event-loop/pool health gauges.
//!
//! Every request carries a [`RequestSpan`] from the byte that framed it
//! to the byte that acknowledged it. The span accumulates per-stage
//! durations (`parse → queue → profile → cache → search → serialize →
//! write`) and is observed exactly once into the server's
//! [`ServeMetrics`] — request and stage latency histograms, plus the
//! slow-request log. Spans are plain data (`Send`), so the epoll layer
//! can carry them from the reactor thread through a dispatcher and back.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qsdnn_obs::log::FieldValue;
use qsdnn_obs::{Counter, EventKind, FlightRecorder, Gauge, Histogram, Registry, Snapshot};

use crate::protocol::{
    HistogramMsg, MetricFamily, MetricSample, MetricValue, Request, StageTiming, TraceInfo,
};

/// Pipeline stages of one request, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Frame → `Request` parse time.
    Parse,
    /// Dispatch queue wait (enqueue → a worker picks the request up).
    Queue,
    /// Phase-1 profiling (or profile-cache lookup) time.
    Profile,
    /// Plan-cache lookup/index time (excludes the search it may trigger).
    Cache,
    /// Portfolio search / transfer warm-start time.
    Search,
    /// Response → bytes serialization time.
    Serialize,
    /// Outbox write time (queue → last byte handed to the kernel).
    Write,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub(crate) const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::Queue,
        Stage::Profile,
        Stage::Cache,
        Stage::Search,
        Stage::Serialize,
        Stage::Write,
    ];

    /// Lowercase label (histogram `stage` label, trace stage name).
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Profile => "profile",
            Stage::Cache => "cache",
            Stage::Search => "search",
            Stage::Serialize => "serialize",
            Stage::Write => "write",
        }
    }
}

/// Request kinds, the `kind` label of `qsdnn_request_us`. `error` covers
/// lines that never parsed into a request.
pub(crate) const KINDS: [&str; 10] = [
    "ping",
    "profile",
    "search",
    "plan",
    "stats",
    "metrics",
    "platforms",
    "events",
    "tasks",
    "error",
];

/// Task-table kind id for a search worker running a portfolio-member job.
/// Lives outside the [`KINDS`] index range on purpose: pool jobs are not
/// requests.
pub(crate) const TASK_KIND_SEARCH_JOB: u16 = 100;

/// Task-table kind id for an epoll dispatcher running a whole request.
pub(crate) const TASK_KIND_DISPATCH_JOB: u16 = 101;

/// Index of a kind label in [`KINDS`] (unknown labels fold into `error`).
/// Doubles as the flight recorder's request/task-kind id space, extended
/// by the pool-job ids [`TASK_KIND_SEARCH_JOB`]/[`TASK_KIND_DISPATCH_JOB`].
pub(crate) fn kind_index(kind: &str) -> usize {
    KINDS
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(KINDS.len() - 1)
}

/// The `kind` label for a parsed request.
pub(crate) fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Ping { .. } => "ping",
        Request::Profile(_) => "profile",
        Request::Search(_) => "search",
        Request::Plan(_) => "plan",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Platforms => "platforms",
        Request::Events => "events",
        Request::Tasks => "tasks",
    }
}

/// Whether the client asked for its span to be echoed in the response.
pub(crate) fn trace_requested(req: &Request) -> bool {
    match req {
        Request::Search(r) => r.trace,
        Request::Plan(r) => r.trace,
        _ => false,
    }
}

/// Per-request span: birth instant plus accumulated stage durations.
///
/// Inactive spans (instrumentation disabled) skip every clock read; the
/// only cost left on the hot path is a branch.
#[derive(Debug)]
pub(crate) struct RequestSpan {
    kind: &'static str,
    active: bool,
    trace: bool,
    start: Instant,
    stages: [Duration; Stage::ALL.len()],
    /// Flight-recorder request serial (0 when the recorder is off).
    serial: u64,
    /// Plan key the request resolved to, packed (0 = none/unknown).
    key: u64,
}

impl RequestSpan {
    /// Accumulates `d` into a stage.
    pub(crate) fn record(&mut self, stage: Stage, d: Duration) {
        if self.active {
            self.stages[stage as usize] += d;
        }
    }

    /// Times `f` into a stage (runs it untimed when inactive).
    pub(crate) fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        if !self.active {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.record(stage, start.elapsed());
        out
    }

    /// Re-labels the span once the request kind is known.
    pub(crate) fn set_kind(&mut self, kind: &'static str) {
        self.kind = kind;
    }

    /// Whether this span records at all (instrumentation enabled).
    pub(crate) fn is_active(&self) -> bool {
        self.active
    }

    /// Total duration accumulated into one stage so far.
    pub(crate) fn stage_total(&self, stage: Stage) -> Duration {
        self.stages[stage as usize]
    }

    /// Marks that the client asked for a trace echo.
    pub(crate) fn set_trace(&mut self, trace: bool) {
        self.trace = trace;
    }

    /// The flight-recorder request serial (0 = recorder off).
    pub(crate) fn serial(&self) -> u64 {
        self.serial
    }

    /// Records the packed plan key the request resolved to.
    pub(crate) fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// The span's kind label.
    pub(crate) fn kind(&self) -> &'static str {
        self.kind
    }

    /// Whether a trace echo was requested (and the span can supply one).
    pub(crate) fn trace_requested(&self) -> bool {
        self.trace && self.active
    }

    /// The span's age.
    pub(crate) fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// Builds the client-facing echo: stages with nonzero time so far, in
    /// pipeline order. Called before serialization, so `serialize` and
    /// `write` can never appear — documented on `TraceInfo`.
    pub(crate) fn trace_info(&self) -> TraceInfo {
        let stages = Stage::ALL
            .iter()
            .filter(|&&s| !self.stages[s as usize].is_zero())
            .map(|&s| StageTiming {
                stage: s.as_str().to_string(),
                ms: self.stages[s as usize].as_secs_f64() * 1e3,
            })
            .collect();
        TraceInfo {
            stages,
            total_ms: self.total().as_secs_f64() * 1e3,
        }
    }
}

/// All instruments the serve stack records into, pre-registered so the
/// exposition endpoint lists every family from the first scrape.
pub(crate) struct ServeMetrics {
    enabled: bool,
    slow: Option<Duration>,
    registry: Arc<Registry>,
    /// The always-on flight recorder (journal, task table, exemplars).
    recorder: Arc<FlightRecorder>,
    request_us: Vec<Arc<Histogram>>,
    stage_us: Vec<Arc<Histogram>>,
    slow_requests: Arc<Counter>,
    /// Open client connections (both I/O layers).
    pub(crate) connections: Arc<Gauge>,
    /// Microseconds the reactor spent blocked in its last `epoll_wait`.
    pub(crate) reactor_wait_stall_us: Arc<Gauge>,
    /// Ready events delivered by the last `epoll_wait`.
    pub(crate) reactor_ready_events: Arc<Gauge>,
    /// Time spent processing one reactor wakeup.
    pub(crate) reactor_loop_us: Arc<Histogram>,
    /// Largest single-connection outbox observed, bytes.
    pub(crate) outbox_high_water_bytes: Arc<Gauge>,
    /// Search-pool gauges, handed to the `WorkerPool`.
    pub(crate) search_pool: crate::pool::PoolGauges,
    /// Dispatcher gauges (epoll dispatch pool / threaded v2 threads).
    pub(crate) dispatch_pool: crate::pool::PoolGauges,
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("enabled", &self.enabled)
            .field("slow", &self.slow)
            .finish()
    }
}

impl ServeMetrics {
    /// Registers every serve-level instrument in `registry`.
    pub(crate) fn new(
        enabled: bool,
        slow_ms: u64,
        registry: Arc<Registry>,
        recorder: Arc<FlightRecorder>,
    ) -> ServeMetrics {
        registry
            .gauge(
                "qsdnn_build_info",
                "Build metadata carried in labels; the value is always 1",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("git_hash", env!("QSDNN_GIT_HASH")),
                ],
            )
            .set(1);
        let request_us = KINDS
            .iter()
            .map(|kind| {
                registry.histogram(
                    "qsdnn_request_us",
                    "End-to-end request latency, by request kind",
                    &[("kind", kind)],
                )
            })
            .collect();
        let stage_us = Stage::ALL
            .iter()
            .map(|s| {
                registry.histogram(
                    "qsdnn_request_stage_us",
                    "Per-stage request latency",
                    &[("stage", s.as_str())],
                )
            })
            .collect();
        let slow_requests = registry.counter(
            "qsdnn_slow_requests_total",
            "Requests whose total span exceeded the slow threshold",
            &[],
        );
        let connections = registry.gauge("qsdnn_connections", "Open client connections", &[]);
        let reactor_wait_stall_us = registry.gauge(
            "qsdnn_reactor_wait_stall_us",
            "Microseconds the reactor was blocked in its last epoll_wait",
            &[],
        );
        let reactor_ready_events = registry.gauge(
            "qsdnn_reactor_ready_events",
            "Ready events delivered by the reactor's last epoll_wait",
            &[],
        );
        let reactor_loop_us = registry.histogram(
            "qsdnn_reactor_loop_us",
            "Time spent processing one reactor wakeup",
            &[],
        );
        let outbox_high_water_bytes = registry.gauge(
            "qsdnn_outbox_high_water_bytes",
            "Largest single-connection outbox observed",
            &[],
        );
        let pool_gauges = |pool: &str| crate::pool::PoolGauges {
            queue_depth: registry.gauge(
                "qsdnn_pool_queue_depth",
                "Jobs queued but not yet picked up, by pool",
                &[("pool", pool)],
            ),
            busy: registry.gauge(
                "qsdnn_pool_busy_workers",
                "Workers currently running a job, by pool",
                &[("pool", pool)],
            ),
        };
        let search_pool = pool_gauges("search");
        let dispatch_pool = pool_gauges("dispatch");
        ServeMetrics {
            enabled,
            slow: (slow_ms > 0).then(|| Duration::from_millis(slow_ms)),
            registry,
            recorder,
            request_us,
            stage_us,
            slow_requests,
            connections,
            reactor_wait_stall_us,
            reactor_ready_events,
            reactor_loop_us,
            outbox_high_water_bytes,
            search_pool,
            dispatch_pool,
        }
    }

    /// Whether per-request instrumentation is on.
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// The registry all serve instruments live in.
    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The server's flight recorder.
    pub(crate) fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Opens a span for a request of (not yet necessarily known) kind,
    /// allocating its flight-recorder serial.
    pub(crate) fn span(&self, kind: &'static str) -> RequestSpan {
        RequestSpan {
            kind,
            active: self.enabled,
            trace: false,
            start: Instant::now(),
            stages: [Duration::ZERO; Stage::ALL.len()],
            serial: if self.recorder.enabled() {
                self.recorder.next_serial()
            } else {
                0
            },
            key: 0,
        }
    }

    /// Observes a finished span: request + stage histograms, the
    /// journal's stage/end events, the slow-request warn event and slow
    /// exemplar when the total crossed the threshold. Call exactly once
    /// per span.
    pub(crate) fn observe(&self, span: &RequestSpan) {
        let total = span.total();
        let kind_index = kind_index(span.kind);
        if self.recorder.enabled() && span.serial != 0 {
            // One ring access for the whole breakdown: the per-emit cost
            // is the hook lookup + clock read, and this runs per request.
            let mut batch = [(EventKind::RequestEnd, 0u64, 0u64, 0u64); Stage::ALL.len() + 1];
            let mut n = 0;
            for stage in Stage::ALL {
                let d = span.stages[stage as usize];
                if !d.is_zero() {
                    batch[n] = (
                        EventKind::StageEnd,
                        span.key,
                        stage as u64,
                        d.as_micros() as u64,
                    );
                    n += 1;
                }
            }
            batch[n] = (
                EventKind::RequestEnd,
                span.key,
                kind_index as u64,
                total.as_micros() as u64,
            );
            n += 1;
            self.recorder.emit_batch(span.serial, &batch[..n]);
            if let Some(threshold) = self.slow {
                if total > threshold {
                    self.recorder.capture_exemplar(
                        kind_index as u16,
                        span.serial,
                        total.as_micros() as u64,
                        span.key,
                        false,
                    );
                }
            }
        }
        if !span.active {
            return;
        }
        self.request_us[kind_index].record_duration(total);
        for stage in Stage::ALL {
            let d = span.stages[stage as usize];
            if !d.is_zero() {
                self.stage_us[stage as usize].record_duration(d);
            }
        }
        if let Some(threshold) = self.slow {
            if total > threshold {
                self.slow_requests.inc();
                let mut fields: Vec<(&str, FieldValue)> = vec![
                    ("kind", FieldValue::from(span.kind)),
                    ("total_ms", FieldValue::from(total.as_secs_f64() * 1e3)),
                ];
                for stage in Stage::ALL {
                    let d = span.stages[stage as usize];
                    if !d.is_zero() {
                        fields.push((stage.as_str(), FieldValue::from(d.as_secs_f64() * 1e3)));
                    }
                }
                qsdnn_obs::log::warn("slow_request", &fields);
            }
        }
    }

    /// Journals a handler panic and captures the request's journal
    /// excerpt as a panic exemplar. Called from the dispatch firewall;
    /// the span is still observed afterwards.
    pub(crate) fn capture_panic(&self, span: &RequestSpan) {
        if !self.recorder.enabled() || span.serial == 0 {
            return;
        }
        let kind_index = kind_index(span.kind);
        self.recorder.emit_for(
            span.serial,
            EventKind::HandlerPanic,
            span.key,
            kind_index as u64,
            0,
        );
        self.recorder.capture_exemplar(
            kind_index as u16,
            span.serial,
            span.total().as_micros() as u64,
            span.key,
            true,
        );
    }
}

/// Converts an observability snapshot into wire metric families.
pub(crate) fn families_from_snapshot(snap: &Snapshot) -> Vec<MetricFamily> {
    snap.families
        .iter()
        .map(|family| MetricFamily {
            name: family.name.clone(),
            help: family.help.clone(),
            kind: family.kind.as_str().to_string(),
            samples: family
                .samples
                .iter()
                .map(|sample| MetricSample {
                    labels: sample.labels.clone(),
                    value: match &sample.value {
                        qsdnn_obs::SampleValue::Counter(v) => MetricValue::Counter(*v),
                        qsdnn_obs::SampleValue::Gauge(v) => MetricValue::Gauge(*v),
                        qsdnn_obs::SampleValue::Histogram(h) => {
                            MetricValue::Histogram(HistogramMsg::from_snapshot(h))
                        }
                    },
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_metrics(slow_ms: u64) -> ServeMetrics {
        ServeMetrics::new(
            true,
            slow_ms,
            Arc::new(Registry::new()),
            Arc::new(FlightRecorder::new(true)),
        )
    }

    #[test]
    fn spans_accumulate_stages_and_feed_histograms() {
        let metrics = test_metrics(1000);
        let mut span = metrics.span("plan");
        span.record(Stage::Parse, Duration::from_micros(80));
        span.record(Stage::Search, Duration::from_micros(900));
        span.record(Stage::Search, Duration::from_micros(100));
        metrics.observe(&span);
        let snap = metrics.registry().snapshot();
        let request = snap
            .families
            .iter()
            .find(|f| f.name == "qsdnn_request_us")
            .expect("request family");
        let plan_sample = request
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "plan"))
            .expect("plan sample");
        match &plan_sample.value {
            qsdnn_obs::SampleValue::Histogram(h) => assert_eq!(h.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        let stages = snap
            .families
            .iter()
            .find(|f| f.name == "qsdnn_request_stage_us")
            .expect("stage family");
        let search = stages
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "search"))
            .expect("search stage");
        match &search.value {
            // Two records into one span merge before observation.
            qsdnn_obs::SampleValue::Histogram(h) => {
                assert_eq!(h.count(), 1);
                assert!(h.sum() >= 1000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn inactive_spans_observe_nothing() {
        let metrics = ServeMetrics::new(
            false,
            1000,
            Arc::new(Registry::new()),
            Arc::new(FlightRecorder::disabled()),
        );
        let mut span = metrics.span("plan");
        span.record(Stage::Search, Duration::from_micros(500));
        metrics.observe(&span);
        let snap = metrics.registry().snapshot();
        for family in &snap.families {
            for sample in &family.samples {
                if let qsdnn_obs::SampleValue::Histogram(h) = &sample.value {
                    assert_eq!(h.count(), 0, "family {} recorded", family.name);
                }
            }
        }
    }

    #[test]
    fn slow_requests_emit_one_warn_event_with_the_breakdown() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel::<String>();
        qsdnn_obs::log::capture_to(move |line| {
            let _ = tx.send(line.to_string());
        });
        // Threshold 0 disables; threshold 1ms with a span older than that
        // fires exactly once.
        let metrics = test_metrics(1);
        let mut span = metrics.span("plan");
        span.record(Stage::Search, Duration::from_millis(30));
        std::thread::sleep(Duration::from_millis(5));
        metrics.observe(&span);
        qsdnn_obs::log::capture_to_stderr();
        let line = rx.recv_timeout(Duration::from_secs(1)).expect("warn event");
        assert!(line.contains("\"event\":\"slow_request\""), "line: {line}");
        assert!(line.contains("\"kind\":\"plan\""));
        assert!(line.contains("\"search\":30."));
        assert!(rx.try_recv().is_err(), "exactly one event");
    }

    #[test]
    fn trace_info_lists_only_touched_stages_in_order() {
        let metrics = test_metrics(0);
        let mut span = metrics.span("plan");
        span.set_trace(true);
        span.record(Stage::Search, Duration::from_micros(2000));
        span.record(Stage::Parse, Duration::from_micros(50));
        assert!(span.trace_requested());
        let info = span.trace_info();
        let names: Vec<&str> = info.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            ["parse", "search"],
            "pipeline order, zero stages dropped"
        );
        assert!(info.total_ms >= 0.0);
    }
}
