//! The plan-compilation TCP server.
//!
//! One acceptor thread; one lightweight handler thread per connection
//! (connections mostly block on I/O); all search work fans onto the shared
//! [`WorkerPool`]. Plans and profiles are content-addressed in
//! [`PlanCache`]s, so concurrent identical requests coalesce into one
//! search regardless of which connection they arrive on.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qsdnn::engine::{AnalyticalPlatform, CostLut, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn::Portfolio;

use crate::cache::{plan_key, CacheValue, EvictionPolicy, PlanCache};
use crate::pool::WorkerPool;
use crate::portfolio::run_portfolio_parallel;
use crate::protocol::{
    default_episodes, read_message_resumable, write_message, PlanRequest, PlanResponse,
    ProfileRequest, ProfileResponse, Request, Response, SearchRequest, StatsResponse,
    PROTOCOL_VERSION,
};
use crate::ServeError;

/// How long a connection handler blocks in `read` before re-checking the
/// shutdown flag. Bounds both shutdown latency and the join in
/// [`PlanServer::shutdown`].
const HANDLER_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Search worker threads (0 = one per core, clamped to [2, 32]).
    pub threads: usize,
    /// Optional plan spill directory (content-addressed JSON files).
    pub spill_dir: Option<std::path::PathBuf>,
    /// Profiling repeats used when a request passes `repeats == 0`.
    pub profile_repeats: usize,
    /// Default QS-DNN seeds when a request passes no seeds.
    pub default_seeds: Vec<u64>,
    /// Plan/profile cache shards (0 = cache default).
    pub cache_shards: usize,
    /// Eviction policy for both the plan and profile caches.
    pub eviction: EvictionPolicy,
    /// Total resident entries for *each* of the plan and profile caches
    /// (0 = cache default).
    pub cache_max_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            spill_dir: None,
            profile_repeats: 10,
            default_seeds: vec![0x5EED, 0x5EED + 1, 0x5EED + 2],
            cache_shards: 0,
            eviction: EvictionPolicy::Lru,
            cache_max_entries: 0,
        }
    }
}

impl ServerConfig {
    /// Applies the config's shard/eviction/bound knobs to a cache.
    fn configure_cache<T: CacheValue>(&self, mut cache: PlanCache<T>) -> PlanCache<T> {
        cache = cache.with_eviction(self.eviction);
        if self.cache_max_entries > 0 {
            cache = cache.with_max_entries(self.cache_max_entries);
        }
        if self.cache_shards > 0 {
            cache = cache.with_shards(self.cache_shards);
        }
        cache
    }
}

struct ServiceState {
    pool: WorkerPool,
    plans: PlanCache<qsdnn::PortfolioOutcome>,
    profiles: PlanCache<CostLut>,
    config: ServerConfig,
    started: Instant,
    requests: AtomicU64,
    plans_served: AtomicU64,
    shutting_down: AtomicBool,
    /// Live connection-handler threads, joined on shutdown so no handler
    /// outlives the server (each observes `shutting_down` within
    /// [`HANDLER_READ_TIMEOUT`]).
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServiceState {
    fn episodes_for(&self, requested: usize, layers: usize) -> usize {
        if requested == 0 {
            default_episodes(layers)
        } else {
            requested
        }
    }

    fn seeds_for(&self, requested: &[u64]) -> Vec<u64> {
        if requested.is_empty() {
            self.config.default_seeds.clone()
        } else {
            requested.to_vec()
        }
    }

    /// Profiles a zoo network, content-addressed on the request parameters
    /// (the analytical platform is deterministic, so equal parameters give
    /// equal LUTs).
    fn profile(&self, req: &ProfileRequest) -> Result<Arc<CostLut>, ServeError> {
        if req.batch == 0 {
            return Err(ServeError::BadRequest("batch must be >= 1".into()));
        }
        let net = zoo::by_name(&req.network, req.batch)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown network `{}`", req.network)))?;
        let repeats = if req.repeats == 0 {
            self.config.profile_repeats
        } else {
            req.repeats
        };
        let key = {
            use qsdnn::engine::Fnv64;
            let mut h = Fnv64::new();
            h.write_str("qsdnn-profile-v1");
            h.write_str(&req.network);
            h.write_usize(req.batch);
            h.write_str(req.mode.label());
            h.write_usize(repeats);
            format!("{:016x}", h.finish())
        };
        // Profiles are cheap relative to searches but heavily repeated in a
        // busy service; single-flight them too.
        let mode = req.mode;
        let (lut, _) = self.profiles.get_or_compute(&key, || {
            Profiler::with_repeats(AnalyticalPlatform::tx2(), repeats).profile(&net, mode)
        });
        Ok(lut)
    }

    fn run_search(
        &self,
        lut: CostLut,
        objective: Objective,
        episodes: usize,
        seeds: &[u64],
    ) -> Result<PlanResponse, ServeError> {
        if lut.is_empty() {
            return Err(ServeError::BadRequest("LUT has no layers".into()));
        }
        // Search requests carry client-supplied LUTs that bypassed
        // `CostLut::from_parts`; a malformed one must become an error
        // response, not a panicked connection thread.
        lut.validate()
            .map_err(|e| ServeError::BadRequest(format!("invalid LUT: {e}")))?;
        let episodes = self.episodes_for(episodes, lut.len());
        let seeds = self.seeds_for(seeds);
        let portfolio = Portfolio::paper_default(episodes, &seeds);
        let scalarized = lut.with_objective(objective);
        let vanilla_cost_ms = scalarized.cost(&scalarized.vanilla_assignment());
        let key = plan_key(lut.fingerprint(), &objective, portfolio.fingerprint());
        let network = lut.network().to_string();
        let shared = Arc::new(scalarized);
        let (outcome, cache_hit) = {
            let shared = Arc::clone(&shared);
            let portfolio_ref = &portfolio;
            let pool = &self.pool;
            self.plans.get_or_compute(&key, move || {
                run_portfolio_parallel(portfolio_ref, &shared, pool)
                    .expect("portfolio always has applicable members")
            })
        };
        self.plans_served.fetch_add(1, Ordering::Relaxed);
        Ok(PlanResponse {
            network,
            plan_key: key,
            cache_hit,
            best: outcome.best.clone(),
            winner: outcome.winner.clone(),
            members: outcome.members.clone(),
            vanilla_cost_ms,
        })
    }

    fn handle(&self, req: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Ping { version } => {
                if version == PROTOCOL_VERSION {
                    Response::Pong {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    Response::Error {
                        message: format!(
                            "protocol mismatch: client v{version}, server v{PROTOCOL_VERSION}"
                        ),
                    }
                }
            }
            Request::Profile(req) => match self.profile(&req) {
                Ok(lut) => Response::Profile(ProfileResponse {
                    fingerprint: format!("{:016x}", lut.fingerprint()),
                    lut: (*lut).clone(),
                }),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Search(SearchRequest {
                lut,
                objective,
                episodes,
                seeds,
            }) => match self.run_search(lut, objective, episodes, &seeds) {
                Ok(plan) => Response::Plan(plan),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Plan(PlanRequest {
                network,
                batch,
                mode,
                objective,
                episodes,
                seeds,
            }) => {
                let profile_req = ProfileRequest {
                    network,
                    batch,
                    mode,
                    repeats: 0,
                };
                match self
                    .profile(&profile_req)
                    .and_then(|lut| self.run_search((*lut).clone(), objective, episodes, &seeds))
                {
                    Ok(plan) => Response::Plan(plan),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Stats => Response::Stats(StatsResponse {
                version: PROTOCOL_VERSION,
                uptime_ms: self.started.elapsed().as_millis() as u64,
                requests: self.requests.load(Ordering::Relaxed),
                plans: self.plans_served.load(Ordering::Relaxed),
                plan_cache: self.plans.stats(),
                plan_cache_shards: self.plans.shard_stats(),
                profile_cache: self.profiles.stats(),
                profile_cache_shards: self.profiles.shard_stats(),
                workers: self.pool.threads() as u64,
            }),
        }
    }
}

/// A running plan-compilation server.
pub struct PlanServer {
    state: Arc<ServiceState>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl PlanServer {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the spill directory cannot
    /// be created.
    pub fn start(config: ServerConfig) -> Result<PlanServer, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let plans = config.configure_cache(match &config.spill_dir {
            Some(dir) => PlanCache::with_spill_dir(dir)?,
            None => PlanCache::new(),
        });
        let profiles = config.configure_cache(PlanCache::new());
        let pool = if config.threads == 0 {
            WorkerPool::with_default_size()
        } else {
            WorkerPool::new(config.threads)
        };
        let state = Arc::new(ServiceState {
            pool,
            plans,
            profiles,
            config,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            plans_served: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
        });
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("qsdnn-acceptor".into())
            .spawn(move || accept_loop(&listener, &acceptor_state))
            .expect("spawn acceptor");
        Ok(PlanServer {
            state,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the acceptor and joins it, then joins every
    /// connection handler. Handlers blocked in `read` observe the flag
    /// within [`HANDLER_READ_TIMEOUT`], finish any in-flight request and
    /// exit — none outlive this call.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.acceptor.take() {
            self.state.shutting_down.store(true, Ordering::SeqCst);
            // Poke the blocking accept() so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
            let handlers = std::mem::take(&mut *self.state.handlers.lock().expect("handlers lock"));
            for h in handlers {
                let _ = h.join();
            }
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("qsdnn-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_state);
            });
        let Ok(handle) = spawned else { continue };
        let mut handlers = state.handlers.lock().expect("handlers lock");
        // Reap handlers whose connections already closed so a long-lived
        // server doesn't accumulate one JoinHandle per past connection.
        let mut live = Vec::with_capacity(handlers.len() + 1);
        for h in handlers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *handlers = live;
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<ServiceState>) -> Result<(), ServeError> {
    // A bounded read timeout lets the handler re-check `shutting_down`
    // while idle, so `PlanServer::shutdown` can join it instead of leaking
    // a thread blocked in `read` forever.
    stream.set_read_timeout(Some(HANDLER_READ_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut partial = String::new();
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let req: Option<Request> = match read_message_resumable(&mut reader, &mut partial) {
            Ok(r) => r,
            Err(ServeError::Protocol(message)) => {
                // Malformed line: report and keep the connection.
                write_message(&mut writer, &Response::Error { message })?;
                continue;
            }
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle timeout: any half-received line stays in `partial`;
                // loop around to re-check the shutdown flag.
                continue;
            }
            Err(e) => return Err(e),
        };
        let Some(req) = req else { return Ok(()) }; // clean EOF
        let resp = state.handle(req);
        write_message(&mut writer, &resp)?;
    }
}

/// Convenience for tests and examples: a server on an ephemeral localhost
/// port with default settings.
///
/// # Errors
///
/// See [`PlanServer::start`].
pub fn start_local() -> Result<PlanServer, ServeError> {
    PlanServer::start(ServerConfig::default())
}

/// Resolves an address string, preferring the first result.
///
/// # Errors
///
/// Fails when resolution produces no addresses.
pub fn resolve(addr: &str) -> Result<SocketAddr, ServeError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::BadRequest(format!("cannot resolve `{addr}`")))
}
