//! The plan-compilation TCP server.
//!
//! One acceptor thread; one lightweight handler thread per connection
//! (connections mostly block on I/O); all search work fans onto the shared
//! [`WorkerPool`]. Plans and profiles are content-addressed in
//! [`PlanCache`]s, so concurrent identical requests coalesce into one
//! search regardless of which connection they arrive on.
//!
//! # Pipelining
//!
//! A connection handler is a *reader*: it parses frames continuously.
//! Bare (v1) requests are handled inline, one at a time, so their replies
//! stay in order. Tagged (v2) requests are dispatched to a bounded
//! dispatcher thread each, which runs the request — fanning its portfolio
//! onto the shared [`WorkerPool`] — and writes the tagged reply under the
//! connection's write-side mutex whenever it finishes, out of order. The
//! per-connection in-flight cap bounds dispatcher threads and provides
//! backpressure: at the cap the reader simply stops parsing, so TCP flow
//! control pushes back on the client.
//!
//! Dispatchers deliberately do **not** run as [`WorkerPool`] jobs: a
//! request job blocks on its portfolio members, which are themselves pool
//! jobs, so enough concurrent requests would occupy every worker with
//! blocked parents and deadlock the pool (the classic nested-pool trap).

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qsdnn::engine::{
    CostLut, Fnv64, Objective, PlatformRegistry, PlatformSpec, Profiler, ScenarioDescriptor,
};
use qsdnn::nn::zoo;
use qsdnn::{Portfolio, PortfolioOutcome, QTable, TransferMapping};

use qsdnn_obs::{EventKind, FlightRecorder};

use crate::cache::{plan_key_on, warm_plan_key_on, CacheValue, EvictionPolicy, PlanCache};
use crate::exposition::MetricsExposition;
use crate::metrics::{
    families_from_snapshot, kind_index, request_kind, trace_requested, RequestSpan, Stage, KINDS,
};
use crate::pool::{PoolRecorder, WorkerPool};
use crate::portfolio::{run_portfolio_parallel, run_portfolio_parallel_with, WarmStart};
use crate::protocol::{
    default_episodes, encode_binary_frame, encode_body, negotiates_binary, parse_binary_request,
    parse_request_frame, read_binary_frame_resumable, read_line_resumable, write_message, EventMsg,
    EventsResponse, ExemplarMsg, FrameBuffer, MetricsResponse, PlanRequest, PlanResponse,
    PlatformInfo, PlatformsResponse, PostmortemDump, ProfileRequest, ProfileResponse, Request,
    RequestFrame, Response, SearchRequest, StageTiming, StatsResponse, TaggedResponse, TaskMsg,
    TasksResponse, TransferMode, WarmStartInfo, MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use crate::transfer::{ScenarioEntry, ScenarioIndex, DEFAULT_DONOR_CANDIDATES};
use crate::ServeError;

/// How long a connection handler blocks in `read` before re-checking the
/// shutdown flag. Bounds both shutdown latency and the join in
/// [`PlanServer::shutdown`].
const HANDLER_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// First back-off after a transient `accept()` failure (EMFILE & friends).
/// Doubles per consecutive failure up to [`ACCEPT_BACKOFF_MAX`], resets on
/// the next successful accept. Without this, an fd-exhausted acceptor spins
/// at 100% CPU retrying the same doomed `accept()`.
pub(crate) const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);

/// Ceiling on the acceptor back-off; also bounds the extra shutdown
/// latency a backed-off threaded acceptor can add.
pub(crate) const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Cache id carried in cache flight-recorder events (`a` payload).
pub(crate) const CACHE_ID_PLAN: u64 = 0;
/// Cache id of the profile cache in flight-recorder events.
pub(crate) const CACHE_ID_PROFILE: u64 = 1;
/// Pool id carried in `PoolSaturated` events (`a` payload).
pub(crate) const POOL_ID_SEARCH: u64 = 0;
/// Pool id of the epoll dispatcher pool in `PoolSaturated` events.
pub(crate) const POOL_ID_DISPATCH: u64 = 1;

/// Which connection layer carries accept/read/write traffic. Search work
/// always runs on the synchronous [`WorkerPool`] either way — the I/O
/// model only decides how bytes move between sockets and dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One handler thread per connection (the original layer). Fine for
    /// dozens of clients; threads scale O(connections).
    Threads,
    /// A single epoll readiness loop owns every socket (Linux only):
    /// nonblocking reads into per-connection frame buffers, write queues
    /// with partial-write resumption, requests fanned onto a bounded
    /// dispatcher pool. Threads scale O(workers + dispatchers), so
    /// thousands of idle-ish connections cost one loop.
    Epoll,
}

impl IoModel {
    /// Stable lowercase CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            IoModel::Threads => "threads",
            IoModel::Epoll => "epoll",
        }
    }

    /// The default for this build target: `epoll` on Linux, `threads`
    /// elsewhere. The `QSDNN_SERVE_IO` environment variable (values
    /// `threads`/`epoll`) overrides it, which is how CI runs the whole
    /// e2e suite once per connection layer without touching every test.
    ///
    /// # Panics
    ///
    /// On an unparseable `QSDNN_SERVE_IO` value. The variable exists
    /// solely to select the layer under test; silently falling back to
    /// the platform default would run one layer twice while claiming
    /// both-layer coverage.
    pub fn platform_default() -> IoModel {
        if let Ok(v) = std::env::var("QSDNN_SERVE_IO") {
            match v.parse() {
                Ok(io) => return io,
                // LINT-ALLOW(panic-path): process startup, before any
                // listener or connection exists; see `# Panics` above for
                // why silently falling back would fake test coverage.
                Err(e) => panic!("invalid QSDNN_SERVE_IO: {e}"),
            }
        }
        if cfg!(target_os = "linux") {
            IoModel::Epoll
        } else {
            IoModel::Threads
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(IoModel::Threads),
            "epoll" => Ok(IoModel::Epoll),
            other => Err(format!("unknown io model `{other}` (threads|epoll)")),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Default per-connection cap on tagged requests in flight. Matches
/// [`crate::PlanClient`]'s default submission window so a defaulted client
/// never saturates the cap (which would stall the server's reader and,
/// with both TCP buffers full, deadlock a client that writes without
/// reading).
pub const DEFAULT_MAX_IN_FLIGHT: usize = 32;

/// Default slow-request threshold: a request whose end-to-end span
/// exceeds this emits one structured `slow_request` warn event with its
/// per-stage breakdown. `slow_ms: 0` disables the slow log.
pub const DEFAULT_SLOW_MS: u64 = 1000;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Search worker threads (0 = one per core, clamped to [2, 32]).
    pub threads: usize,
    /// Optional plan spill directory (content-addressed JSON files).
    pub spill_dir: Option<std::path::PathBuf>,
    /// Profiling repeats used when a request passes `repeats == 0`.
    pub profile_repeats: usize,
    /// Default QS-DNN seeds when a request passes no seeds.
    pub default_seeds: Vec<u64>,
    /// Plan/profile cache shards (0 = cache default).
    pub cache_shards: usize,
    /// Eviction policy for both the plan and profile caches.
    pub eviction: EvictionPolicy,
    /// Total resident entries for *each* of the plan and profile caches
    /// (0 = cache default).
    pub cache_max_entries: usize,
    /// Per-connection cap on tagged (v2) requests in flight
    /// (0 = [`DEFAULT_MAX_IN_FLIGHT`]).
    pub max_in_flight: usize,
    /// Server-wide scenario-transfer policy. `Off` disables the transfer
    /// index entirely (requests cannot opt back in); `Auto` honors each
    /// request's own `transfer` field.
    pub transfer: TransferMode,
    /// Bound on the scenario-transfer index
    /// (0 = [`crate::transfer::DEFAULT_INDEX_ENTRIES`]).
    pub index_entries: usize,
    /// Connection layer ([`IoModel::platform_default`] by default:
    /// `epoll` on Linux, `threads` elsewhere, `QSDNN_SERVE_IO` overrides).
    pub io: IoModel,
    /// Dispatcher threads for the epoll layer (0 = one per search worker,
    /// at least 4). Dispatchers run whole requests — blocking on cache
    /// single-flight waits and portfolio fan-in — and are deliberately a
    /// *separate* pool from the search workers (the nested-pool trap).
    /// Unused by the threaded layer, which spawns dispatchers per tagged
    /// request.
    pub dispatchers: usize,
    /// Optional Prometheus text-exposition endpoint: `Some(addr)` binds a
    /// tiny HTTP listener serving `GET /metrics` (port 0 picks an
    /// ephemeral port, see [`PlanServer::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// Slow-request threshold in milliseconds
    /// ([`DEFAULT_SLOW_MS`] by default; 0 disables the slow log).
    pub slow_ms: u64,
    /// Whether per-request instrumentation (spans, histograms, gauges)
    /// is recorded at all. On by default; off reduces the hot path to one
    /// branch per stage, for overhead benchmarks.
    pub instrument: bool,
    /// Whether the flight recorder journals events and maintains the live
    /// task table. Always on by default — it exists to explain incidents
    /// nobody predicted; off exists for overhead benchmarks only.
    pub recorder: bool,
    /// Metrics registry for this server's instruments. `None` gives the
    /// server a private registry (the default — concurrent servers in one
    /// process never mix counters); inject one to aggregate or inspect.
    pub registry: Option<Arc<qsdnn_obs::Registry>>,
    /// Default platform for requests that do not name one. Empty keeps the
    /// registry default (`sim-tx2`, the historical behavior); otherwise it
    /// must be a registered name.
    pub platform: String,
    /// Directory of extra platform spec files (`*.json`) merged into the
    /// registry at startup. A malformed or duplicate spec fails startup
    /// with an error naming the offending file.
    pub platform_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            spill_dir: None,
            profile_repeats: 10,
            default_seeds: vec![0x5EED, 0x5EED + 1, 0x5EED + 2],
            cache_shards: 0,
            eviction: EvictionPolicy::Lru,
            cache_max_entries: 0,
            max_in_flight: 0,
            transfer: TransferMode::Auto,
            index_entries: 0,
            io: IoModel::platform_default(),
            dispatchers: 0,
            metrics_addr: None,
            slow_ms: DEFAULT_SLOW_MS,
            instrument: true,
            recorder: true,
            registry: None,
            platform: String::new(),
            platform_dir: None,
        }
    }
}

impl ServerConfig {
    /// Applies the config's shard/eviction/bound knobs to a cache.
    fn configure_cache<T: CacheValue>(&self, mut cache: PlanCache<T>) -> PlanCache<T> {
        cache = cache.with_eviction(self.eviction);
        if self.cache_max_entries > 0 {
            cache = cache.with_max_entries(self.cache_max_entries);
        }
        if self.cache_shards > 0 {
            cache = cache.with_shards(self.cache_shards);
        }
        cache
    }

    /// The effective per-connection in-flight cap (always ≥ 1).
    pub(crate) fn in_flight_cap(&self) -> usize {
        if self.max_in_flight == 0 {
            DEFAULT_MAX_IN_FLIGHT
        } else {
            self.max_in_flight
        }
    }

    /// The effective epoll dispatcher-pool size, given the search pool.
    pub(crate) fn dispatcher_count(&self, workers: usize) -> usize {
        if self.dispatchers == 0 {
            workers.max(4)
        } else {
            self.dispatchers
        }
    }
}

pub(crate) struct ServiceState {
    pub(crate) pool: WorkerPool,
    /// Spans, histograms and gauges for this server (its own registry).
    pub(crate) metrics: crate::metrics::ServeMetrics,
    plans: PlanCache<qsdnn::PortfolioOutcome>,
    profiles: PlanCache<CostLut>,
    /// Scenario-transfer index, maintained alongside plan-cache inserts
    /// and consulted on plan-cache misses (unless transfer is off).
    index: ScenarioIndex,
    /// Every platform this server can profile and compile for: the
    /// built-ins plus any specs loaded from `config.platform_dir`.
    platforms: PlatformRegistry,
    pub(crate) config: ServerConfig,
    started: Instant,
    requests: AtomicU64,
    plans_served: AtomicU64,
    /// Plan requests answered via scenario transfer (fresh or cached warm).
    transfer_hits: AtomicU64,
    /// Fresh warm-started portfolio searches executed.
    warm_starts: AtomicU64,
    /// `(sum, count)` of donor distances over transfer hits.
    donor_distance: Mutex<(f64, u64)>,
    /// Tagged (v2) requests dispatched.
    pub(crate) pipelined: AtomicU64,
    /// Highest per-connection in-flight depth observed.
    in_flight_peak: AtomicU64,
    /// Transient `accept()` failures; each one backs the acceptor off.
    pub(crate) accept_errors: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
    /// Live connection-handler threads, joined on shutdown so no handler
    /// outlives the server (each observes `shutting_down` within
    /// [`HANDLER_READ_TIMEOUT`]).
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Request-level memo for the zoo-plan hot path: a cheap fingerprint
    /// of the request parameters → the derived plan key plus the response
    /// scalars no cache entry carries. A repeat scenario skips the
    /// per-request LUT clone, re-scalarization and full-LUT fingerprint
    /// and goes straight to the plan-cache peek; a memo hit whose plan
    /// was evicted falls back to the full path, which re-primes it.
    hot_plans: Mutex<HashMap<u64, HotPlan>>,
}

/// What a hot-path plan hit needs beyond the cached [`PortfolioOutcome`].
/// Every field is a pure function of the memo key's inputs (the profiled
/// LUT is deterministic in the request parameters), so entries never go
/// stale — only the plan cache's residency is checked per hit.
#[derive(Clone)]
struct HotPlan {
    plan_key: String,
    network: String,
    vanilla_cost_ms: f64,
}

/// Bound on the hot-plan memo: at the cap the table is flushed wholesale
/// (no LRU bookkeeping on the hot path) and re-learns the live working
/// set in one round of full-path requests.
const HOT_PLAN_MEMO_CAP: usize = 4096;

impl ServiceState {
    pub(crate) fn new(config: ServerConfig) -> Result<Arc<ServiceState>, ServeError> {
        // The recorder exists before everything it observes: caches, pool
        // and metrics all take their handle at construction.
        let recorder = Arc::new(FlightRecorder::new(config.recorder));
        let plans = config
            .configure_cache(match &config.spill_dir {
                Some(dir) => PlanCache::with_spill_dir(dir)?,
                None => PlanCache::new(),
            })
            .with_recorder(Arc::clone(&recorder), CACHE_ID_PLAN);
        let profiles = config
            .configure_cache(PlanCache::new())
            .with_recorder(Arc::clone(&recorder), CACHE_ID_PROFILE);
        let index_entries = if config.index_entries == 0 {
            crate::transfer::DEFAULT_INDEX_ENTRIES
        } else {
            config.index_entries
        };
        // The index nests inside the spill dir so scenario knowledge has
        // the same lifetime as the plans it points at. A transfer-disabled
        // server never consults or populates it, so it skips the disk
        // reload entirely (any `scenarios/` dir from a previous
        // transfer-enabled life is left untouched for the next one).
        let index = match &config.spill_dir {
            Some(dir) if config.transfer == TransferMode::Auto => {
                ScenarioIndex::with_dir(dir.join("scenarios"), index_entries)?
            }
            _ => ScenarioIndex::new(index_entries),
        };
        // The registry is fixed at startup: a bad spec file or an unknown
        // default platform is a configuration error the operator must see,
        // not something to paper over at request time.
        let mut platforms = PlatformRegistry::builtin();
        if let Some(dir) = &config.platform_dir {
            platforms
                .load_dir(dir)
                .map_err(|e| ServeError::Config(e.to_string()))?;
        }
        if !config.platform.is_empty() {
            platforms
                .set_default(&config.platform)
                .map_err(|e| ServeError::Config(e.to_string()))?;
        }
        // Instruments exist before the pool so the search workers can
        // carry the pool gauges from their first job.
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::new(qsdnn_obs::Registry::new()));
        let metrics = crate::metrics::ServeMetrics::new(
            config.instrument,
            config.slow_ms,
            registry,
            Arc::clone(&recorder),
        );
        let threads = if config.threads == 0 {
            // Mirrors `WorkerPool::with_default_size`.
            std::thread::available_parallelism()
                .map_or(4, usize::from)
                .clamp(2, 32)
        } else {
            config.threads
        };
        let pool = WorkerPool::named_observed(
            "qsdnn-worker",
            threads,
            config.instrument.then(|| metrics.search_pool.clone()),
            recorder.enabled().then(|| PoolRecorder {
                recorder: Arc::clone(&recorder),
                task_kind: crate::metrics::TASK_KIND_SEARCH_JOB,
                pool_id: POOL_ID_SEARCH,
                saturation_threshold: (threads * 2) as i64,
            }),
        );
        Ok(Arc::new(ServiceState {
            pool,
            metrics,
            plans,
            profiles,
            index,
            platforms,
            config,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            plans_served: AtomicU64::new(0),
            transfer_hits: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            donor_distance: Mutex::new((0.0, 0)),
            pipelined: AtomicU64::new(0),
            in_flight_peak: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            handlers: Mutex::new(Vec::new()),
            hot_plans: Mutex::new(HashMap::new()),
        }))
    }

    fn episodes_for(&self, requested: usize, layers: usize) -> usize {
        if requested == 0 {
            default_episodes(layers)
        } else {
            requested
        }
    }

    fn seeds_for(&self, requested: &[u64]) -> Vec<u64> {
        if requested.is_empty() {
            self.config.default_seeds.clone()
        } else {
            requested.to_vec()
        }
    }

    /// Resolves a request's `platform` field against the registry.
    ///
    /// The returned flag says whether the request *engaged* a non-default
    /// target: only engaged requests get a platform component in their
    /// cache keys and scenario descriptors, so requests resolving to the
    /// registry default (`sim-tx2`) — whether by naming it or by omission
    /// — keep their historical, pre-registry identities. The flag keys off
    /// [`PlatformRegistry::DEFAULT`], not the server's configured default:
    /// a server whose default *is* another platform must address its plans
    /// under that platform, not under sim-tx2's addresses.
    fn platform_for(&self, requested: &str) -> Result<(&PlatformSpec, bool), ServeError> {
        let spec = self
            .platforms
            .resolve(requested)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Ok((spec, spec.name != PlatformRegistry::DEFAULT))
    }

    /// Profiles a zoo network, content-addressed on the request parameters
    /// (the analytical platform is deterministic, so equal parameters give
    /// equal LUTs).
    fn profile(&self, req: &ProfileRequest) -> Result<Arc<CostLut>, ServeError> {
        self.task_stage(Stage::Profile);
        if req.batch == 0 {
            return Err(ServeError::BadRequest("batch must be >= 1".into()));
        }
        let (spec, engaged) = self.platform_for(&req.platform)?;
        if !spec.supports(req.mode) {
            return Err(ServeError::BadRequest(format!(
                "platform `{}` has no GPU; mode `{}` is unavailable on it",
                spec.name,
                req.mode.label()
            )));
        }
        let net = zoo::by_name(&req.network, req.batch)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown network `{}`", req.network)))?;
        let repeats = if req.repeats == 0 {
            self.config.profile_repeats
        } else {
            req.repeats
        };
        let key = {
            let mut h = Fnv64::new();
            h.write_str("qsdnn-profile-v1");
            h.write_str(&req.network);
            h.write_usize(req.batch);
            h.write_str(req.mode.label());
            h.write_usize(repeats);
            if engaged {
                h.write_str("platform");
                h.write_str(&spec.name);
                h.write_u64(spec.fingerprint());
            }
            format!("{:016x}", h.finish())
        };
        // Profiles are cheap relative to searches but heavily repeated in a
        // busy service; single-flight them too.
        let mode = req.mode;
        let platform = self.platforms.instantiate(spec);
        let (lut, _) = self.profiles.get_or_compute(&key, move || {
            Profiler::with_repeats(platform, repeats).profile(&net, mode)
        });
        Ok(lut)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_search(
        &self,
        lut: CostLut,
        objective: Objective,
        episodes: usize,
        seeds: &[u64],
        transfer: TransferMode,
        batch: usize,
        platform: &str,
        span: &mut RequestSpan,
    ) -> Result<PlanResponse, ServeError> {
        if lut.is_empty() {
            return Err(ServeError::BadRequest("LUT has no layers".into()));
        }
        // Search requests carry client-supplied LUTs that bypassed
        // `CostLut::from_parts`; a malformed one must become an error
        // response, not a panicked connection thread.
        lut.validate()
            .map_err(|e| ServeError::BadRequest(format!("invalid LUT: {e}")))?;
        // Engaged platforms join the plan's cache identity and its
        // scenario descriptor; the default platform stays absent from
        // both, so pre-registry addresses are preserved.
        let (spec, engaged) = self.platform_for(platform)?;
        let platform = engaged.then_some(spec);
        let episodes = self.episodes_for(episodes, lut.len());
        let seeds = self.seeds_for(seeds);
        let portfolio = Portfolio::paper_default(episodes, &seeds);
        // Everything below is cache/index work except the portfolio runs
        // inside `compute_cold`/`compute_warm`, which record the `search`
        // stage themselves; the remainder is the `cache` stage.
        let cache_start = Instant::now();
        self.task_stage(Stage::Cache);
        let search_before = span.stage_total(Stage::Search);
        // Transfer needs both opt-ins: the server policy and the request.
        let result = if self.config.transfer == TransferMode::Auto && transfer == TransferMode::Auto
        {
            self.search_with_transfer(&portfolio, lut, objective, batch, platform, span)
        } else {
            self.search_with(&portfolio, lut, objective, platform, span)
        };
        if span.is_active() {
            let searched = span.stage_total(Stage::Search) - search_before;
            span.record(Stage::Cache, cache_start.elapsed().saturating_sub(searched));
        }
        result
    }

    fn plan_response(
        &self,
        lut: &CostLut,
        plan_key: String,
        cache_hit: bool,
        outcome: &PortfolioOutcome,
        vanilla_cost_ms: f64,
        warm_start: Option<WarmStartInfo>,
    ) -> PlanResponse {
        self.plans_served.fetch_add(1, Ordering::Relaxed);
        PlanResponse {
            network: lut.network().to_string(),
            plan_key,
            cache_hit,
            best: outcome.best.clone(),
            winner: outcome.winner.clone(),
            members: outcome.members.clone(),
            vanilla_cost_ms,
            warm_start,
            trace: None,
        }
    }

    /// A cheap, pure fingerprint of everything that determines a zoo plan
    /// request's plan key and response scalars. The profiled LUT is a
    /// deterministic function of (network, batch, mode, platform) — the
    /// profile cache is content-addressed on exactly those — and the
    /// portfolio of (episodes, seeds), so hashing the *inputs* is
    /// equivalent to hashing the derived artifacts, without the full LUT
    /// walk [`CostLut::fingerprint`] costs per request.
    fn hot_plan_memo_key(
        &self,
        profile_req: &ProfileRequest,
        objective: &Objective,
        episodes: usize,
        seeds: &[u64],
        lut: &CostLut,
    ) -> Option<u64> {
        let (spec, engaged) = self.platform_for(&profile_req.platform).ok()?;
        let mut h = Fnv64::new();
        h.write_str("qsdnn-hot-plan-v1");
        h.write_str(&profile_req.network);
        h.write_usize(profile_req.batch);
        h.write_str(profile_req.mode.label());
        objective.fingerprint_into(&mut h);
        h.write_usize(self.episodes_for(episodes, lut.len()));
        let seeds = if seeds.is_empty() {
            &self.config.default_seeds[..]
        } else {
            seeds
        };
        h.write_usize(seeds.len());
        for &seed in seeds {
            h.write_u64(seed);
        }
        if engaged {
            h.write_str("platform");
            h.write_str(&spec.name);
            h.write_u64(spec.fingerprint());
        }
        Some(h.finish())
    }

    /// Answers a repeat zoo-plan scenario straight from the plan cache:
    /// a memo lookup, a counted [`PlanCache::peek`] and the response
    /// build — no LUT clone, no re-scalarization, no full-LUT hash.
    /// Returns `None` when the scenario is new or its plan has been
    /// evicted; the caller then takes the full path, whose successful
    /// response re-primes the memo. The response is field-for-field what
    /// the full path builds for the same cache hit, so the two paths are
    /// indistinguishable on the wire.
    fn hot_plan_hit(&self, memo_key: u64, span: &mut RequestSpan) -> Option<PlanResponse> {
        let hot = {
            let memo = self
                .hot_plans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            memo.get(&memo_key).cloned()
        }?;
        let cache_start = Instant::now();
        self.task_stage(Stage::Cache);
        let outcome = self.plans.peek(&hot.plan_key)?;
        self.task_key_hex(&hot.plan_key);
        self.plans_served.fetch_add(1, Ordering::Relaxed);
        let response = PlanResponse {
            network: hot.network,
            plan_key: hot.plan_key,
            cache_hit: true,
            best: outcome.best.clone(),
            winner: outcome.winner.clone(),
            members: outcome.members.clone(),
            vanilla_cost_ms: hot.vanilla_cost_ms,
            warm_start: None,
            trace: None,
        };
        if span.is_active() {
            span.record(Stage::Cache, cache_start.elapsed());
        }
        Some(response)
    }

    /// Primes the hot-plan memo from a full-path response. Warm-started
    /// responses never register: their plans live under warm keys whose
    /// reuse is the scenario index's decision, not a memo shortcut's.
    fn remember_hot_plan(&self, memo_key: u64, response: &PlanResponse) {
        if response.warm_start.is_some() {
            return;
        }
        let mut memo = self
            .hot_plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if memo.len() >= HOT_PLAN_MEMO_CAP {
            memo.clear();
        }
        memo.insert(
            memo_key,
            HotPlan {
                plan_key: response.plan_key.clone(),
                network: response.network.clone(),
                vanilla_cost_ms: response.vanilla_cost_ms,
            },
        );
    }

    /// The cold compute: `portfolio` on `shared` under `key`, single-flight
    /// in the plan cache. A portfolio with no applicable member (or whose
    /// every member panicked) is a request-level error — it must answer
    /// the request, not unwind through the connection handler — and is
    /// never cached.
    fn compute_cold(
        &self,
        portfolio: &Portfolio,
        lut: &CostLut,
        shared: &Arc<CostLut>,
        vanilla_cost_ms: f64,
        key: String,
        span: &mut RequestSpan,
    ) -> Result<PlanResponse, ServeError> {
        let network = lut.network().to_string();
        self.task_key_hex(&key);
        // The compute closure runs on this thread (single-flight), so a
        // Cell smuggles the search wall time out to the span; a cache hit
        // never runs it and records zero search.
        let search_time = std::cell::Cell::new(Duration::ZERO);
        let (outcome, cache_hit) = {
            let shared = Arc::clone(shared);
            let pool = &self.pool;
            let search_time = &search_time;
            let rec = Arc::clone(self.metrics.recorder());
            self.plans.try_get_or_compute(&key, move || {
                if rec.enabled() {
                    rec.task_stage(Stage::Search as u16 + 1);
                }
                let search_start = Instant::now();
                let outcome = run_portfolio_parallel(portfolio, &shared, pool);
                search_time.set(search_start.elapsed());
                outcome.ok_or_else(|| {
                    ServeError::Search(format!(
                        "no portfolio member produced a plan for `{network}` \
                         (every member was inapplicable or failed)"
                    ))
                })
            })?
        };
        span.record(Stage::Search, search_time.get());
        Ok(self.plan_response(lut, key, cache_hit, &outcome, vanilla_cost_ms, None))
    }

    /// Runs `portfolio` on a validated LUT with transfer off — the exact
    /// pre-transfer code path: byte-identical keys, cache behavior and
    /// responses.
    fn search_with(
        &self,
        portfolio: &Portfolio,
        lut: CostLut,
        objective: Objective,
        platform: Option<&PlatformSpec>,
        span: &mut RequestSpan,
    ) -> Result<PlanResponse, ServeError> {
        let scalarized = lut.with_objective(objective);
        let vanilla_cost_ms = scalarized.cost(&scalarized.vanilla_assignment());
        let key = plan_key_on(
            lut.fingerprint(),
            &objective,
            portfolio.fingerprint(),
            platform.map(|s| (s.name.as_str(), s.fingerprint())),
        );
        let shared = Arc::new(scalarized);
        self.compute_cold(portfolio, &lut, &shared, vanilla_cost_ms, key, span)
    }

    /// The transfer-aware plan path:
    ///
    /// 1. exact content-address hit (same key as the transfer-off path);
    /// 2. same-scenario hit via the index — a repeated warm scenario's
    ///    plan lives under a warm key only the index knows;
    /// 3. plan-cache miss: warm-start from the nearest usable cached
    ///    scenario (fetchable plan, non-empty transfer mapping);
    /// 4. no usable donor: cold search under the exact key, identical to
    ///    the transfer-off path.
    ///
    /// Every successful outcome (re-)registers this scenario in the index
    /// so future neighbors can warm-start from it.
    fn search_with_transfer(
        &self,
        portfolio: &Portfolio,
        lut: CostLut,
        objective: Objective,
        batch: usize,
        platform: Option<&PlatformSpec>,
        span: &mut RequestSpan,
    ) -> Result<PlanResponse, ServeError> {
        let scalarized = lut.with_objective(objective);
        let vanilla_cost_ms = scalarized.cost(&scalarized.vanilla_assignment());
        let pin = platform.map(|s| (s.name.as_str(), s.fingerprint()));
        let base_key = plan_key_on(lut.fingerprint(), &objective, portfolio.fingerprint(), pin);
        // An engaged platform adds its feature vector to the descriptor,
        // so the platform term of the scenario distance measures genuine
        // spec divergence instead of the flat mismatch penalty —
        // cross-platform neighbors become usable donors.
        let describe = |scalarized: &CostLut| {
            let mut d = ScenarioDescriptor::of(scalarized)
                .with_batch(batch)
                .with_objective(&objective);
            if let Some(spec) = platform {
                d = d.with_platform_features(spec.features());
            }
            d
        };

        if let Some(outcome) = self.plans.peek(&base_key) {
            // Register the scenario on *first* sight only: re-inserting on
            // every repeated hit would re-extract the descriptor and
            // re-serialize it to the index's disk file per request.
            if self.index.lookup(&base_key).is_none() {
                let descriptor = describe(&scalarized);
                self.index
                    .insert(descriptor, base_key.clone(), base_key.clone(), None);
            }
            return Ok(self.plan_response(&lut, base_key, true, &outcome, vanilla_cost_ms, None));
        }
        let descriptor = describe(&scalarized);
        if let Some(entry) = self.index.lookup(&base_key) {
            // The exact-key peek above already failed, so a plan_key equal
            // to base_key means the plan is not fetchable right now.
            let cached = if entry.plan_key == base_key {
                None
            } else {
                self.plans.peek(&entry.plan_key)
            };
            match cached {
                Some(outcome) => {
                    if let Some(info) = &entry.warm_start {
                        self.note_transfer(info.donor_distance);
                    }
                    return Ok(self.plan_response(
                        &lut,
                        entry.plan_key.clone(),
                        true,
                        &outcome,
                        vanilla_cost_ms,
                        entry.warm_start,
                    ));
                }
                // Drop the entry only when its plan is definitively gone
                // from both tiers — a plan merely being recomputed (an
                // in-flight slot reads as a peek miss) keeps its index
                // entry for future donors.
                None if !self.plans.is_pending(&entry.plan_key) => {
                    self.index.remove(&entry.plan_key);
                }
                None => {}
            }
        }
        let shared = Arc::new(scalarized);
        for (entry, distance) in
            self.index
                .nearest(&descriptor, &base_key, DEFAULT_DONOR_CANDIDATES)
        {
            // Donor fetches are internal work, not answered requests:
            // `peek_quiet` keeps the cache's request counters honest.
            let Some(donor_outcome) = self.plans.peek_quiet(&entry.plan_key) else {
                if self.plans.is_pending(&entry.plan_key) {
                    // Mid-recompute; unusable this round but not stale.
                    continue;
                }
                // Gone from memory *and* disk: the index entry is stale
                // (eviction coupling with the cache).
                self.index.remove(&entry.plan_key);
                continue;
            };
            let mapping = TransferMapping::between(&entry.descriptor, &descriptor);
            if mapping.is_empty() {
                continue;
            }
            let Some(donor) = donor_qtable(&entry, &donor_outcome) else {
                continue;
            };
            // A structurally non-empty mapping can still transfer nothing
            // when the donor's *visited* states (its best path) miss the
            // mapped candidates; the members would then silently fall
            // back to the full cold search and the warm key, counters and
            // provenance would all lie. Replicate the members'
            // deterministic seeding once up front and skip such donors.
            if QTable::new(&shared).transfer_from(&donor, &mapping) == 0 {
                continue;
            }
            return self.compute_warm(
                portfolio,
                &lut,
                &objective,
                &shared,
                vanilla_cost_ms,
                descriptor,
                base_key,
                pin,
                entry,
                distance,
                donor,
                mapping,
                span,
            );
        }
        let response = self.compute_cold(
            portfolio,
            &lut,
            &shared,
            vanilla_cost_ms,
            base_key.clone(),
            span,
        )?;
        self.index
            .insert(descriptor, base_key, response.plan_key.clone(), None);
        Ok(response)
    }

    /// Warm-started compute under a donor-specific warm key — a warm plan
    /// never shares a cache key with the cold plan for the same scenario.
    #[allow(clippy::too_many_arguments)]
    fn compute_warm(
        &self,
        portfolio: &Portfolio,
        lut: &CostLut,
        objective: &Objective,
        shared: &Arc<CostLut>,
        vanilla_cost_ms: f64,
        descriptor: ScenarioDescriptor,
        base_key: String,
        pin: Option<(&str, u64)>,
        entry: ScenarioEntry,
        distance: f64,
        donor: QTable,
        mapping: TransferMapping,
        span: &mut RequestSpan,
    ) -> Result<PlanResponse, ServeError> {
        let warm_portfolio = portfolio.warmed();
        let warm_key = warm_plan_key_on(
            lut.fingerprint(),
            objective,
            warm_portfolio.fingerprint(),
            &entry.plan_key,
            pin,
        );
        let transferred_states = mapping.mapped_states();
        let warm = Arc::new(WarmStart { donor, mapping });
        let network = lut.network().to_string();
        self.task_key_hex(&warm_key);
        {
            // Journal which donor won and how far away it was; distance is
            // packed as microunits so the fixed-width event holds it.
            let rec = self.metrics.recorder();
            if rec.enabled() {
                rec.emit(
                    EventKind::TransferDonor,
                    u64::from_str_radix(&entry.plan_key, 16).unwrap_or(0),
                    (distance * 1e6) as u64,
                    transferred_states as u64,
                );
            }
        }
        let search_time = std::cell::Cell::new(Duration::ZERO);
        let (outcome, cache_hit) = {
            let shared = Arc::clone(shared);
            let warm = Arc::clone(&warm);
            let pool = &self.pool;
            let search_time = &search_time;
            let rec = Arc::clone(self.metrics.recorder());
            self.plans.try_get_or_compute(&warm_key, move || {
                if rec.enabled() {
                    rec.task_stage(Stage::Search as u16 + 1);
                }
                let search_start = Instant::now();
                let outcome =
                    run_portfolio_parallel_with(&warm_portfolio, &shared, pool, Some(&warm));
                search_time.set(search_start.elapsed());
                outcome.ok_or_else(|| {
                    ServeError::Search(format!(
                        "no portfolio member produced a plan for `{network}` \
                         (every member was inapplicable or failed)"
                    ))
                })
            })?
        };
        span.record(Stage::Search, search_time.get());
        if !cache_hit {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        self.note_transfer(distance);
        // Report the episodes the warm QS-DNN members actually ran — they
        // fall back to the cold budget when the donor's visited states do
        // not reach this scenario's candidates.
        let episodes = outcome
            .members
            .iter()
            .filter(|m| m.label.starts_with("qs-dnn"))
            .map(|m| m.episodes)
            .max()
            .unwrap_or(0);
        let info = WarmStartInfo {
            donor_key: entry.plan_key,
            donor_network: entry.descriptor.network.clone(),
            donor_distance: distance,
            transferred_states,
            episodes,
        };
        self.index
            .insert(descriptor, base_key, warm_key.clone(), Some(info.clone()));
        Ok(self.plan_response(
            lut,
            warm_key,
            cache_hit,
            &outcome,
            vanilla_cost_ms,
            Some(info),
        ))
    }

    fn note_transfer(&self, distance: f64) {
        self.transfer_hits.fetch_add(1, Ordering::Relaxed);
        let mut acc = self
            .donor_distance
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        acc.0 += distance;
        acc.1 += 1;
    }

    fn handle(&self, req: Request, span: &mut RequestSpan) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Ping { version } => {
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    Response::Pong {
                        version: PROTOCOL_VERSION,
                    }
                } else {
                    Response::Error {
                        message: format!(
                            "protocol mismatch: client v{version}, server speaks \
                             v{MIN_PROTOCOL_VERSION}..=v{PROTOCOL_VERSION}"
                        ),
                    }
                }
            }
            Request::Profile(req) => match span.time(Stage::Profile, || self.profile(&req)) {
                Ok(lut) => Response::Profile(ProfileResponse {
                    fingerprint: format!("{:016x}", lut.fingerprint()),
                    lut: (*lut).clone(),
                }),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Search(SearchRequest {
                lut,
                objective,
                episodes,
                seeds,
                transfer,
                trace: _,
                platform,
            }) => {
                // A client-supplied LUT carries no batch; the descriptor
                // records it as unknown.
                match self.run_search(
                    lut, objective, episodes, &seeds, transfer, 0, &platform, span,
                ) {
                    Ok(plan) => Response::Plan(plan),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Plan(PlanRequest {
                network,
                batch,
                mode,
                objective,
                episodes,
                seeds,
                transfer,
                trace: _,
                platform,
            }) => {
                let profile_req = ProfileRequest {
                    network,
                    batch,
                    mode,
                    repeats: 0,
                    platform: platform.clone(),
                };
                match span
                    .time(Stage::Profile, || self.profile(&profile_req))
                    .and_then(|lut| {
                        // Transfer-off scenarios get the memoized fast
                        // path; anything transfer-eligible keeps the full
                        // path (the scenario index has registration side
                        // effects a memo shortcut must not skip).
                        let transfer_off = !(self.config.transfer == TransferMode::Auto
                            && transfer == TransferMode::Auto);
                        let memo_key = if transfer_off {
                            self.hot_plan_memo_key(&profile_req, &objective, episodes, &seeds, &lut)
                        } else {
                            None
                        };
                        if let Some(key) = memo_key {
                            if let Some(plan) = self.hot_plan_hit(key, span) {
                                return Ok(plan);
                            }
                        }
                        let plan = self.run_search(
                            (*lut).clone(),
                            objective,
                            episodes,
                            &seeds,
                            transfer,
                            batch,
                            &platform,
                            span,
                        )?;
                        if let Some(key) = memo_key {
                            self.remember_hot_plan(key, &plan);
                        }
                        Ok(plan)
                    }) {
                    Ok(plan) => Response::Plan(plan),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Events => Response::Events(self.events_response()),
            Request::Tasks => Response::Tasks(self.tasks_response()),
            Request::Platforms => Response::Platforms(PlatformsResponse {
                platforms: self
                    .platforms
                    .specs()
                    .map(|spec| PlatformInfo {
                        name: spec.name.clone(),
                        kind: spec.kind.label().to_string(),
                        description: spec.description.clone(),
                        fingerprint: format!("{:016x}", spec.fingerprint()),
                        is_default: spec.name == self.platforms.default_name(),
                        gpu: spec.gpu.is_some(),
                    })
                    .collect(),
            }),
            Request::Metrics => Response::Metrics(self.metrics_response()),
            Request::Stats => Response::Stats(StatsResponse {
                version: PROTOCOL_VERSION,
                uptime_ms: self.uptime_ms(),
                requests: self.requests.load(Ordering::Relaxed),
                plans: self.plans_served.load(Ordering::Relaxed),
                plan_cache: self.plans.stats(),
                plan_cache_shards: self.plans.shard_stats(),
                profile_cache: self.profiles.stats(),
                profile_cache_shards: self.profiles.shard_stats(),
                workers: self.pool.threads() as u64,
                pipelined: self.pipelined.load(Ordering::Relaxed),
                in_flight_peak: self.in_flight_peak.load(Ordering::Relaxed),
                max_in_flight: self.config.in_flight_cap() as u64,
                transfer: self.config.transfer,
                transfer_hits: self.transfer_hits.load(Ordering::Relaxed),
                warm_starts: self.warm_starts.load(Ordering::Relaxed),
                mean_donor_distance: {
                    let (sum, n) = *self
                        .donor_distance
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if n == 0 {
                        0.0
                    } else {
                        sum / n as f64
                    }
                },
                index_entries: self.index.len() as u64,
                accept_errors: self.accept_errors.load(Ordering::Relaxed),
            }),
        }
    }

    /// [`ServiceState::handle`] with a panic firewall: a handler bug
    /// answers the request with an error instead of unwinding through the
    /// connection (v1) or silently leaking an in-flight permit (v2).
    /// Opens, observes and closes its own span; the connection layers
    /// carry a span across threads via [`ServiceState::dispatch_spanned`],
    /// so this wrapper serves direct callers (tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn dispatch(&self, req: Request) -> Response {
        let mut span = self.metrics.span(request_kind(&req));
        let resp = self.dispatch_spanned(req, &mut span);
        self.metrics.observe(&span);
        resp
    }

    /// [`ServiceState::dispatch`] recording into a caller-owned span; the
    /// caller keeps timing serialize/write stages and observes the span.
    /// When the request asked for a trace echo, the plan response carries
    /// the stages recorded so far.
    pub(crate) fn dispatch_spanned(&self, req: Request, span: &mut RequestSpan) -> Response {
        span.set_kind(request_kind(&req));
        span.set_trace(trace_requested(&req));
        // The request scope tags every event this thread journals while
        // handling — cache hits, donor picks — with the request's serial,
        // and the task-table entry is what `tasks` reports as "doing now".
        let recorder = Arc::clone(self.metrics.recorder());
        let _scope = recorder.begin_request(span.serial());
        if recorder.enabled() && span.serial() != 0 {
            let kind = kind_index(span.kind());
            recorder.request_begin(span.serial(), kind as u16);
        }
        let result = {
            let handler_span = &mut *span;
            catch_unwind(AssertUnwindSafe(move || self.handle(req, handler_span)))
        };
        let mut resp = match result {
            Ok(resp) => resp,
            Err(panic) => {
                // Journal the panic and snapshot the request's events as
                // an exemplar before answering: the wreckage is exactly
                // what a post-mortem needs.
                self.metrics.capture_panic(span);
                let reason = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Response::Error {
                    message: format!("internal error: request handler panicked: {reason}"),
                }
            }
        };
        if let Response::Plan(plan) = &resp {
            // Plan keys are 16 hex chars; packed, the span (and through it
            // the slow-request exemplar) names the actual plan served.
            let key = u64::from_str_radix(&plan.plan_key, 16).unwrap_or(0);
            span.set_key(key);
            if recorder.enabled() {
                recorder.task_key(key);
            }
        }
        recorder.task_clear();
        if span.trace_requested() {
            if let Response::Plan(plan) = &mut resp {
                plan.trace = Some(span.trace_info());
            }
        }
        resp
    }

    /// Serializes `resp` into a binary-codec (protocol v3) body, riding
    /// the plan cache's preserialized-body slot when the response is an
    /// eligible cache hit: the first such hit pays one encode and
    /// attaches the bytes to the entry; every later hit is a lookup plus
    /// a memcpy into the frame — zero re-encoding.
    ///
    /// Eligibility is deliberately narrow: `cache_hit` with neither a
    /// trace echo nor warm-start info, because those two fields are
    /// per-request (span timings; donor distance from the *requester's*
    /// descriptor) while everything else in a hit response is a pure
    /// function of the plan key.
    pub(crate) fn render_binary_body(&self, resp: &Response) -> Result<Arc<Vec<u8>>, ServeError> {
        if let Response::Plan(plan) = resp {
            if plan.cache_hit && plan.trace.is_none() && plan.warm_start.is_none() {
                if let Some(body) = self.plans.wire_body(&plan.plan_key) {
                    return Ok(body);
                }
                let body = Arc::new(encode_body(resp)?);
                // Best-effort: if the entry was evicted between the hit
                // and here, the attach is a no-op and the next residency
                // rebuilds the body — never a stale one.
                self.plans
                    .attach_wire_body(&plan.plan_key, Arc::clone(&body));
                return Ok(body);
            }
        }
        Ok(Arc::new(encode_body(resp)?))
    }

    /// [`ServiceState::render_binary_body`] wrapped in a frame header,
    /// ready for the socket. Infallible from the caller's view: a codec
    /// failure (unreachable for well-formed responses — guarded depths
    /// and `u32` lengths) degrades to an error frame naming it.
    pub(crate) fn render_binary_frame(&self, id: Option<u64>, resp: &Response) -> Vec<u8> {
        match self
            .render_binary_body(resp)
            .and_then(|body| encode_binary_frame(id, &body))
        {
            Ok(frame) => frame,
            Err(e) => crate::protocol::binary_error_frame(id, &e.to_string()),
        }
    }

    /// Publishes the stage this thread's task-table entry is in.
    fn task_stage(&self, stage: Stage) {
        let rec = self.metrics.recorder();
        if rec.enabled() {
            rec.task_stage(stage as u16 + 1);
        }
    }

    /// Publishes the plan key this thread's task-table entry works under.
    fn task_key_hex(&self, key: &str) {
        let rec = self.metrics.recorder();
        if rec.enabled() {
            rec.task_key(u64::from_str_radix(key, 16).unwrap_or(0));
        }
    }

    /// The `events` wire reply: full ring dump plus retained exemplars.
    fn events_response(&self) -> EventsResponse {
        let rec = self.metrics.recorder();
        EventsResponse {
            recorder_enabled: rec.enabled(),
            events_total: rec.events_total(),
            ring_capacity: rec.ring_capacity() as u64,
            events: rec.snapshot_events().iter().map(event_msg).collect(),
            exemplars: rec.exemplars().iter().map(exemplar_msg).collect(),
        }
    }

    /// The `tasks` wire reply: what every registered thread is doing now.
    fn tasks_response(&self) -> TasksResponse {
        let rec = self.metrics.recorder();
        TasksResponse {
            recorder_enabled: rec.enabled(),
            events_total: rec.events_total(),
            tasks: rec.tasks().iter().map(task_msg).collect(),
        }
    }

    /// One self-contained post-mortem: task table, full journal and
    /// exemplars at the moment of death, plus enough identity (io model,
    /// uptime, protocol version) to read the file in isolation.
    pub(crate) fn postmortem_dump(&self, reason: &str) -> PostmortemDump {
        let rec = self.metrics.recorder();
        PostmortemDump {
            reason: reason.to_string(),
            version: PROTOCOL_VERSION,
            uptime_ms: self.uptime_ms(),
            io: self.config.io.label().to_string(),
            events_total: rec.events_total(),
            tasks: rec.tasks().iter().map(task_msg).collect(),
            events: rec.snapshot_events().iter().map(event_msg).collect(),
            exemplars: rec.exemplars().iter().map(exemplar_msg).collect(),
        }
    }

    /// Writes [`ServiceState::postmortem_dump`] as JSON under the spill
    /// directory; `None` without a spill dir or when the write fails (a
    /// dying process must not die harder over its own post-mortem).
    ///
    /// The filename deliberately does **not** end in `.json`: the spill
    /// tier's startup sweep indexes (and eventually garbage-collects)
    /// every `*.json` file in this directory as a cache entry.
    pub(crate) fn write_postmortem(&self, reason: &str) -> Option<std::path::PathBuf> {
        let dir = self.config.spill_dir.as_ref()?;
        let json = serde_json::to_string_pretty(&self.postmortem_dump(reason)).ok()?;
        let path = dir.join(format!("postmortem-{}.dump", std::process::id()));
        std::fs::write(&path, json).ok()?;
        Some(path)
    }

    /// Monotonic uptime; always at least 1 ms so "the server is up" reads
    /// as a nonzero value on both I/O layers.
    fn uptime_ms(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64).max(1)
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        // SeqCst: shutdown must be totally ordered against every
        // thread's check — see the store in `PlanServer::stop`.
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// One coherent observability snapshot: this server's registry, the
    /// process-global registry (search/profile internals), and families
    /// synthesized from existing service counters (uptime, request/plan
    /// totals, per-shard cache traffic, index size).
    fn metrics_snapshot(&self) -> qsdnn_obs::Snapshot {
        use qsdnn_obs::{FamilySnapshot, Kind, SampleSnapshot, SampleValue};
        let mut snap = self.metrics.registry().snapshot();
        snap.merge(qsdnn_obs::global().snapshot());
        let gauge = |name: &str, help: &str, v: i64| FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Gauge,
            samples: vec![SampleSnapshot {
                labels: Vec::new(),
                value: SampleValue::Gauge(v),
            }],
        };
        let counter = |name: &str, help: &str, v: u64| FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Counter,
            samples: vec![SampleSnapshot {
                labels: Vec::new(),
                value: SampleValue::Counter(v),
            }],
        };
        snap.families.push(gauge(
            "qsdnn_uptime_ms",
            "Milliseconds since the server started",
            self.uptime_ms() as i64,
        ));
        snap.families.push(counter(
            "qsdnn_requests_total",
            "Requests handled",
            self.requests.load(Ordering::Relaxed),
        ));
        snap.families.push(counter(
            "qsdnn_plans_total",
            "Plan responses served",
            self.plans_served.load(Ordering::Relaxed),
        ));
        snap.families.push(gauge(
            "qsdnn_index_entries",
            "Scenarios registered in the transfer index",
            self.index.len() as i64,
        ));
        snap.families.push(counter(
            "qsdnn_recorder_events_total",
            "Flight-recorder events journaled since start",
            self.metrics.recorder().events_total(),
        ));
        for (cache, shards) in [
            ("plan", self.plans.shard_stats()),
            ("profile", self.profiles.shard_stats()),
        ] {
            let mut entries = Vec::new();
            let mut requests = Vec::new();
            let mut evictions = Vec::new();
            for (i, s) in shards.iter().enumerate() {
                let base = vec![
                    ("cache".to_string(), cache.to_string()),
                    ("shard".to_string(), i.to_string()),
                ];
                entries.push(SampleSnapshot {
                    labels: base.clone(),
                    value: SampleValue::Gauge(s.entries as i64),
                });
                for (outcome, v) in [
                    ("hit", s.hits),
                    ("miss", s.misses),
                    ("coalesced", s.coalesced),
                    ("spill_load", s.spill_loads),
                ] {
                    let mut labels = base.clone();
                    labels.push(("outcome".to_string(), outcome.to_string()));
                    requests.push(SampleSnapshot {
                        labels,
                        value: SampleValue::Counter(v),
                    });
                }
                evictions.push(SampleSnapshot {
                    labels: base,
                    value: SampleValue::Counter(s.evictions),
                });
            }
            for (name, help, kind, samples) in [
                (
                    "qsdnn_cache_entries",
                    "Ready entries resident, by cache and shard",
                    Kind::Gauge,
                    entries,
                ),
                (
                    "qsdnn_cache_requests_total",
                    "Cache lookups, by cache, shard and outcome",
                    Kind::Counter,
                    requests,
                ),
                (
                    "qsdnn_cache_evictions_total",
                    "Entries evicted, by cache and shard",
                    Kind::Counter,
                    evictions,
                ),
            ] {
                snap.merge(qsdnn_obs::Snapshot {
                    families: vec![FamilySnapshot {
                        name: name.to_string(),
                        help: help.to_string(),
                        kind,
                        samples,
                    }],
                });
            }
        }
        snap
    }

    /// The `metrics` wire reply: the same snapshot the Prometheus endpoint
    /// renders, as typed families.
    fn metrics_response(&self) -> MetricsResponse {
        MetricsResponse {
            uptime_ms: self.uptime_ms(),
            families: families_from_snapshot(&self.metrics_snapshot()),
        }
    }

    /// Prometheus text exposition of [`ServiceState::metrics_snapshot`].
    pub(crate) fn metrics_text(&self) -> String {
        self.metrics_snapshot().to_prometheus()
    }

    pub(crate) fn note_in_flight(&self, depth: usize) {
        self.in_flight_peak
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// Formats a packed plan key for the wire (empty when there is none).
fn wire_key(key: u64) -> String {
    if key == 0 {
        String::new()
    } else {
        format!("{key:016x}")
    }
}

/// Decodes one raw flight-recorder event into its wire form, rendering
/// the kind-specific `a`/`b` payloads into a human-readable `detail`.
fn event_msg(e: &qsdnn_obs::Event) -> EventMsg {
    let kind = e.kind();
    let detail = match kind {
        Some(EventKind::RequestBegin) => {
            format!("kind={}", KINDS.get(e.a as usize).copied().unwrap_or("?"))
        }
        Some(EventKind::RequestEnd) => format!(
            "kind={} total_us={}",
            KINDS.get(e.a as usize).copied().unwrap_or("?"),
            e.b
        ),
        Some(EventKind::StageEnd) => format!(
            "stage={} {}us",
            Stage::ALL
                .get(e.a as usize)
                .map(|s| s.as_str())
                .unwrap_or("?"),
            e.b
        ),
        Some(
            EventKind::CacheHit
            | EventKind::CacheMiss
            | EventKind::CacheCoalesced
            | EventKind::CacheSpillLoad
            | EventKind::CacheEvict
            | EventKind::CacheSpill
            | EventKind::CacheStall,
        ) => format!(
            "cache={} shard={}",
            match e.a {
                CACHE_ID_PLAN => "plan",
                CACHE_ID_PROFILE => "profile",
                _ => "?",
            },
            e.b
        ),
        Some(EventKind::TransferDonor) => {
            format!("distance={:.6} states={}", e.a as f64 / 1e6, e.b)
        }
        Some(EventKind::ReactorStall) => format!("loop_us={}", e.a),
        Some(EventKind::EpollWaitOutlier) => format!("wait_us={}", e.a),
        Some(EventKind::PoolSaturated) => format!(
            "pool={} depth={}",
            match e.a {
                POOL_ID_SEARCH => "search",
                POOL_ID_DISPATCH => "dispatch",
                _ => "?",
            },
            e.b
        ),
        Some(EventKind::HandlerPanic) => {
            format!("kind={}", KINDS.get(e.a as usize).copied().unwrap_or("?"))
        }
        None => String::new(),
    };
    EventMsg {
        ts_us: e.ts_us,
        thread: e.thread.to_string(),
        event: kind.map(EventKind::label).unwrap_or("unknown").to_string(),
        serial: e.req,
        key: wire_key(e.key),
        a: e.a,
        b: e.b,
        detail,
    }
}

/// Decodes one live task-table entry into its wire form.
fn task_msg(t: &qsdnn_obs::TaskSnapshot) -> TaskMsg {
    let state = match t.kind {
        None => "idle".to_string(),
        Some(crate::metrics::TASK_KIND_SEARCH_JOB) => "search-job".to_string(),
        Some(crate::metrics::TASK_KIND_DISPATCH_JOB) => "dispatch-job".to_string(),
        Some(k) => KINDS
            .get(k as usize)
            .copied()
            .unwrap_or("unknown")
            .to_string(),
    };
    let stage = match t.stage.checked_sub(1) {
        None => String::new(), // 0 = no stage published
        Some(i) => Stage::ALL
            .get(i as usize)
            .map(|s| s.as_str().to_string())
            .unwrap_or_default(),
    };
    TaskMsg {
        thread: t.thread.clone(),
        state,
        serial: t.serial,
        stage,
        key: wire_key(t.key),
        elapsed_ms: t.elapsed_us as f64 / 1000.0,
    }
}

/// Decodes one retained exemplar: its journal excerpt plus a per-stage
/// breakdown distilled from the excerpt's `stage` events.
fn exemplar_msg(x: &qsdnn_obs::Exemplar) -> ExemplarMsg {
    let stages = x
        .events
        .iter()
        .filter(|e| e.kind() == Some(EventKind::StageEnd))
        .map(|e| StageTiming {
            stage: Stage::ALL
                .get(e.a as usize)
                .map(|s| s.as_str().to_string())
                .unwrap_or_default(),
            ms: e.b as f64 / 1000.0,
        })
        .collect();
    ExemplarMsg {
        kind: KINDS
            .get(x.kind as usize)
            .copied()
            .unwrap_or("unknown")
            .to_string(),
        serial: x.serial,
        total_ms: x.total_us as f64 / 1000.0,
        plan_key: wire_key(x.key),
        panicked: x.panicked,
        stages,
        events: x.events.iter().map(event_msg).collect(),
    }
}

/// Rebuilds a donor *policy-backbone* Q-table from an indexed scenario and
/// its cached plan: the cache stores plans, not learned tables, so the
/// donor's best assignment plus the descriptor's per-candidate costs
/// reconstruct the winning path's Q-values (cost-to-go, see
/// [`QTable::from_best_path`]). Returns `None` when the two artifacts
/// disagree — a stale index entry pointing at a plan for a different
/// structure — in which case the caller skips this donor.
fn donor_qtable(entry: &ScenarioEntry, outcome: &PortfolioOutcome) -> Option<QTable> {
    let dims: Vec<usize> = entry
        .descriptor
        .layers
        .iter()
        .map(|l| l.candidates.len())
        .collect();
    let assignment = &outcome.best.best_assignment;
    if assignment.len() != dims.len() {
        return None;
    }
    let costs: Vec<f64> = assignment
        .iter()
        .enumerate()
        .map(|(l, &ci)| {
            entry
                .descriptor
                .layers
                .get(l)
                .and_then(|layer| layer.cost.get(ci))
                .copied()
                .unwrap_or(f64::NAN)
        })
        .collect();
    QTable::from_best_path(&dims, assignment, &costs)
}

/// The connection layer actually running behind a [`PlanServer`].
enum IoRuntime {
    /// Threaded layer: one acceptor thread; per-connection handlers are
    /// tracked in [`ServiceState::handlers`].
    Threads { acceptor: JoinHandle<()> },
    /// Epoll layer: one reactor thread owns every socket; `waker` pokes
    /// its wakeup pipe; `dispatchers` is the bounded request pool, drained
    /// on shutdown after the reactor joins.
    #[cfg(target_os = "linux")]
    Epoll {
        reactor: JoinHandle<()>,
        waker: crate::reactor::Waker,
        dispatchers: Arc<WorkerPool>,
    },
}

/// A running plan-compilation server.
pub struct PlanServer {
    state: Arc<ServiceState>,
    addr: SocketAddr,
    runtime: Option<IoRuntime>,
    exposition: Option<MetricsExposition>,
}

impl PlanServer {
    /// Binds and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound, the spill directory cannot
    /// be created, or `io: epoll` is requested off Linux.
    pub fn start(config: ServerConfig) -> Result<PlanServer, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let io = config.io;
        let state = ServiceState::new(config)?;
        let runtime = match io {
            IoModel::Threads => {
                let acceptor_state = Arc::clone(&state);
                let acceptor = std::thread::Builder::new()
                    .name("qsdnn-acceptor".into())
                    .spawn(move || accept_loop(&listener, &acceptor_state))?;
                IoRuntime::Threads { acceptor }
            }
            #[cfg(target_os = "linux")]
            IoModel::Epoll => {
                let (reactor, waker, dispatchers) =
                    crate::reactor::start(listener, Arc::clone(&state))?;
                IoRuntime::Epoll {
                    reactor,
                    waker,
                    dispatchers,
                }
            }
            #[cfg(not(target_os = "linux"))]
            IoModel::Epoll => {
                return Err(ServeError::BadRequest(
                    "io model `epoll` is only available on Linux; use `threads`".into(),
                ))
            }
        };
        let mut server = PlanServer {
            state,
            addr,
            runtime: Some(runtime),
            exposition: None,
        };
        // After the runtime so a bind failure tears the server down via
        // the normal stop path (Drop) instead of leaking threads.
        if let Some(metrics_addr) = server.state.config.metrics_addr.clone() {
            server.exposition = Some(MetricsExposition::start(
                &metrics_addr,
                Arc::clone(&server.state),
            )?);
        }
        Ok(server)
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The Prometheus exposition endpoint's bound address, when
    /// [`ServerConfig::metrics_addr`] asked for one (resolves `:0` binds).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.exposition.as_ref().map(MetricsExposition::addr)
    }

    /// The connection layer this server runs on.
    pub fn io_model(&self) -> IoModel {
        self.state.config.io
    }

    /// Writes a flight-recorder post-mortem dump (`postmortem-<pid>.dump`,
    /// JSON) under the spill directory and returns its path. `None`
    /// without a spill directory or when the write fails. `reason` lands
    /// verbatim in the dump (conventionally `panic`, `sigterm` or
    /// `shutdown`).
    pub fn write_postmortem(&self, reason: &str) -> Option<std::path::PathBuf> {
        self.state.write_postmortem(reason)
    }

    /// A standalone dump writer for installing in panic hooks and signal
    /// loops: callable after (and independent of) the server handle itself.
    pub fn postmortem_writer(
        &self,
    ) -> impl Fn(&str) -> Option<std::path::PathBuf> + Send + Sync + 'static {
        let state = Arc::clone(&self.state);
        move |reason| state.write_postmortem(reason)
    }

    /// Stops accepting and joins the connection layer.
    ///
    /// Threaded layer: wakes the acceptor, joins it, then joins every
    /// connection handler — handlers blocked in `read` observe the flag
    /// within `HANDLER_READ_TIMEOUT` (100 ms), finish any in-flight
    /// request and exit. Epoll layer: wakes the reactor, which drains
    /// in-flight requests and queued replies (bounded by its drain
    /// deadline), joins it, then drains the dispatcher pool. Either way,
    /// no server thread outlives this call.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(runtime) = self.runtime.take() else {
            return;
        };
        // SeqCst: the acceptor, reactor, handler, and exposition threads
        // all poll this flag; a total order guarantees none of them keeps
        // admitting work after any other thread observed shutdown.
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // The exposition accept loop re-checks the flag every tick.
        if let Some(mut exposition) = self.exposition.take() {
            exposition.join();
        }
        match runtime {
            IoRuntime::Threads { acceptor } => {
                // Poke the blocking accept() so the loop observes the flag.
                let _ = TcpStream::connect(self.addr);
                let _ = acceptor.join();
                let handlers = std::mem::take(
                    &mut *self
                        .state
                        .handlers
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                );
                for h in handlers {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            IoRuntime::Epoll {
                reactor,
                waker,
                dispatchers,
            } => {
                waker.wake();
                let _ = reactor.join();
                // The reactor's own Arc dropped when its thread ended;
                // dropping ours drains and joins the dispatcher threads.
                drop(dispatchers);
            }
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) {
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        let stream = listener.accept();
        // SeqCst: pairs with the store in `PlanServer::stop` — the
        // accept that `stop` pokes us with must observe the flag.
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let stream = match stream {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                stream
            }
            // A peer that completed the handshake and reset before we
            // accepted killed one queued connection, nothing more — the
            // conventional response is an immediate retry, not a pause
            // that delays every legitimate client behind it.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            Err(_) => {
                // Resource exhaustion (EMFILE, ENFILE, ENOBUFS, ENOMEM…):
                // count it and back off instead of spinning — retrying
                // instantly fails the same way and pins a core.
                state.accept_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        let conn_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("qsdnn-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &conn_state);
            });
        let Ok(handle) = spawned else { continue };
        // Reap handlers whose connections already closed so a long-lived
        // server doesn't accumulate one JoinHandle per past connection.
        // The joins happen after the lock is released: even a finished
        // thread's join is a blocking call, and the handler list is
        // contended by `stop`.
        let mut finished = Vec::new();
        {
            let mut handlers = state
                .handlers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut live = Vec::with_capacity(handlers.len() + 1);
            for h in handlers.drain(..) {
                if h.is_finished() {
                    finished.push(h);
                } else {
                    live.push(h);
                }
            }
            live.push(handle);
            *handlers = live;
        }
        for h in finished {
            let _ = h.join();
        }
    }
}

/// Per-connection state shared between the reader and its dispatcher
/// threads: the write side (one mutex serializes interleaved tagged and
/// untagged replies — `write_message` emits a whole line per call, so a
/// reply is never torn) and the in-flight permit count.
struct ConnShared {
    writer: Mutex<TcpStream>,
    in_flight: Mutex<usize>,
    /// Signalled whenever a dispatcher finishes: wakes the reader blocked
    /// at the cap and the drain wait at connection teardown.
    done: Condvar,
}

impl ConnShared {
    fn write(&self, resp: &impl serde::Serialize) -> Result<(), ServeError> {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // LINT-ALLOW(lock-discipline): writing under the writer lock is
        // the design — it is what keeps interleaved tagged replies from
        // tearing mid-line.
        write_message(&mut *w, resp)
    }

    /// Writes an already-serialized single-line JSON document, so the
    /// caller can time serialization and the socket write separately.
    fn write_rendered(&self, json: &str) -> Result<(), ServeError> {
        use std::io::Write;
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // LINT-ALLOW(lock-discipline): as in `write` — the lock exists
        // to serialize exactly these socket writes.
        w.write_all(json.as_bytes())?;
        // LINT-ALLOW(lock-discipline): same serialized write.
        w.write_all(b"\n")?;
        // LINT-ALLOW(lock-discipline): same serialized write.
        w.flush()?;
        Ok(())
    }

    /// Writes one already-encoded binary frame. The writer lock keeps
    /// interleaved tagged frames from tearing, exactly as it keeps JSON
    /// lines whole; an empty frame (the unreachable fallback of
    /// [`crate::protocol::binary_error_frame`]) writes nothing.
    fn write_frame(&self, frame: &[u8]) -> Result<(), ServeError> {
        use std::io::Write;
        if frame.is_empty() {
            return Ok(());
        }
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // LINT-ALLOW(lock-discipline): as in `write` — the lock exists
        // to serialize exactly these socket writes.
        w.write_all(frame)?;
        // LINT-ALLOW(lock-discipline): same serialized write.
        w.flush()?;
        Ok(())
    }

    /// Blocks until every dispatched request has written its reply.
    fn drain(&self) {
        let mut n = self
            .in_flight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *n > 0 {
            n = match self.done.wait(n) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

fn serve_connection(stream: TcpStream, state: &Arc<ServiceState>) -> Result<(), ServeError> {
    // A bounded read timeout lets the handler re-check `shutting_down`
    // while idle, so `PlanServer::shutdown` can join it instead of leaking
    // a thread blocked in `read` forever.
    stream.set_read_timeout(Some(HANDLER_READ_TIMEOUT))?;
    let shared = Arc::new(ConnShared {
        writer: Mutex::new(stream.try_clone()?),
        in_flight: Mutex::new(0),
        done: Condvar::new(),
    });
    let mut reader = BufReader::new(stream);
    let mut partial = String::new();
    state.metrics.connections.inc();
    let result = read_loop(&mut reader, &mut partial, &shared, state);
    // Whatever ended the read side (EOF, shutdown, I/O error), every
    // dispatched request still in flight gets to write its reply before
    // the handler exits — replies are never abandoned.
    shared.drain();
    state.metrics.connections.dec();
    result
}

fn read_loop(
    reader: &mut BufReader<TcpStream>,
    partial: &mut String,
    shared: &Arc<ConnShared>,
    state: &Arc<ServiceState>,
) -> Result<(), ServeError> {
    let cap = state.config.in_flight_cap();
    loop {
        // SeqCst: pairs with the store in `PlanServer::stop`; the read
        // timeout brings us back here so shutdown can join this thread.
        if state.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let line = match read_line_resumable(reader, partial) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // clean EOF
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle timeout: any half-received line stays in `partial`;
                // loop around to re-check the shutdown flag.
                continue;
            }
            Err(ServeError::Io(e)) if e.kind() == std::io::ErrorKind::InvalidData => {
                // A line that is not valid UTF-8 cannot be parsed, but
                // `read_line` consumed it through its terminator, so
                // framing resyncs at the next line. `read_line` only
                // truncates the *newly appended* bytes on failure — a
                // valid prefix carried in `partial` across an earlier
                // read timeout would otherwise prepend itself to the next
                // request, so the whole offending line is discarded here.
                // Answer and keep the connection — the identical contract
                // (and message) as the epoll layer, pinned by the
                // io-equivalence test.
                partial.clear();
                shared.write(&Response::Error {
                    message: "request line is not valid UTF-8".to_string(),
                })?;
                continue;
            }
            Err(e) => return Err(e),
        };
        // The span opens at frame receipt as kind `error`; parsing a
        // request re-labels it.
        let mut span = state.metrics.span("error");
        match span.time(Stage::Parse, || parse_request_frame(&line)) {
            Err(ServeError::Protocol(message)) => {
                // Malformed line: report (untagged — no id survived the
                // wreckage) and keep the connection.
                shared.write(&Response::Error { message })?;
                state.metrics.observe(&span);
            }
            Err(e) => return Err(e),
            Ok(RequestFrame::Untagged(req)) => {
                // Only a *bare* ping negotiates the binary framing: a
                // tagged ping is an ordinary pipelined request, and out
                // of range versions still get the JSON mismatch error.
                let upgrade = matches!(
                    &req,
                    Request::Ping { version } if negotiates_binary(*version)
                );
                // v1 contract: handled inline, so replies on this
                // connection stay in request order and at most one
                // untagged request runs at a time.
                let resp = state.dispatch_spanned(req, &mut span);
                let json = span
                    .time(Stage::Serialize, || serde_json::to_string(&resp))
                    .map_err(|e| ServeError::Protocol(e.to_string()))?;
                span.time(Stage::Write, || shared.write_rendered(&json))?;
                state.metrics.observe(&span);
                if upgrade && matches!(resp, Response::Pong { .. }) {
                    // That pong was this connection's last JSON line:
                    // both directions speak length-prefixed binary
                    // frames from here on.
                    return binary_read_loop(reader, shared, state);
                }
            }
            Ok(RequestFrame::Tagged(tagged)) => {
                // Backpressure: stop parsing while the connection is at
                // its cap; dispatchers wake us as they finish.
                let depth = {
                    let mut n = shared
                        .in_flight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while *n >= cap {
                        n = match shared.done.wait(n) {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    *n += 1;
                    *n
                };
                state.note_in_flight(depth);
                state.pipelined.fetch_add(1, Ordering::Relaxed);
                let id = tagged.id;
                let conn = Arc::clone(shared);
                let dispatch_state = Arc::clone(state);
                // The queue stage covers spawn-to-start: how long the
                // request waited for a dispatcher to pick it up.
                dispatch_state.metrics.dispatch_pool.queue_depth.inc();
                let queued = Instant::now();
                let mut span = span;
                let spawned = std::thread::Builder::new()
                    .name("qsdnn-dispatch".into())
                    .spawn(move || {
                        let metrics = &dispatch_state.metrics;
                        metrics.dispatch_pool.queue_depth.dec();
                        metrics.dispatch_pool.busy.inc();
                        span.record(Stage::Queue, queued.elapsed());
                        let resp = dispatch_state.dispatch_spanned(tagged.req, &mut span);
                        let reply = TaggedResponse {
                            id: tagged.id,
                            resp,
                        };
                        // A failed write means the client is gone; the
                        // reader will observe that on its side.
                        if let Ok(json) =
                            span.time(Stage::Serialize, || serde_json::to_string(&reply))
                        {
                            let _ = span.time(Stage::Write, || conn.write_rendered(&json));
                        }
                        metrics.observe(&span);
                        metrics.dispatch_pool.busy.dec();
                        let mut n = conn
                            .in_flight
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *n = n.saturating_sub(1);
                        drop(n);
                        conn.done.notify_all();
                    });
                if spawned.is_err() {
                    state.metrics.dispatch_pool.queue_depth.dec();
                    // Could not spawn a dispatcher (the request was
                    // consumed by the failed spawn): return the permit and
                    // answer the id with an error so the client's ticket
                    // resolves instead of hanging.
                    {
                        let mut n = shared
                            .in_flight
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *n = n.saturating_sub(1);
                    }
                    shared.done.notify_all();
                    shared.write(&TaggedResponse {
                        id,
                        resp: Response::Error {
                            message: "server out of dispatcher threads".into(),
                        },
                    })?;
                }
            }
        }
    }
}

/// [`read_loop`] for a connection upgraded to protocol v3: the same
/// shutdown polling, v1-inline / v2-spawned dispatch contract, and
/// in-flight backpressure, over length-prefixed binary frames instead
/// of JSON lines.
///
/// Error contract (mirrored by the epoll layer and pinned by the
/// hostile-client suite): a body that fails to decode answers with an
/// error frame — tagged when the header id survived — and the
/// connection lives, because the length prefix already resynced the
/// stream. A header violation (bad magic, unknown kind, body length
/// beyond the bound) or a torn stream answers once and closes: there is
/// no trustworthy prefix to resync from.
fn binary_read_loop(
    reader: &mut BufReader<TcpStream>,
    shared: &Arc<ConnShared>,
    state: &Arc<ServiceState>,
) -> Result<(), ServeError> {
    let cap = state.config.in_flight_cap();
    let mut frames = FrameBuffer::default();
    loop {
        // SeqCst: pairs with the store in `PlanServer::stop`, exactly as
        // in the JSON loop.
        if state.shutting_down.load(Ordering::SeqCst) {
            return Ok(());
        }
        let frame = match read_binary_frame_resumable(reader, &mut frames, MAX_FRAME_BYTES) {
            Ok(Some(frame)) => frame,
            Ok(None) => return Ok(()), // clean EOF on a frame boundary
            Err(ServeError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle timeout: a half-received frame stays buffered;
                // loop around to re-check the shutdown flag.
                continue;
            }
            Err(ServeError::Protocol(message)) => {
                // Unsyncable stream (bad header or EOF mid-frame):
                // best-effort error frame, then close.
                let _ = shared.write_frame(&crate::protocol::binary_error_frame(None, &message));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let mut span = state.metrics.span("error");
        match span.time(Stage::Parse, || parse_binary_request(&frame)) {
            Err(ServeError::Protocol(message)) => {
                // Malformed body: answer under the request's id if the
                // header carried one, and keep the connection.
                span.time(Stage::Write, || {
                    shared.write_frame(&crate::protocol::binary_error_frame(frame.id, &message))
                })?;
                state.metrics.observe(&span);
            }
            Err(e) => return Err(e),
            Ok(RequestFrame::Untagged(req)) => {
                let resp = state.dispatch_spanned(req, &mut span);
                let out = span.time(Stage::Serialize, || state.render_binary_frame(None, &resp));
                span.time(Stage::Write, || shared.write_frame(&out))?;
                state.metrics.observe(&span);
            }
            Ok(RequestFrame::Tagged(tagged)) => {
                // Backpressure: identical permit scheme to the JSON loop.
                let depth = {
                    let mut n = shared
                        .in_flight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while *n >= cap {
                        n = match shared.done.wait(n) {
                            Ok(guard) => guard,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    *n += 1;
                    *n
                };
                state.note_in_flight(depth);
                state.pipelined.fetch_add(1, Ordering::Relaxed);
                let id = tagged.id;
                let conn = Arc::clone(shared);
                let dispatch_state = Arc::clone(state);
                dispatch_state.metrics.dispatch_pool.queue_depth.inc();
                let queued = Instant::now();
                let mut span = span;
                let spawned = std::thread::Builder::new()
                    .name("qsdnn-dispatch".into())
                    .spawn(move || {
                        let metrics = &dispatch_state.metrics;
                        metrics.dispatch_pool.queue_depth.dec();
                        metrics.dispatch_pool.busy.inc();
                        span.record(Stage::Queue, queued.elapsed());
                        let resp = dispatch_state.dispatch_spanned(tagged.req, &mut span);
                        let out = span.time(Stage::Serialize, || {
                            dispatch_state.render_binary_frame(Some(id), &resp)
                        });
                        // A failed write means the client is gone; the
                        // reader will observe that on its side.
                        let _ = span.time(Stage::Write, || conn.write_frame(&out));
                        metrics.observe(&span);
                        metrics.dispatch_pool.busy.dec();
                        let mut n = conn
                            .in_flight
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *n = n.saturating_sub(1);
                        drop(n);
                        conn.done.notify_all();
                    });
                if spawned.is_err() {
                    state.metrics.dispatch_pool.queue_depth.dec();
                    {
                        let mut n = shared
                            .in_flight
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *n = n.saturating_sub(1);
                    }
                    shared.done.notify_all();
                    shared.write_frame(&crate::protocol::binary_error_frame(
                        Some(id),
                        "server out of dispatcher threads",
                    ))?;
                }
            }
        }
    }
}

/// Convenience for tests and examples: a server on an ephemeral localhost
/// port with default settings.
///
/// # Errors
///
/// See [`PlanServer::start`].
pub fn start_local() -> Result<PlanServer, ServeError> {
    PlanServer::start(ServerConfig::default())
}

/// Resolves an address string, preferring the first result.
///
/// # Errors
///
/// Fails when resolution produces no addresses.
pub fn resolve(addr: &str) -> Result<SocketAddr, ServeError> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| ServeError::BadRequest(format!("cannot resolve `{addr}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::{AnalyticalPlatform, Mode};
    use qsdnn::PortfolioMember;

    fn branchy_lut() -> CostLut {
        let net = zoo::by_name("toy_branchy", 1).expect("zoo network");
        Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Gpgpu)
    }

    /// Regression: a portfolio with no applicable member used to hit
    /// `.expect("portfolio always has applicable members")` inside the
    /// cache compute closure, unwinding through the connection handler and
    /// silently dropping the connection. It must answer with an error.
    #[test]
    fn inapplicable_portfolio_is_an_error_not_a_panic() {
        let state = ServiceState::new(ServerConfig::default()).expect("state");
        // Chain DP is the only member and `toy_branchy` is not a chain, so
        // no member produces a report.
        let portfolio = Portfolio {
            members: vec![PortfolioMember::ChainDp],
        };
        let err = state
            .search_with(
                &portfolio,
                branchy_lut(),
                Objective::Latency,
                None,
                &mut state.metrics.span("plan"),
            )
            .expect_err("no member applies");
        assert!(
            err.to_string().contains("no portfolio member"),
            "unexpected error: {err}"
        );
        // The failure must not have cached anything or leaked the
        // in-flight slot: an identical retry fails again promptly (a
        // leaked slot would deadlock this call in single-flight wait).
        let err = state
            .search_with(
                &portfolio,
                branchy_lut(),
                Objective::Latency,
                None,
                &mut state.metrics.span("plan"),
            )
            .expect_err("still no member");
        assert!(matches!(err, ServeError::Search(_)));
        let stats = state.plans.stats();
        assert_eq!(stats.entries, 0, "failures are never cached");
        assert_eq!(stats.in_flight, 0, "failures release their slot");
        // The same state still serves a working portfolio afterwards.
        let ok = state
            .search_with(
                &Portfolio::paper_default(60, &[1]),
                branchy_lut(),
                Objective::Latency,
                None,
                &mut state.metrics.span("plan"),
            )
            .expect("full portfolio applies");
        assert!(ok.best.best_cost_ms.is_finite());
    }

    /// Satellite of the shim's `write_f64` divergence (non-finite →
    /// `null`): every float the stats response carries must be finite in
    /// every server state, or a typed client's decode breaks. The
    /// historical hazard is `mean_donor_distance` with `warm_starts == 0`
    /// (`0.0 / 0.0 == NaN`); this pins the zero-state answer and that the
    /// rendered JSON round-trips through the typed decoder.
    #[test]
    fn stats_floats_are_finite_in_the_zero_state() {
        let state = ServiceState::new(ServerConfig::default()).expect("state");
        let resp = state.dispatch(Request::Stats);
        let stats = match &resp {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(stats.warm_starts, 0, "zero-state precondition");
        assert!(
            stats.mean_donor_distance.is_finite(),
            "mean_donor_distance must never be NaN/inf (got {})",
            stats.mean_donor_distance
        );
        // The shim would render a NaN as `null`, which the typed decoder
        // rejects — so a successful round trip proves no field was
        // non-finite.
        let json = serde_json::to_string(&resp).expect("render");
        assert!(!json.contains("null"), "no float degraded to null: {json}");
        let back: Response = serde_json::from_str(&json).expect("typed round trip");
        assert!(matches!(back, Response::Stats(_)));
    }

    /// The binary fast path serves bit-identical bytes across repeated
    /// eligible hits and attaches the body to the cache entry once.
    #[test]
    fn render_binary_body_caches_eligible_hits() {
        let state = ServiceState::new(ServerConfig::default()).expect("state");
        let req = || {
            Request::Plan(PlanRequest {
                network: "tiny_cnn".into(),
                batch: 1,
                mode: Mode::Gpgpu,
                objective: Objective::Latency,
                episodes: 40,
                seeds: vec![1],
                transfer: TransferMode::Off,
                trace: false,
                platform: String::new(),
            })
        };
        // Cold: not a cache hit, nothing attached.
        let cold = state.dispatch(req());
        let cold_key = match &cold {
            Response::Plan(p) => {
                assert!(!p.cache_hit);
                p.plan_key.clone()
            }
            other => panic!("expected plan, got {other:?}"),
        };
        let _ = state.render_binary_body(&cold).expect("cold renders");
        assert!(
            state.plans.wire_body(&cold_key).is_none(),
            "cold responses never attach a body"
        );
        // Hit: first render attaches, second serves the same allocation.
        let hit = state.dispatch(req());
        match &hit {
            Response::Plan(p) => assert!(p.cache_hit),
            other => panic!("expected plan, got {other:?}"),
        }
        let first = state.render_binary_body(&hit).expect("hit renders");
        assert!(state.plans.wire_body(&cold_key).is_some(), "hit attaches");
        let second = state.render_binary_body(&hit).expect("hit renders");
        assert!(Arc::ptr_eq(&first, &second), "second hit is a cache fetch");
        // The cached bytes decode to the same response a fresh encode
        // would produce.
        let fresh = crate::protocol::encode_body(&hit).expect("encode");
        assert_eq!(*first, fresh, "cached body is bit-identical");
    }

    /// The panic firewall answers rather than unwinding: a handler panic
    /// becomes a `Response::Error` naming the reason, so the connection
    /// (and a v2 in-flight permit) survives.
    #[test]
    fn dispatch_turns_panics_into_error_responses() {
        // An empty default seed list makes `seeds_for` hand
        // `Portfolio::paper_default` an empty slice, which asserts — a
        // deterministic stand-in for any future handler bug.
        let state = ServiceState::new(ServerConfig {
            default_seeds: Vec::new(),
            ..ServerConfig::default()
        })
        .expect("state");
        let req = Request::Plan(PlanRequest {
            network: "tiny_cnn".into(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: 40,
            seeds: Vec::new(),
            transfer: TransferMode::Auto,
            trace: false,
            platform: String::new(),
        });
        let resp =
            catch_unwind(AssertUnwindSafe(|| state.dispatch(req))).expect("dispatch never unwinds");
        match resp {
            Response::Error { message } => {
                assert!(message.contains("panicked"), "{message}");
            }
            other => panic!("expected an error response, got {other:?}"),
        }
    }
}
