//! Wire protocol of the plan-compilation service: JSON-lines over TCP.
//!
//! Every message is one JSON document on one `\n`-terminated line —
//! trivially debuggable with `nc` and framing-safe without length
//! prefixes (the serializer never emits raw newlines). Requests and
//! responses are externally-tagged enums, so a `plan` request reads as
//! `{"Plan":{...}}` on the wire.
//!
//! # Multiplexing (protocol v2)
//!
//! A bare request line keeps the v1 contract: the server answers it
//! in order, one at a time per connection. Wrapping a request in a
//! tagged envelope — `{"id":7,"req":{"Plan":{...}}}` — opts that request
//! into pipelining: the connection may hold up to the server's in-flight
//! cap of tagged requests at once, and the server replies
//! `{"id":7,"resp":{...}}` **as each search finishes**, out of order.
//! The two framings share a connection freely; framing-level errors
//! (malformed JSON) are answered with an untagged [`Response::Error`]
//! because no id could be recovered from the broken line.
//!
//! # Binary framing (protocol v3)
//!
//! A connection starts in JSON-lines mode. A **bare** `Ping` whose
//! `version` is at least [`BINARY_MIN_VERSION`] and accepted by the
//! server negotiates an upgrade: the server answers the `Pong` as the
//! connection's final JSON line, and every subsequent frame in *both*
//! directions is length-prefixed binary. v1/v2 clients never send such a
//! ping, so their JSON-lines contract is untouched on the same port.
//!
//! A binary frame is:
//!
//! ```text
//! magic  kind   body_len   [id]       body
//! 0xB3   u8     u32 LE     u64 LE     body_len bytes
//! ```
//!
//! `kind` 0x00 is a bare frame (no `id` field, v1 ordering semantics);
//! `kind` 0x01 is a tagged frame whose `id` correlates request and reply
//! exactly like the v2 JSON envelope — same in-flight cap, same
//! out-of-order completion. The body is the message encoded with the
//! self-describing value codec ([`encode_body`]/[`decode_body`]): the
//! same [`Value`] tree the JSON framing serializes, so a decoded v3
//! response is bit-identical to its v2 twin. A body that fails to decode
//! is answered with an error frame (tagged when the id survived) and the
//! connection lives on — the length prefix keeps framing in sync. A
//! violated *header* (bad magic, unknown kind, body length beyond the
//! frame bound) is unrecoverable: one error frame, then close.

use std::io::{BufRead, Write};

use qsdnn::engine::{CostLut, Mode, Objective};
use qsdnn::{MemberSummary, SearchReport};
use serde::{Deserialize, Serialize, Value};

use crate::cache::{CacheStats, ShardStats};
use crate::ServeError;

/// Protocol revision; servers accept handshakes from
/// [`MIN_PROTOCOL_VERSION`] up to this revision.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest client revision the server still speaks. v1 clients never send
/// tagged envelopes, so serving them needs no translation.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// First revision that negotiates length-prefixed binary framing: a bare
/// `Ping` handshake carrying at least this version switches the
/// connection out of JSON-lines mode once the `Pong` is on the wire.
pub const BINARY_MIN_VERSION: u32 = 3;

/// First byte of every binary frame. `0xB3` is a UTF-8 continuation
/// byte, so no JSON-lines frame can ever start with it — JSON text
/// arriving on a binary connection (and vice versa) is detected on the
/// first byte instead of producing a silently garbled parse.
pub const FRAME_MAGIC: u8 = 0xB3;

/// Hard bound on a single frame's payload, shared by both connection
/// layers and both framings: the JSON layers cap the line length, the
/// binary codec caps the declared body length.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Worst-case binary frame header: magic + kind + body length + tag id.
pub const BINARY_FRAME_OVERHEAD: usize = 1 + 1 + 4 + 8;

/// `kind` byte of a bare binary frame (v1 ordering semantics, no id).
const FRAME_KIND_BARE: u8 = 0x00;
/// `kind` byte of a tagged binary frame (pipelined, u64 id follows).
const FRAME_KIND_TAGGED: u8 = 0x01;

/// Depth bound for the binary value codec, matching the JSON parser's
/// nesting guard so neither framing accepts what the other would refuse.
const MAX_BINARY_DEPTH: usize = 128;

/// Whether a handshake at `version` upgrades the connection to binary
/// framing — true only when the server also accepts the version, which
/// the caller has already checked via the `Ping` reply.
pub fn negotiates_binary(version: u32) -> bool {
    (BINARY_MIN_VERSION..=PROTOCOL_VERSION).contains(&version)
}

/// Which framing a connection currently speaks. Every connection starts
/// as [`WireMode::Json`]; a successful v3 handshake flips it to
/// [`WireMode::Binary`] for the rest of the connection's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// JSON-lines framing (protocol v1/v2).
    Json,
    /// Length-prefixed binary framing (protocol v3+).
    Binary,
}

/// Default episode budget when a request passes `episodes == 0`.
pub fn default_episodes(layers: usize) -> usize {
    1000.max(40 * layers)
}

/// Per-request scenario-transfer policy.
///
/// `Auto` lets the server warm-start the search from the nearest cached
/// scenario when the exact plan is not cached (and the server has transfer
/// enabled); `Off` forces the exact cold path — byte-identical requests
/// and responses to a server without the transfer subsystem.
///
/// On the wire this is the lowercase string `"auto"` / `"off"`; an absent
/// field means `Auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Warm-start from the nearest cached scenario on a plan-cache miss.
    #[default]
    Auto,
    /// Never consult the scenario index; search cold on every miss.
    Off,
}

impl TransferMode {
    /// Stable lowercase wire/CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            TransferMode::Auto => "auto",
            TransferMode::Off => "off",
        }
    }
}

// Hand-written serde: the vendored derive would emit the variant names
// (`"Auto"`), but the protocol promises lowercase `"auto"`/`"off"`.
impl Serialize for TransferMode {
    fn serialize(&self) -> Value {
        Value::String(self.label().to_string())
    }
}

impl Deserialize for TransferMode {
    fn deserialize(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::String(s) => s.parse().map_err(|e: String| serde::Error::custom(&e)),
            _ => Err(serde::Error::custom("expected \"auto\" or \"off\"")),
        }
    }
}

impl std::str::FromStr for TransferMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(TransferMode::Auto),
            "off" => Ok(TransferMode::Off),
            other => Err(format!("unknown transfer mode `{other}` (auto|off)")),
        }
    }
}

impl std::fmt::Display for TransferMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Phase-1 profiling of a zoo network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRequest {
    /// Zoo network name (e.g. `"mobilenet_v1"`). Absent = `""`, which the
    /// handler rejects as an unknown network — a clean error reply instead
    /// of a dropped frame.
    #[serde(default)]
    pub network: String,
    /// Batch size (≥1). Absent = 0, rejected by the handler.
    #[serde(default)]
    pub batch: usize,
    /// Processor mode. Genuinely mandatory: defaulting it would silently
    /// profile the wrong processor, worse than a parse error.
    // LINT-ALLOW(wire-compat)
    pub mode: Mode,
    /// Profiling repeats (0 = server default).
    #[serde(default)]
    pub repeats: usize,
    /// Registered platform to profile on (absent/empty = the server's
    /// default platform; list names with the `platforms` request).
    #[serde(default)]
    pub platform: String,
}

/// Portfolio search over a client-supplied LUT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchRequest {
    /// The Phase-1 LUT to search (profiled anywhere, e.g. on-device).
    /// Genuinely mandatory: the LUT *is* the request.
    // LINT-ALLOW(wire-compat)
    pub lut: CostLut,
    /// Objective to scalarize the LUT with. Genuinely mandatory:
    /// defaulting it would silently optimize the wrong thing.
    // LINT-ALLOW(wire-compat)
    pub objective: Objective,
    /// Episode budget per stochastic member (0 = server default).
    #[serde(default)]
    pub episodes: usize,
    /// QS-DNN seeds (empty = server default seeds).
    #[serde(default)]
    pub seeds: Vec<u64>,
    /// Scenario-transfer policy for this request (absent = `"auto"`).
    #[serde(default)]
    pub transfer: TransferMode,
    /// Echo this request's span timings in the response (absent = off).
    /// Tracing never changes the plan — only the response's `trace` field.
    #[serde(default)]
    pub trace: bool,
    /// Registered platform the supplied LUT was profiled for (absent/empty
    /// = the server's default platform). The LUT carries its own numbers —
    /// this only pins the plan's cache identity and the scenario-transfer
    /// descriptor to the right target.
    #[serde(default)]
    pub platform: String,
}

/// End-to-end plan compilation: profile (server-side, cached) + portfolio
/// search (cached).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Zoo network name. Absent = `""`, rejected by the handler as an
    /// unknown network.
    #[serde(default)]
    pub network: String,
    /// Batch size (≥1). Absent = 0, rejected by the handler.
    #[serde(default)]
    pub batch: usize,
    /// Processor mode. Genuinely mandatory: defaulting it would silently
    /// compile for the wrong processor.
    // LINT-ALLOW(wire-compat)
    pub mode: Mode,
    /// Objective to optimize. Genuinely mandatory: defaulting it would
    /// silently optimize the wrong thing.
    // LINT-ALLOW(wire-compat)
    pub objective: Objective,
    /// Episode budget per stochastic member (0 = server default).
    #[serde(default)]
    pub episodes: usize,
    /// QS-DNN seeds (empty = server default seeds).
    #[serde(default)]
    pub seeds: Vec<u64>,
    /// Scenario-transfer policy for this request (absent = `"auto"`).
    #[serde(default)]
    pub transfer: TransferMode,
    /// Echo this request's span timings in the response (absent = off).
    /// Tracing never changes the plan — only the response's `trace` field.
    #[serde(default)]
    pub trace: bool,
    /// Registered platform to compile for (absent/empty = the server's
    /// default platform; list names with the `platforms` request).
    #[serde(default)]
    pub platform: String,
}

impl PlanRequest {
    /// Latency plan for a network at batch 1 in GPGPU mode with server
    /// defaults — the common case.
    pub fn latency(network: impl Into<String>) -> Self {
        PlanRequest {
            network: network.into(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: 0,
            seeds: Vec::new(),
            transfer: TransferMode::Auto,
            trace: false,
            platform: String::new(),
        }
    }

    /// Pins the request to a registered platform.
    pub fn on_platform(mut self, platform: impl Into<String>) -> Self {
        self.platform = platform.into();
        self
    }
}

/// Client → server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Protocol handshake / liveness probe.
    Ping {
        /// Client protocol revision.
        version: u32,
    },
    /// Run Phase 1 on the server.
    Profile(ProfileRequest),
    /// Run the search portfolio on a supplied LUT.
    Search(SearchRequest),
    /// Profile + search, both cached.
    Plan(PlanRequest),
    /// Service counters.
    Stats,
    /// Full observability snapshot: every metric family with histogram
    /// quantiles (the wire twin of the Prometheus exposition endpoint).
    Metrics,
    /// The platform registry: every target this server can profile and
    /// compile for, with spec fingerprints.
    Platforms,
    /// The flight recorder's journal: every event still resident in the
    /// per-thread rings, plus the retained slow/panic exemplars.
    Events,
    /// The flight recorder's live task table: what every worker and
    /// dispatcher thread is doing right now.
    Tasks,
}

/// Protocol-v2 envelope: a request tagged with a connection-scoped id so
/// the server may answer out of order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedRequest {
    /// Client-chosen correlation id, echoed verbatim in the reply. Ids are
    /// scoped to the connection; reusing an id while its request is still
    /// in flight makes the two replies indistinguishable. Genuinely
    /// mandatory: a defaulted id could not be correlated — and `{"id":N}`
    /// with no `req` must stay a parse error, not an empty request (the
    /// framing tests pin this).
    // LINT-ALLOW(wire-compat)
    pub id: u64,
    /// The request itself. Genuinely mandatory — see `id`.
    // LINT-ALLOW(wire-compat)
    pub req: Request,
}

/// Protocol-v2 envelope: the reply to a [`TaggedRequest`] with the same id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedResponse {
    /// Correlation id copied from the request. Genuinely mandatory: an
    /// uncorrelatable reply is useless to a pipelining client.
    // LINT-ALLOW(wire-compat)
    pub id: u64,
    /// The response itself. Genuinely mandatory — see `id`.
    // LINT-ALLOW(wire-compat)
    pub resp: Response,
}

/// One parsed client → server line: either a bare v1 request or a v2
/// envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// Bare request — answered in order, one at a time (v1 semantics).
    Untagged(Request),
    /// Tagged request — pipelined, answered out of order (v2 semantics).
    Tagged(TaggedRequest),
}

/// One parsed server → client line: either a bare v1 response or a v2
/// envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// Reply to a bare request (or a framing-level error).
    Untagged(Response),
    /// Reply to a tagged request.
    Tagged(TaggedResponse),
}

/// An envelope is any JSON object carrying an `id` field; bare requests
/// and responses are externally-tagged enums whose single key is a variant
/// name, so the two framings can never collide.
fn is_envelope(v: &Value) -> bool {
    v.as_object()
        .is_some_and(|obj| Value::get_field(obj, "id").is_some())
}

/// Parses one wire line from a client into a [`RequestFrame`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for malformed JSON or an unknown
/// shape.
pub fn parse_request_frame(line: &str) -> Result<RequestFrame, ServeError> {
    let v = serde_json::parse(line.trim()).map_err(|e| ServeError::Protocol(e.to_string()))?;
    if is_envelope(&v) {
        serde_json::from_value::<TaggedRequest>(&v).map(RequestFrame::Tagged)
    } else {
        serde_json::from_value::<Request>(&v).map(RequestFrame::Untagged)
    }
    .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Parses one wire line from a server into a [`ResponseFrame`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] for malformed JSON or an unknown
/// shape.
pub fn parse_response_frame(line: &str) -> Result<ResponseFrame, ServeError> {
    let v = serde_json::parse(line.trim()).map_err(|e| ServeError::Protocol(e.to_string()))?;
    if is_envelope(&v) {
        serde_json::from_value::<TaggedResponse>(&v).map(ResponseFrame::Tagged)
    } else {
        serde_json::from_value::<Response>(&v).map(ResponseFrame::Untagged)
    }
    .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Result of a profile request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileResponse {
    /// The assembled LUT. Genuinely mandatory: the LUT *is* the reply, and
    /// a defaulted empty LUT would fail `validate()` far from the wire.
    // LINT-ALLOW(wire-compat)
    pub lut: CostLut,
    /// Stable content fingerprint of `lut` (hex).
    #[serde(default)]
    pub fingerprint: String,
}

/// Provenance of a warm-started plan: which cached scenario seeded the
/// search and how much it carried over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartInfo {
    /// Cache key of the donor plan the Q-tables were seeded from.
    #[serde(default)]
    pub donor_key: String,
    /// Network name of the donor scenario.
    #[serde(default)]
    pub donor_network: String,
    /// Scenario distance between donor and this request (0 = identical
    /// descriptors; batch neighbors score fractions of 1).
    #[serde(default)]
    pub donor_distance: f64,
    /// Upper bound on Q-entries the transfer mapping covers.
    #[serde(default)]
    pub transferred_states: usize,
    /// Episode budget of the warm-started QS-DNN members (shorter than the
    /// cold budget — the point of warm-starting).
    #[serde(default)]
    pub episodes: usize,
}

/// One stage's share of a traced request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`parse`, `queue`, `profile`, `cache`, `search`).
    #[serde(default)]
    pub stage: String,
    /// Time spent in the stage, milliseconds.
    #[serde(default)]
    pub ms: f64,
}

/// Echoed span timings for a `trace: true` request.
///
/// Only stages that complete before the response is built can appear;
/// `serialize` and `write` happen afterwards and land in the server's
/// histograms (and the slow-request log) instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceInfo {
    /// Stages with nonzero time, in pipeline order.
    #[serde(default)]
    pub stages: Vec<StageTiming>,
    /// Total span age when the response was built, milliseconds.
    #[serde(default)]
    pub total_ms: f64,
}

/// Result of a plan/search request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanResponse {
    /// Network the plan is for.
    #[serde(default)]
    pub network: String,
    /// Content address of this plan in the cache.
    #[serde(default)]
    pub plan_key: String,
    /// Whether the plan was served without running a fresh search.
    #[serde(default)]
    pub cache_hit: bool,
    /// The winning report (assignment, cost, curve). Genuinely mandatory:
    /// the report *is* the reply; a defaulted empty assignment would panic
    /// downstream instead of erroring at the wire.
    // LINT-ALLOW(wire-compat)
    pub best: SearchReport,
    /// Label of the winning portfolio member.
    #[serde(default)]
    pub winner: String,
    /// Every member's summary, in portfolio order.
    #[serde(default)]
    pub members: Vec<MemberSummary>,
    /// Cost of the all-Vanilla reference on the same objective.
    #[serde(default)]
    pub vanilla_cost_ms: f64,
    /// Set when this plan came from a warm-started (scenario-transfer)
    /// search; `None` for cold searches and `transfer: "off"` requests.
    #[serde(default)]
    pub warm_start: Option<WarmStartInfo>,
    /// Span timings, echoed only for `trace: true` requests. Never part
    /// of the cached plan — two requests for the same plan differing only
    /// in `trace` get bit-identical plan content.
    #[serde(default)]
    pub trace: Option<TraceInfo>,
}

impl PlanResponse {
    /// Speed-up of the plan over the all-Vanilla reference.
    pub fn speedup(&self) -> f64 {
        if self.best.best_cost_ms > 0.0 {
            self.vanilla_cost_ms / self.best.best_cost_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Service counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Server protocol revision.
    #[serde(default)]
    pub version: u32,
    /// Milliseconds since the server started.
    #[serde(default)]
    pub uptime_ms: u64,
    /// Requests handled (any kind).
    #[serde(default)]
    pub requests: u64,
    /// Plan/search requests handled.
    #[serde(default)]
    pub plans: u64,
    /// Plan-cache counters, aggregated over shards.
    #[serde(default)]
    pub plan_cache: CacheStats,
    /// Per-shard plan-cache occupancy and counters, in shard order.
    #[serde(default)]
    pub plan_cache_shards: Vec<ShardStats>,
    /// Profile-cache counters, aggregated over shards.
    #[serde(default)]
    pub profile_cache: CacheStats,
    /// Per-shard profile-cache occupancy and counters, in shard order.
    #[serde(default)]
    pub profile_cache_shards: Vec<ShardStats>,
    /// Worker threads in the search pool.
    #[serde(default)]
    pub workers: u64,
    /// Tagged (protocol-v2) requests handled.
    #[serde(default)]
    pub pipelined: u64,
    /// Highest per-connection in-flight depth observed since start.
    #[serde(default)]
    pub in_flight_peak: u64,
    /// Per-connection cap on tagged requests in flight (the reader stops
    /// parsing once a connection reaches it, so TCP flow control
    /// backpressures the client).
    #[serde(default)]
    pub max_in_flight: u64,
    /// Server-wide scenario-transfer policy (`"auto"` or `"off"`).
    #[serde(default)]
    pub transfer: TransferMode,
    /// Plan requests answered via scenario transfer (a warm-started search
    /// or a cached warm plan) since start.
    #[serde(default)]
    pub transfer_hits: u64,
    /// Fresh warm-started portfolio searches executed since start.
    #[serde(default)]
    pub warm_starts: u64,
    /// Mean donor distance over all transfer hits (0 when none yet).
    #[serde(default)]
    pub mean_donor_distance: f64,
    /// Scenarios currently held in the transfer index.
    #[serde(default)]
    pub index_entries: u64,
    /// Transient `accept()` failures (e.g. fd exhaustion) since start.
    /// Each one triggers an acceptor back-off instead of a hot retry loop.
    #[serde(default)]
    pub accept_errors: u64,
}

/// One latency histogram on the wire: pre-computed quantiles plus the
/// sparse bucket table, so clients can merge and re-quantile snapshots
/// (`qsdnn_obs::HistogramSnapshot::from_raw`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramMsg {
    /// Number of recorded values.
    #[serde(default)]
    pub count: u64,
    /// Sum of recorded values, microseconds.
    #[serde(default)]
    pub sum_us: u64,
    /// Median estimate, microseconds.
    #[serde(default)]
    pub p50_us: u64,
    /// 90th percentile estimate, microseconds.
    #[serde(default)]
    pub p90_us: u64,
    /// 99th percentile estimate, microseconds.
    #[serde(default)]
    pub p99_us: u64,
    /// 99.9th percentile estimate, microseconds.
    #[serde(default)]
    pub p999_us: u64,
    /// Non-empty buckets as `(bucket_index, upper_bound_us, count)`
    /// triples in ascending order.
    #[serde(default)]
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramMsg {
    /// Builds the wire form of a histogram snapshot.
    pub fn from_snapshot(snap: &qsdnn_obs::HistogramSnapshot) -> Self {
        HistogramMsg {
            count: snap.count(),
            sum_us: snap.sum(),
            p50_us: snap.p50(),
            p90_us: snap.p90(),
            p99_us: snap.p99(),
            p999_us: snap.p999(),
            buckets: snap
                .nonzero_buckets()
                .into_iter()
                .map(|(i, upper, n)| (i as u64, upper, n))
                .collect(),
        }
    }

    /// Reconstructs a mergeable snapshot from the wire form.
    pub fn to_snapshot(&self) -> qsdnn_obs::HistogramSnapshot {
        let entries: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .map(|&(i, _, n)| (i as usize, n))
            .collect();
        qsdnn_obs::HistogramSnapshot::from_raw(&entries, self.sum_us)
    }
}

/// One labeled sample's value in a metrics snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Latency distribution.
    Histogram(HistogramMsg),
}

/// One labeled sample inside a metric family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Label key/value pairs.
    #[serde(default)]
    pub labels: Vec<(String, String)>,
    /// The sample's value. Genuinely mandatory: a sample without a value
    /// is not a sample, and `MetricValue` has no meaningful default.
    // LINT-ALLOW(wire-compat)
    pub value: MetricValue,
}

/// One named metric with all its labeled samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFamily {
    /// Family name (e.g. `qsdnn_request_us`).
    #[serde(default)]
    pub name: String,
    /// Human-readable description.
    #[serde(default)]
    pub help: String,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    #[serde(default)]
    pub kind: String,
    /// Samples in registration order.
    #[serde(default)]
    pub samples: Vec<MetricSample>,
}

/// Full observability snapshot (the `metrics` request's answer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Milliseconds since the server started (monotonic, ≥ 1).
    #[serde(default)]
    pub uptime_ms: u64,
    /// Every metric family the server exports.
    #[serde(default)]
    pub families: Vec<MetricFamily>,
}

impl MetricsResponse {
    /// Finds a family by name.
    pub fn family(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// One registered platform, as reported by the `platforms` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformInfo {
    /// Registry name — the string a request's `platform` field selects.
    #[serde(default)]
    pub name: String,
    /// Spec kind: `"analytical"` or `"measured"`.
    #[serde(default)]
    pub kind: String,
    /// Human-readable description from the spec.
    #[serde(default)]
    pub description: String,
    /// Spec content fingerprint (hex) — the value that joins this
    /// platform's plan and profile cache keys when it is selected
    /// explicitly.
    #[serde(default)]
    pub fingerprint: String,
    /// Whether this is the server's default platform (the one an absent
    /// `platform` field resolves to).
    #[serde(default)]
    pub is_default: bool,
    /// Whether the spec models a GPU (`false` means `"gpgpu"`-mode
    /// requests against this platform are rejected).
    #[serde(default)]
    pub gpu: bool,
}

/// Answer to the `platforms` request: the registry in name order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformsResponse {
    /// Every registered platform, sorted by name.
    #[serde(default)]
    pub platforms: Vec<PlatformInfo>,
}

impl PlatformsResponse {
    /// Finds a platform by registry name.
    pub fn platform(&self, name: &str) -> Option<&PlatformInfo> {
        self.platforms.iter().find(|p| p.name == name)
    }
}

/// One flight-recorder journal event on the wire (and in post-mortem
/// dump files).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventMsg {
    /// Microseconds since the recorder (≈ the server) started.
    #[serde(default)]
    pub ts_us: u64,
    /// Thread that emitted the event.
    #[serde(default)]
    pub thread: String,
    /// Event kind label (`request_begin`, `cache_hit`, `stage`, ...).
    #[serde(default)]
    pub event: String,
    /// Flight-recorder serial of the request the event belongs to
    /// (0 = not tied to a request).
    #[serde(default)]
    pub serial: u64,
    /// Subject cache key as its canonical 16-hex-digit string (empty =
    /// none).
    #[serde(default)]
    pub key: String,
    /// Kind-specific raw payload (e.g. stage id, pool id, distance in
    /// millionths).
    #[serde(default)]
    pub a: u64,
    /// Kind-specific raw payload (e.g. duration µs, shard index, queue
    /// depth).
    #[serde(default)]
    pub b: u64,
    /// Human decoding of the payloads (e.g. `stage=search 1532us`);
    /// empty when the payloads speak for themselves.
    #[serde(default)]
    pub detail: String,
}

/// One retained journal excerpt for a slow or panicked request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarMsg {
    /// Request kind label (`plan`, `search`, ...).
    #[serde(default)]
    pub kind: String,
    /// The request's flight-recorder serial.
    #[serde(default)]
    pub serial: u64,
    /// End-to-end request duration, milliseconds.
    #[serde(default)]
    pub total_ms: f64,
    /// Plan key the request resolved to (empty when it never reached
    /// one).
    #[serde(default)]
    pub plan_key: String,
    /// Whether the capture was triggered by a handler panic rather than
    /// the slow threshold.
    #[serde(default)]
    pub panicked: bool,
    /// Per-stage breakdown decoded from the excerpt's `stage` events, in
    /// pipeline order.
    #[serde(default)]
    pub stages: Vec<StageTiming>,
    /// Every journal event carrying the request's serial, oldest first.
    #[serde(default)]
    pub events: Vec<EventMsg>,
}

/// Answer to the `events` request: journal dump plus exemplars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventsResponse {
    /// Whether the flight recorder is enabled at all.
    #[serde(default)]
    pub recorder_enabled: bool,
    /// Events ever recorded (resident + already overwritten).
    #[serde(default)]
    pub events_total: u64,
    /// Per-thread ring capacity (events retained per thread).
    #[serde(default)]
    pub ring_capacity: u64,
    /// Every event still resident in the rings, oldest first.
    #[serde(default)]
    pub events: Vec<EventMsg>,
    /// Retained slow/panic exemplars, by kind then capture time.
    #[serde(default)]
    pub exemplars: Vec<ExemplarMsg>,
}

/// One live thread in the task table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMsg {
    /// Thread name (`qsdnn-worker-0`, `qsdnn-dispatch-1`, ...).
    #[serde(default)]
    pub thread: String,
    /// What the thread is doing: `idle`, a request kind (`plan`, ...),
    /// or a pool job (`search-job`, `dispatch-job`).
    #[serde(default)]
    pub state: String,
    /// Flight-recorder serial of the request being worked on (0 = none).
    #[serde(default)]
    pub serial: u64,
    /// Pipeline stage last reported (empty when idle / not staged).
    #[serde(default)]
    pub stage: String,
    /// Subject plan key, canonical hex (empty = none).
    #[serde(default)]
    pub key: String,
    /// Milliseconds the thread has been in this state.
    #[serde(default)]
    pub elapsed_ms: f64,
}

/// Answer to the `tasks` request: the live task table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TasksResponse {
    /// Whether the flight recorder is enabled at all.
    #[serde(default)]
    pub recorder_enabled: bool,
    /// Events ever recorded — delta this between polls for an event
    /// rate.
    #[serde(default)]
    pub events_total: u64,
    /// Every registered thread, in registration order.
    #[serde(default)]
    pub tasks: Vec<TaskMsg>,
}

/// The post-mortem dump a server writes under its spill dir on panic or
/// SIGTERM: the full flight-recorder state at the moment of death, as one
/// JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PostmortemDump {
    /// Why the dump was written (`panic`, `sigterm`, `shutdown`).
    #[serde(default)]
    pub reason: String,
    /// Server protocol revision that wrote the dump.
    #[serde(default)]
    pub version: u32,
    /// Milliseconds the server had been up.
    #[serde(default)]
    pub uptime_ms: u64,
    /// I/O layer the server was running (`threads` or `epoll`).
    #[serde(default)]
    pub io: String,
    /// Events ever recorded.
    #[serde(default)]
    pub events_total: u64,
    /// The task table at the moment of death.
    #[serde(default)]
    pub tasks: Vec<TaskMsg>,
    /// Every event still resident in the rings, oldest first.
    #[serde(default)]
    pub events: Vec<EventMsg>,
    /// Retained slow/panic exemplars.
    #[serde(default)]
    pub exemplars: Vec<ExemplarMsg>,
}

/// Server → client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake answer.
    Pong {
        /// Server protocol revision.
        version: u32,
    },
    /// Profile result.
    Profile(ProfileResponse),
    /// Plan/search result.
    Plan(PlanResponse),
    /// Counters.
    Stats(StatsResponse),
    /// Observability snapshot.
    Metrics(MetricsResponse),
    /// Platform registry listing.
    Platforms(PlatformsResponse),
    /// Flight-recorder journal dump.
    Events(EventsResponse),
    /// Flight-recorder live task table.
    Tasks(TasksResponse),
    /// Request-level failure (the connection stays usable).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Writes one message as a JSON line.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> Result<(), ServeError> {
    let json = serde_json::to_string(msg).map_err(|e| ServeError::Protocol(e.to_string()))?;
    debug_assert!(
        !json.contains('\n'),
        "JSON-lines framing requires single-line docs"
    );
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()?;
    Ok(())
}

/// Reads one JSON-line message; `Ok(None)` on clean EOF. Blank lines are
/// skipped rather than treated as EOF, so a stray keepalive newline never
/// drops a live connection.
///
/// # Errors
///
/// Propagates I/O failures and malformed JSON.
pub fn read_message<T: serde::Deserialize>(r: &mut impl BufRead) -> Result<Option<T>, ServeError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // A stray keepalive newline is not EOF; keep the connection.
            continue;
        }
        return serde_json::from_str(trimmed)
            .map(Some)
            .map_err(|e| ServeError::Protocol(e.to_string()));
    }
}

/// Reads one raw line, surviving socket read timeouts: when the read times
/// out mid-line, the bytes received so far stay in `partial` and the next
/// call resumes the same line, so framing survives `WouldBlock`/`TimedOut`
/// errors. Blank keepalive lines are skipped; `Ok(None)` is a clean EOF.
/// Both the server's connection handlers and [`crate::PlanClient`] frame
/// their reads through this.
///
/// # Errors
///
/// Propagates I/O failures (timeouts included — `partial` stays valid).
pub fn read_line_resumable(
    r: &mut impl BufRead,
    partial: &mut String,
) -> Result<Option<String>, ServeError> {
    loop {
        match r.read_line(partial) {
            Err(e) => return Err(ServeError::Io(e)),
            Ok(0) if partial.trim().is_empty() => {
                partial.clear();
                return Ok(None); // clean EOF
            }
            Ok(n) if n > 0 && partial.ends_with('\n') && partial.trim().is_empty() => {
                // A stray keepalive newline is not EOF or a message.
                partial.clear();
                continue;
            }
            // A complete line — or EOF mid-line (`read_line` only stops
            // short of a newline at EOF): hand over what arrived.
            Ok(_) => {}
        }
        return Ok(Some(std::mem::take(partial)));
    }
}

/// Incremental JSON-lines splitter for nonblocking readers.
///
/// The epoll connection layer reads whatever bytes the socket has and
/// pushes them here; [`FrameBuffer::next_frame`] hands back complete
/// `\n`-terminated lines one at a time, whatever the fragmentation — a
/// frame split mid-byte of a UTF-8 multibyte sequence, or right across the
/// terminator, reassembles identically because splitting happens on raw
/// bytes and UTF-8 validation happens per complete frame. Blank
/// (whitespace-only) lines are skipped, matching
/// [`read_line_resumable`]'s keepalive behavior on the threaded path.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so `next_frame` never
    /// memmoves per frame.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing, so a long-lived connection's buffer does
        // not accumulate an unbounded consumed prefix. The prefix must
        // also cover at least half the buffer: compacting a fixed-size
        // prefix off a large parse backlog would memmove the whole tail
        // over and over (O(n²) on the reactor thread); halving keeps the
        // copy amortized O(1) per byte.
        let compact = self.start == self.buf.len()
            || (self.start >= 64 * 1024 && self.start * 2 >= self.buf.len());
        if self.start > 0 && compact {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed as frames — the length of the
    /// (possibly still incomplete) data after the last extracted frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the unconsumed bytes contain at least one line terminator
    /// (i.e. whether [`FrameBuffer::buffered`] growth is a single frame
    /// still in flight rather than a parse backlog).
    pub fn has_terminator(&self) -> bool {
        self.buf
            .get(self.start..)
            .is_some_and(|pending| pending.contains(&b'\n'))
    }

    /// Extracts the next complete, non-blank line (terminator stripped).
    /// Returns `None` when no complete line is buffered yet.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        loop {
            let pending = self.buf.get(self.start..)?;
            let rel = pending.iter().position(|&b| b == b'\n')?;
            let line = pending.get(..rel).unwrap_or(&[]);
            // Strip an optional carriage return so `nc -C`-style clients
            // work, mirroring the `trim()` on the threaded path.
            let line = line.strip_suffix(b"\r").unwrap_or(line);
            let blank = line.iter().all(|b| b.is_ascii_whitespace());
            let frame = if blank { None } else { Some(line.to_vec()) };
            self.start += rel + 1;
            if let Some(frame) = frame {
                return Some(frame);
            }
            // Blank keepalive line: skip it and keep scanning.
        }
    }

    /// At EOF: takes a trailing unterminated line, if any. The threaded
    /// path's [`read_line_resumable`] hands over a partial line when the
    /// peer closes without a final `\n`; this is the nonblocking
    /// equivalent, so half-close clients get their last request answered
    /// on either connection layer.
    pub fn take_partial(&mut self) -> Option<Vec<u8>> {
        let tail = self.buf.get(self.start..).unwrap_or(&[]);
        let tail = tail.strip_suffix(b"\r").unwrap_or(tail);
        let frame = if tail.iter().all(|b| b.is_ascii_whitespace()) {
            None
        } else {
            Some(tail.to_vec())
        };
        self.buf.clear();
        self.start = 0;
        frame
    }

    /// Extracts the next complete binary frame, whatever the
    /// fragmentation — the header and body reassemble across arbitrary
    /// byte-boundary splits exactly like [`FrameBuffer::next_frame`]
    /// reassembles JSON lines. `max_body` bounds the *declared* body
    /// length, so a hostile length prefix is rejected before any body
    /// bytes are awaited (let alone buffered).
    pub fn next_binary_frame(&mut self, max_body: usize) -> BinaryFrameStatus {
        let Some(pending) = self.buf.get(self.start..) else {
            return BinaryFrameStatus::NeedMore;
        };
        let Some(&magic) = pending.first() else {
            return BinaryFrameStatus::NeedMore;
        };
        if magic != FRAME_MAGIC {
            return BinaryFrameStatus::Corrupt(format!(
                "protocol error: bad frame magic 0x{magic:02x} (expected 0x{FRAME_MAGIC:02x}); \
                 JSON lines are not valid on a binary connection"
            ));
        }
        let Some(&kind) = pending.get(1) else {
            return BinaryFrameStatus::NeedMore;
        };
        let tagged = match kind {
            FRAME_KIND_BARE => false,
            FRAME_KIND_TAGGED => true,
            other => {
                return BinaryFrameStatus::Corrupt(format!(
                    "protocol error: unknown frame kind 0x{other:02x}"
                ));
            }
        };
        let Some(len_bytes) = pending.get(2..6) else {
            return BinaryFrameStatus::NeedMore;
        };
        let Ok(len_arr) = <[u8; 4]>::try_from(len_bytes) else {
            return BinaryFrameStatus::NeedMore;
        };
        let body_len = u32::from_le_bytes(len_arr) as usize;
        if body_len > max_body {
            return BinaryFrameStatus::Corrupt(format!(
                "protocol error: declared frame body of {body_len} bytes exceeds the \
                 {max_body}-byte frame bound"
            ));
        }
        let header = if tagged { BINARY_FRAME_OVERHEAD } else { 6 };
        let id = if tagged {
            let Some(id_bytes) = pending.get(6..BINARY_FRAME_OVERHEAD) else {
                return BinaryFrameStatus::NeedMore;
            };
            let Ok(id_arr) = <[u8; 8]>::try_from(id_bytes) else {
                return BinaryFrameStatus::NeedMore;
            };
            Some(u64::from_le_bytes(id_arr))
        } else {
            None
        };
        let Some(body) = pending.get(header..header + body_len) else {
            return BinaryFrameStatus::NeedMore;
        };
        let body = body.to_vec();
        self.start += header + body_len;
        BinaryFrameStatus::Frame(BinaryFrame { id, body })
    }
}

// ---------------------------------------------------------------------------
// Binary framing (protocol v3)
// ---------------------------------------------------------------------------

/// One decoded binary frame: the optional pipelining id from the header
/// and the still-encoded message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryFrame {
    /// Tag id for pipelined frames; `None` for bare (v1-semantics) ones.
    pub id: Option<u64>,
    /// The codec-encoded message payload (see [`decode_body`]).
    pub body: Vec<u8>,
}

/// Outcome of [`FrameBuffer::next_binary_frame`].
#[derive(Debug)]
pub enum BinaryFrameStatus {
    /// The buffered bytes do not yet hold a complete frame.
    NeedMore,
    /// One complete frame, consumed from the buffer.
    Frame(BinaryFrame),
    /// The header violates the framing (bad magic, unknown kind, body
    /// length beyond the bound); the stream cannot be resynced.
    Corrupt(String),
}

// Value-codec tags. The codec is self-describing over the vendored
// `serde::Value` data model — the same tree the JSON framing writes — so
// every request/response type serializes without per-type wire code, and
// a decoded v3 message is field-for-field identical to its JSON twin
// (floats ride as raw IEEE-754 bits, exactly what the JSON shim's
// shortest-roundtrip text reproduces).
const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_UINT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STRING: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

fn encode_len(len: usize, out: &mut Vec<u8>) -> Result<(), ServeError> {
    let n = u32::try_from(len)
        .map_err(|_| ServeError::Protocol("binary codec: length exceeds u32".to_string()))?;
    out.extend_from_slice(&n.to_le_bytes());
    Ok(())
}

fn encode_value_into(v: &Value, out: &mut Vec<u8>, depth: usize) -> Result<(), ServeError> {
    if depth > MAX_BINARY_DEPTH {
        return Err(ServeError::Protocol(
            "binary codec: nesting too deep".to_string(),
        ));
    }
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            encode_len(s.len(), out)?;
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_len(items.len(), out)?;
            for item in items {
                encode_value_into(item, out, depth + 1)?;
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            encode_len(fields.len(), out)?;
            for (k, val) in fields {
                encode_len(k.len(), out)?;
                out.extend_from_slice(k.as_bytes());
                encode_value_into(val, out, depth + 1)?;
            }
        }
    }
    Ok(())
}

struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn err(&self, msg: &str) -> ServeError {
        ServeError::Protocol(format!("binary codec error at byte {}: {msg}", self.pos))
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.err("length overflow"))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated payload"))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("truncated payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        let bytes = self.take(4)?;
        let arr = <[u8; 4]>::try_from(bytes).map_err(|_| self.err("truncated u32"))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let bytes = self.take(8)?;
        let arr = <[u8; 8]>::try_from(bytes).map_err(|_| self.err("truncated u64"))?;
        Ok(u64::from_le_bytes(arr))
    }
}

fn decode_value_inner(r: &mut BinReader<'_>, depth: usize) -> Result<Value, ServeError> {
    if depth > MAX_BINARY_DEPTH {
        return Err(r.err("nesting too deep"));
    }
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(r.u64()? as i64)),
        TAG_UINT => Ok(Value::UInt(r.u64()?)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(r.u64()?))),
        TAG_STRING => {
            let n = r.u32()? as usize;
            let bytes = r.take(n)?;
            let s = std::str::from_utf8(bytes).map_err(|_| r.err("string is not valid UTF-8"))?;
            Ok(Value::String(s.to_string()))
        }
        TAG_ARRAY => {
            let n = r.u32()? as usize;
            // Every element costs at least its tag byte, so a count
            // beyond the remaining payload is hostile — reject it before
            // reserving a poisoned capacity.
            if n > r.remaining() {
                return Err(r.err("array count exceeds payload"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value_inner(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = r.u32()? as usize;
            // Every field costs at least a 4-byte key length plus a
            // 1-byte value tag.
            if n.saturating_mul(5) > r.remaining() {
                return Err(r.err("field count exceeds payload"));
            }
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let klen = r.u32()? as usize;
                let kbytes = r.take(klen)?;
                let key = std::str::from_utf8(kbytes)
                    .map_err(|_| r.err("object key is not valid UTF-8"))?
                    .to_string();
                let value = decode_value_inner(r, depth + 1)?;
                fields.push((key, value));
            }
            Ok(Value::Object(fields))
        }
        other => Err(r.err(&format!("unknown value tag 0x{other:02x}"))),
    }
}

/// Decodes one codec payload into a [`Value`] tree, requiring the whole
/// slice to be consumed.
///
/// # Errors
///
/// Returns an error describing the first framing/codec violation.
pub fn decode_value(bytes: &[u8]) -> Result<Value, ServeError> {
    let mut r = BinReader { bytes, pos: 0 };
    let v = decode_value_inner(&mut r, 0)?;
    if r.pos != bytes.len() {
        return Err(r.err("trailing bytes after value"));
    }
    Ok(v)
}

/// Encodes a message as a binary-codec body (no frame header).
///
/// # Errors
///
/// Fails on a value the codec cannot represent (nesting beyond the
/// depth guard, or a string/collection length beyond `u32`).
pub fn encode_body<T: Serialize + ?Sized>(msg: &T) -> Result<Vec<u8>, ServeError> {
    let mut out = Vec::with_capacity(64);
    encode_value_into(&msg.serialize(), &mut out, 0)?;
    Ok(out)
}

/// Decodes a binary-codec body into a typed message.
///
/// # Errors
///
/// Fails on codec violations or a shape mismatch.
pub fn decode_body<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, ServeError> {
    T::deserialize(&decode_value(bytes)?).map_err(|e| ServeError::Protocol(e.to_string()))
}

/// Wraps an encoded body in a binary frame header — the one copy a
/// preserialized (cached) body pays on its way to the outbox.
///
/// # Errors
///
/// Fails when `body` is longer than a `u32` can declare.
pub fn encode_binary_frame(id: Option<u64>, body: &[u8]) -> Result<Vec<u8>, ServeError> {
    let len = u32::try_from(body.len())
        .map_err(|_| ServeError::Protocol("frame body exceeds u32 length".to_string()))?;
    let mut out = Vec::with_capacity(BINARY_FRAME_OVERHEAD + body.len());
    out.push(FRAME_MAGIC);
    match id {
        Some(id) => {
            out.push(FRAME_KIND_TAGGED);
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
        None => {
            out.push(FRAME_KIND_BARE);
            out.extend_from_slice(&len.to_le_bytes());
        }
    }
    out.extend_from_slice(body);
    Ok(out)
}

/// Writes one message as a binary frame (tagged when `id` is given).
///
/// # Errors
///
/// Propagates codec and I/O failures.
pub fn write_binary_message<T: Serialize + ?Sized>(
    w: &mut impl Write,
    id: Option<u64>,
    msg: &T,
) -> Result<(), ServeError> {
    let body = encode_body(msg)?;
    let frame = encode_binary_frame(id, &body)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one binary frame from a blocking reader, surviving read
/// timeouts: partially received frames stay in `frames` and the next
/// call resumes them, mirroring [`read_line_resumable`] for the JSON
/// framing. `Ok(None)` is a clean EOF on a frame boundary.
///
/// # Errors
///
/// Propagates I/O failures (timeouts included — buffered bytes stay
/// valid) and framing violations, including EOF mid-frame (a binary
/// frame, unlike a JSON line, has an explicit length — a torn tail is
/// corruption, not a final request).
pub fn read_binary_frame_resumable(
    r: &mut impl std::io::Read,
    frames: &mut FrameBuffer,
    max_body: usize,
) -> Result<Option<BinaryFrame>, ServeError> {
    loop {
        match frames.next_binary_frame(max_body) {
            BinaryFrameStatus::Frame(frame) => return Ok(Some(frame)),
            BinaryFrameStatus::Corrupt(message) => return Err(ServeError::Protocol(message)),
            BinaryFrameStatus::NeedMore => {}
        }
        let mut chunk = [0u8; 16 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => {
                return if frames.buffered() == 0 {
                    Ok(None)
                } else {
                    Err(ServeError::Protocol(
                        "connection closed mid-frame".to_string(),
                    ))
                };
            }
            Ok(n) => {
                if let Some(bytes) = chunk.get(..n) {
                    frames.push(bytes);
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
}

/// Encodes an error response as a complete binary frame, for reply
/// paths that must not themselves fail. A flat error object cannot trip
/// the codec's depth or length guards; if it somehow did, the empty
/// buffer tells the caller to write nothing rather than a torn frame.
pub(crate) fn binary_error_frame(id: Option<u64>, message: &str) -> Vec<u8> {
    let resp = Response::Error {
        message: message.to_string(),
    };
    encode_body(&resp)
        .and_then(|body| encode_binary_frame(id, &body))
        .unwrap_or_default()
}

/// Decodes a binary frame's body as a request, preserving the header id
/// as the v2-equivalent envelope.
///
/// # Errors
///
/// Fails on codec violations or an unknown request shape.
pub fn parse_binary_request(frame: &BinaryFrame) -> Result<RequestFrame, ServeError> {
    let req: Request = decode_body(&frame.body)?;
    Ok(match frame.id {
        Some(id) => RequestFrame::Tagged(TaggedRequest { id, req }),
        None => RequestFrame::Untagged(req),
    })
}

/// Decodes a binary frame's body as a response, preserving the header id.
///
/// # Errors
///
/// Fails on codec violations or an unknown response shape.
pub fn parse_binary_response(frame: &BinaryFrame) -> Result<ResponseFrame, ServeError> {
    let resp: Response = decode_body(&frame.body)?;
    Ok(match frame.id {
        Some(id) => ResponseFrame::Tagged(TaggedResponse { id, resp }),
        None => ResponseFrame::Untagged(resp),
    })
}

/// Like [`read_message`], but built on [`read_line_resumable`]: safe to
/// call on a socket with a read timeout. The server and [`crate::PlanClient`]
/// now frame reads themselves (they must tell envelopes from bare
/// messages), so this is a convenience for single-type wire consumers —
/// e.g. a hand-rolled v1 client polling with a timeout.
///
/// # Errors
///
/// Propagates I/O failures (timeouts included — `partial` stays valid) and
/// malformed JSON (`partial` is consumed).
pub fn read_message_resumable<T: serde::Deserialize>(
    r: &mut impl BufRead,
    partial: &mut String,
) -> Result<Option<T>, ServeError> {
    match read_line_resumable(r, partial)? {
        None => Ok(None),
        Some(line) => serde_json::from_str(line.trim())
            .map(Some)
            .map_err(|e| ServeError::Protocol(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::toy;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Ping {
                version: PROTOCOL_VERSION,
            },
            Request::Profile(ProfileRequest {
                network: "lenet5".into(),
                batch: 2,
                mode: Mode::Cpu,
                repeats: 5,
                platform: String::new(),
            }),
            Request::Search(SearchRequest {
                lut: toy::fig1_lut(),
                objective: Objective::Weighted { lambda: 0.5 },
                episodes: 300,
                seeds: vec![1, 2, 3],
                transfer: TransferMode::Off,
                trace: true,
                platform: "sim-gpu-heavy".into(),
            }),
            Request::Plan(PlanRequest::latency("mobilenet_v1")),
            Request::Plan(PlanRequest::latency("lenet5").on_platform("sim-cpu-only")),
            Request::Stats,
            Request::Metrics,
            Request::Platforms,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            assert!(!json.contains('\n'));
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(req, back);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Plan(PlanResponse {
            network: "lenet5".into(),
            plan_key: "00ff".into(),
            cache_hit: true,
            best: SearchReport {
                method: "qs-dnn".into(),
                network: "lenet5".into(),
                best_assignment: vec![0, 1, 2],
                best_cost_ms: 1.25,
                episodes: 10,
                curve: Vec::new(),
                wall_time_ms: 3.5,
            },
            winner: "qs-dnn(seed=0x1)".into(),
            members: vec![MemberSummary {
                label: "pbqp".into(),
                best_cost_ms: Some(1.5),
                episodes: 0,
                wall_time_ms: 0.1,
            }],
            vanilla_cost_ms: 5.0,
            warm_start: Some(WarmStartInfo {
                donor_key: "00aa".into(),
                donor_network: "lenet5".into(),
                donor_distance: 0.5,
                transferred_states: 42,
                episodes: 250,
            }),
            trace: Some(TraceInfo {
                stages: vec![StageTiming {
                    stage: "search".into(),
                    ms: 12.5,
                }],
                total_ms: 13.0,
            }),
        });
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
        let err = Response::Error {
            message: "unknown network".into(),
        };
        let back: Response = serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert_eq!(err, back);
    }

    #[test]
    fn stats_response_roundtrips_with_shard_breakdown() {
        let shard = ShardStats {
            entries: 3,
            in_flight: 1,
            capacity: 512,
            hits: 10,
            misses: 4,
            coalesced: 2,
            spill_loads: 1,
            evictions: 5,
            capacity_stalls: 1,
        };
        let resp = Response::Stats(StatsResponse {
            version: PROTOCOL_VERSION,
            uptime_ms: 12,
            requests: 20,
            plans: 17,
            plan_cache: CacheStats {
                hits: 10,
                misses: 4,
                coalesced: 2,
                spill_loads: 1,
                entries: 3,
                in_flight: 1,
                evictions: 5,
                capacity_stalls: 1,
                shards: 2,
            },
            plan_cache_shards: vec![shard, shard],
            profile_cache: CacheStats {
                hits: 0,
                misses: 0,
                coalesced: 0,
                spill_loads: 0,
                entries: 0,
                in_flight: 0,
                evictions: 0,
                capacity_stalls: 0,
                shards: 2,
            },
            profile_cache_shards: Vec::new(),
            workers: 8,
            pipelined: 9,
            in_flight_peak: 5,
            max_in_flight: 32,
            transfer: TransferMode::Auto,
            transfer_hits: 3,
            warm_starts: 2,
            mean_donor_distance: 0.25,
            index_entries: 7,
            accept_errors: 1,
        });
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains('\n'));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn tagged_envelope_roundtrips_and_is_distinguishable() {
        let tagged = TaggedRequest {
            id: 41,
            req: Request::Plan(PlanRequest::latency("lenet5")),
        };
        let json = serde_json::to_string(&tagged).unwrap();
        assert!(json.starts_with("{\"id\":41,"), "{json}");
        match parse_request_frame(&json).unwrap() {
            RequestFrame::Tagged(back) => assert_eq!(back, tagged),
            other => panic!("envelope parsed as {other:?}"),
        }
        // The same request without the envelope parses as a v1 frame.
        let bare = serde_json::to_string(&tagged.req).unwrap();
        match parse_request_frame(&bare).unwrap() {
            RequestFrame::Untagged(back) => assert_eq!(back, tagged.req),
            other => panic!("bare request parsed as {other:?}"),
        }
        // Unit-variant requests serialize as strings, not objects; they
        // must still parse as v1 frames.
        match parse_request_frame("\"Stats\"").unwrap() {
            RequestFrame::Untagged(Request::Stats) => {}
            other => panic!("stats parsed as {other:?}"),
        }
        assert!(
            parse_request_frame("{\"id\":1}").is_err(),
            "envelope needs req"
        );
        assert!(parse_request_frame("{nope").is_err());
    }

    #[test]
    fn tagged_response_roundtrips() {
        let tagged = TaggedResponse {
            id: 7,
            resp: Response::Error {
                message: "nope".into(),
            },
        };
        let json = serde_json::to_string(&tagged).unwrap();
        match parse_response_frame(&json).unwrap() {
            ResponseFrame::Tagged(back) => assert_eq!(back, tagged),
            other => panic!("envelope parsed as {other:?}"),
        }
        let bare = serde_json::to_string(&tagged.resp).unwrap();
        match parse_response_frame(&bare).unwrap() {
            ResponseFrame::Untagged(back) => assert_eq!(back, tagged.resp),
            other => panic!("bare response parsed as {other:?}"),
        }
    }

    #[test]
    fn framing_roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Stats).unwrap();
        write_message(&mut buf, &Request::Ping { version: 1 }).unwrap();
        buf.extend_from_slice(b"\n\n"); // stray blank lines must be skipped
        write_message(&mut buf, &Request::Stats).unwrap();
        let mut r = std::io::BufReader::new(buf.as_slice());
        let a: Request = read_message(&mut r).unwrap().unwrap();
        let b: Request = read_message(&mut r).unwrap().unwrap();
        assert_eq!(a, Request::Stats);
        assert_eq!(b, Request::Ping { version: 1 });
        let c: Request = read_message(&mut r).unwrap().expect("blank lines skipped");
        assert_eq!(c, Request::Stats);
        assert!(read_message::<Request>(&mut r).unwrap().is_none(), "EOF");
    }

    /// A reader that yields its chunks one `read` at a time, with a
    /// `WouldBlock` wherever a chunk is empty — the shape of a socket
    /// read timeout firing mid-line.
    struct Stutter(std::collections::VecDeque<Vec<u8>>);

    impl std::io::Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.pop_front() {
                Some(c) if c.is_empty() => {
                    Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
                }
                Some(c) => {
                    buf[..c.len()].copy_from_slice(&c);
                    Ok(c.len())
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn resumable_read_survives_a_timeout_mid_line() {
        let mut line = Vec::new();
        write_message(&mut line, &Request::Stats).unwrap();
        let (head, tail) = line.split_at(line.len() / 2);
        let mut r = std::io::BufReader::new(Stutter(
            [head.to_vec(), Vec::new(), tail.to_vec()]
                .into_iter()
                .collect(),
        ));
        let mut partial = String::new();
        // First call: half the line arrives, then the timeout fires. The
        // half-line must survive in `partial`.
        let err = read_message_resumable::<Request>(&mut r, &mut partial)
            .expect_err("timeout propagates");
        assert!(matches!(
            err,
            ServeError::Io(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
        ));
        assert!(!partial.is_empty(), "partial line must be preserved");
        // Second call: the rest of the line completes the message.
        let msg = read_message_resumable::<Request>(&mut r, &mut partial)
            .unwrap()
            .unwrap();
        assert_eq!(msg, Request::Stats);
        assert!(partial.is_empty());
        // Clean EOF afterwards.
        assert!(read_message_resumable::<Request>(&mut r, &mut partial)
            .unwrap()
            .is_none());
    }

    #[test]
    fn transfer_mode_is_lowercase_on_the_wire_and_defaults_to_auto() {
        assert_eq!(
            serde_json::to_string(&TransferMode::Auto).unwrap(),
            "\"auto\""
        );
        assert_eq!(
            serde_json::to_string(&TransferMode::Off).unwrap(),
            "\"off\""
        );
        let back: TransferMode = serde_json::from_str("\"off\"").unwrap();
        assert_eq!(back, TransferMode::Off);
        assert!(serde_json::from_str::<TransferMode>("\"maybe\"").is_err());
        assert_eq!("auto".parse::<TransferMode>().unwrap(), TransferMode::Auto);
        assert!("on".parse::<TransferMode>().is_err());

        // A v1 request without the field (old clients) parses as Auto, so
        // the wire stays backward compatible.
        let req = PlanRequest::latency("lenet5");
        let mut json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"transfer\":\"auto\""), "{json}");
        json = json.replace(",\"transfer\":\"auto\"", "");
        let back: PlanRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        // Likewise a pre-transfer response without `warm_start` parses.
        let resp = PlanResponse {
            network: "x".into(),
            plan_key: "k".into(),
            cache_hit: false,
            best: SearchReport {
                method: "m".into(),
                network: "x".into(),
                best_assignment: vec![0],
                best_cost_ms: 1.0,
                episodes: 1,
                curve: Vec::new(),
                wall_time_ms: 0.0,
            },
            winner: "m".into(),
            members: Vec::new(),
            vanilla_cost_ms: 2.0,
            warm_start: None,
            trace: None,
        };
        let json = serde_json::to_string(&resp)
            .unwrap()
            .replace(",\"warm_start\":null", "")
            .replace(",\"trace\":null", "");
        let back: PlanResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn frame_buffer_splits_on_newlines_whatever_the_fragmentation() {
        let mut fb = FrameBuffer::new();
        assert!(fb.next_frame().is_none());
        // One frame arriving a byte at a time.
        for b in b"{\"a\":1}" {
            fb.push(&[*b]);
            assert!(fb.next_frame().is_none(), "no terminator yet");
        }
        fb.push(b"\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"{\"a\":1}"[..]));
        assert!(fb.next_frame().is_none());
        // Several frames in one push, blank keepalives interleaved, CRLF
        // tolerated, and a trailing partial kept for later.
        fb.push(b"one\n\n  \r\ntwo\r\nthree");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"one"[..]));
        assert_eq!(fb.next_frame().as_deref(), Some(&b"two"[..]));
        assert!(fb.next_frame().is_none(), "`three` has no terminator");
        assert_eq!(fb.buffered(), 5);
        assert!(!fb.has_terminator());
        fb.push(b"!\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"three!"[..]));
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_survives_splits_inside_multibyte_utf8() {
        let line = "{\"net\":\"mobilé🔥\"}\n".as_bytes();
        for cut in 0..line.len() {
            let mut fb = FrameBuffer::new();
            fb.push(&line[..cut]);
            fb.push(&line[cut..]);
            let frame = fb.next_frame().expect("complete frame");
            assert_eq!(
                String::from_utf8(frame).expect("valid UTF-8"),
                "{\"net\":\"mobilé🔥\"}",
                "split at byte {cut}"
            );
        }
    }

    #[test]
    fn frame_buffer_hands_over_a_partial_line_at_eof() {
        let mut fb = FrameBuffer::new();
        fb.push(b"done\nhalf-a-request");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"done"[..]));
        assert_eq!(fb.take_partial().as_deref(), Some(&b"half-a-request"[..]));
        assert_eq!(fb.buffered(), 0);
        // Whitespace-only tails are keepalive noise, not a frame.
        fb.push(b"  \t ");
        assert!(fb.take_partial().is_none());
    }

    #[test]
    fn platform_field_is_optional_on_every_request_kind() {
        // Requests from clients predating the platform registry carry no
        // `platform` field; they must parse as the empty string (= the
        // server's default platform).
        let req = PlanRequest::latency("lenet5");
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"platform\":\"\""), "{json}");
        let stripped = json.replace(",\"platform\":\"\"", "");
        assert_ne!(stripped, json, "strip must remove the field");
        let back: PlanRequest = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, req);

        let profile = ProfileRequest {
            network: "lenet5".into(),
            batch: 1,
            mode: Mode::Cpu,
            repeats: 0,
            platform: String::new(),
        };
        let json = serde_json::to_string(&profile).unwrap();
        let back: ProfileRequest =
            serde_json::from_str(&json.replace(",\"platform\":\"\"", "")).unwrap();
        assert_eq!(back, profile);

        // And a pinned request keeps its platform through a roundtrip.
        let pinned = PlanRequest::latency("lenet5").on_platform("sim-gpu-heavy");
        let back: PlanRequest =
            serde_json::from_str(&serde_json::to_string(&pinned).unwrap()).unwrap();
        assert_eq!(back.platform, "sim-gpu-heavy");
    }

    #[test]
    fn platforms_listing_roundtrips() {
        let resp = Response::Platforms(PlatformsResponse {
            platforms: vec![
                PlatformInfo {
                    name: "sim-cpu-only".into(),
                    kind: "analytical".into(),
                    description: "big-core CPU, no GPU".into(),
                    fingerprint: "00ff00ff00ff00ff".into(),
                    is_default: false,
                    gpu: false,
                },
                PlatformInfo {
                    name: "sim-tx2".into(),
                    kind: "analytical".into(),
                    description: "calibrated Jetson TX2 model".into(),
                    fingerprint: "0123456789abcdef".into(),
                    is_default: true,
                    gpu: true,
                },
            ],
        });
        let json = serde_json::to_string(&resp).unwrap();
        assert!(!json.contains('\n'));
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
        if let Response::Platforms(ref list) = back {
            assert!(list.platform("sim-tx2").is_some_and(|p| p.is_default));
            assert!(list.platform("nope").is_none());
        }
    }

    #[test]
    fn speedup_is_vanilla_relative() {
        let mut resp = PlanResponse {
            network: "x".into(),
            plan_key: String::new(),
            cache_hit: false,
            best: SearchReport {
                method: "m".into(),
                network: "x".into(),
                best_assignment: vec![],
                best_cost_ms: 2.0,
                episodes: 0,
                curve: vec![],
                wall_time_ms: 0.0,
            },
            winner: String::new(),
            members: vec![],
            vanilla_cost_ms: 6.0,
            warm_start: None,
            trace: None,
        };
        assert!((resp.speedup() - 3.0).abs() < 1e-12);
        resp.best.best_cost_ms = 0.0;
        assert!(resp.speedup().is_infinite());
    }

    // -- binary framing (protocol v3) -----------------------------------

    fn sample_value() -> Value {
        Value::Object(vec![
            ("null".to_string(), Value::Null),
            ("no".to_string(), Value::Bool(false)),
            ("yes".to_string(), Value::Bool(true)),
            ("int".to_string(), Value::Int(-42)),
            ("big".to_string(), Value::UInt(u64::MAX)),
            ("float".to_string(), Value::Float(std::f64::consts::PI)),
            ("negzero".to_string(), Value::Float(-0.0)),
            (
                "text".to_string(),
                Value::String("héllo \"w\u{7}rld\"\n".to_string()),
            ),
            (
                "arr".to_string(),
                Value::Array(vec![
                    Value::Int(1),
                    Value::String(String::new()),
                    Value::Array(vec![]),
                    Value::Object(vec![]),
                ]),
            ),
        ])
    }

    #[test]
    fn binary_value_roundtrip_every_variant() {
        let v = sample_value();
        let mut out = Vec::new();
        encode_value_into(&v, &mut out, 0).unwrap();
        let back = decode_value(&out).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn binary_float_bits_survive() {
        for bits in [
            0u64,
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NAN.to_bits(),
            5e-324f64.to_bits(),
            1e300f64.to_bits(),
        ] {
            let v = Value::Float(f64::from_bits(bits));
            let mut out = Vec::new();
            encode_value_into(&v, &mut out, 0).unwrap();
            match decode_value(&out).unwrap() {
                Value::Float(f) => assert_eq!(f.to_bits(), bits),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn binary_depth_guard_rejects_both_ways() {
        let mut deep = Value::Int(0);
        for _ in 0..(MAX_BINARY_DEPTH + 10) {
            deep = Value::Array(vec![deep]);
        }
        let mut out = Vec::new();
        assert!(encode_value_into(&deep, &mut out, 0).is_err());
        // Hand-build the same nesting on the wire so the decoder's own
        // guard is exercised, not just the encoder's.
        let mut wire = Vec::new();
        for _ in 0..(MAX_BINARY_DEPTH + 10) {
            wire.push(TAG_ARRAY);
            wire.extend_from_slice(&1u32.to_le_bytes());
        }
        wire.push(TAG_NULL);
        let err = decode_value(&wire).unwrap_err().to_string();
        assert!(err.contains("deep"), "unexpected error: {err}");
    }

    #[test]
    fn binary_decode_rejects_hostile_counts_and_tags() {
        // Array claiming u32::MAX elements with a 1-byte payload.
        let mut wire = vec![TAG_ARRAY];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(TAG_NULL);
        assert!(decode_value(&wire).is_err());
        // Object claiming a huge field count.
        let mut wire = vec![TAG_OBJECT];
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_value(&wire).is_err());
        // Unknown tag.
        assert!(decode_value(&[0x77]).is_err());
        // Truncated string.
        let mut wire = vec![TAG_STRING];
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        assert!(decode_value(&wire).is_err());
        // Invalid UTF-8 in a string.
        let mut wire = vec![TAG_STRING];
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_value(&wire).is_err());
        // Trailing bytes after a complete value.
        assert!(decode_value(&[TAG_NULL, TAG_NULL]).is_err());
    }

    #[test]
    fn binary_request_roundtrips_match_json_decode() {
        let reqs = vec![
            Request::Ping {
                version: PROTOCOL_VERSION,
            },
            Request::Stats,
            Request::Plan(PlanRequest {
                network: "lenet5".into(),
                batch: 1,
                mode: Mode::Cpu,
                episodes: 120,
                seeds: vec![7, 8],
                objective: Objective::Latency,
                transfer: TransferMode::Auto,
                trace: false,
                platform: String::new(),
            }),
        ];
        for req in reqs {
            // Bare frame.
            let body = encode_body(&req).unwrap();
            let frame = encode_binary_frame(None, &body).unwrap();
            let mut fb = FrameBuffer::default();
            fb.push(&frame);
            let got = match fb.next_binary_frame(MAX_FRAME_BYTES) {
                BinaryFrameStatus::Frame(f) => f,
                other => panic!("expected frame, got {other:?}"),
            };
            assert_eq!(got.id, None);
            match parse_binary_request(&got).unwrap() {
                RequestFrame::Untagged(back) => {
                    assert_eq!(
                        serde_json::to_string(&back).unwrap(),
                        serde_json::to_string(&req).unwrap()
                    );
                }
                other => panic!("expected untagged, got {other:?}"),
            }
            // Tagged frame with the same body.
            let frame = encode_binary_frame(Some(99), &body).unwrap();
            let mut fb = FrameBuffer::default();
            fb.push(&frame);
            let got = match fb.next_binary_frame(MAX_FRAME_BYTES) {
                BinaryFrameStatus::Frame(f) => f,
                other => panic!("expected frame, got {other:?}"),
            };
            assert_eq!(got.id, Some(99));
        }
    }

    #[test]
    fn binary_frame_reassembles_from_any_split() {
        let resp = Response::Error {
            message: "split me".to_string(),
        };
        let body = encode_body(&resp).unwrap();
        let frame = encode_binary_frame(Some(3), &body).unwrap();
        for split in 0..=frame.len() {
            let mut fb = FrameBuffer::default();
            fb.push(&frame[..split]);
            if split < frame.len() {
                assert!(matches!(
                    fb.next_binary_frame(MAX_FRAME_BYTES),
                    BinaryFrameStatus::NeedMore
                ));
            }
            fb.push(&frame[split..]);
            let got = match fb.next_binary_frame(MAX_FRAME_BYTES) {
                BinaryFrameStatus::Frame(f) => f,
                other => panic!("split {split}: expected frame, got {other:?}"),
            };
            assert_eq!(got.id, Some(3));
            match parse_binary_response(&got).unwrap() {
                ResponseFrame::Tagged(t) => {
                    assert_eq!(t.id, 3);
                    assert!(matches!(t.resp, Response::Error { .. }));
                }
                other => panic!("expected tagged, got {other:?}"),
            }
        }
    }

    #[test]
    fn binary_header_violations_are_corrupt() {
        // JSON on a binary connection: '{' is not the magic.
        let mut fb = FrameBuffer::default();
        fb.push(b"{\"ping\":{\"version\":3}}\n");
        assert!(matches!(
            fb.next_binary_frame(MAX_FRAME_BYTES),
            BinaryFrameStatus::Corrupt(_)
        ));
        // Unknown kind byte.
        let mut fb = FrameBuffer::default();
        fb.push(&[FRAME_MAGIC, 0x7f, 0, 0, 0, 0]);
        assert!(matches!(
            fb.next_binary_frame(MAX_FRAME_BYTES),
            BinaryFrameStatus::Corrupt(_)
        ));
        // Declared body length beyond the bound — rejected from the
        // 6-byte header alone, before any body arrives.
        let mut fb = FrameBuffer::default();
        let mut hdr = vec![FRAME_MAGIC, 0x00];
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        fb.push(&hdr);
        match fb.next_binary_frame(MAX_FRAME_BYTES) {
            BinaryFrameStatus::Corrupt(msg) => {
                assert!(msg.contains("exceeds"), "message: {msg}");
                assert!(msg.contains("frame bound"), "message: {msg}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn binary_frames_interleave_with_json_on_separate_buffers() {
        // Two adjacent connections, one per framing, sharing nothing:
        // bytes split across pushes on both; each reassembles its own.
        let req = Request::Stats;
        let bin = encode_binary_frame(None, &encode_body(&req).unwrap()).unwrap();
        let json = format!("{}\n", serde_json::to_string(&req).unwrap());
        let mut fb_bin = FrameBuffer::default();
        let mut fb_json = FrameBuffer::default();
        for (b, j) in bin.iter().zip(json.bytes()) {
            fb_bin.push(&[*b]);
            fb_json.push(&[j]);
        }
        fb_json.push(&json.as_bytes()[bin.len().min(json.len())..]);
        fb_bin.push(&bin[json.len().min(bin.len())..]);
        assert!(matches!(
            fb_bin.next_binary_frame(MAX_FRAME_BYTES),
            BinaryFrameStatus::Frame(_)
        ));
        assert!(fb_json.next_frame().is_some());
    }

    #[test]
    fn read_binary_frame_resumable_handles_eof() {
        let resp = Response::Pong {
            version: PROTOCOL_VERSION,
        };
        let frame = encode_binary_frame(None, &encode_body(&resp).unwrap()).unwrap();
        // Clean EOF on a frame boundary.
        let mut cursor = std::io::Cursor::new(frame.clone());
        let mut fb = FrameBuffer::default();
        let got = read_binary_frame_resumable(&mut cursor, &mut fb, MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert!(got.id.is_none());
        assert!(
            read_binary_frame_resumable(&mut cursor, &mut fb, MAX_FRAME_BYTES)
                .unwrap()
                .is_none()
        );
        // EOF mid-frame is a protocol error, not a silent drop.
        let torn = &frame[..frame.len() - 1];
        let mut cursor = std::io::Cursor::new(torn.to_vec());
        let mut fb = FrameBuffer::default();
        let err = read_binary_frame_resumable(&mut cursor, &mut fb, MAX_FRAME_BYTES).unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "error: {err}");
    }
}
