//! The scenario transfer index: descriptor → plan-cache key.
//!
//! [`PlanCache`](crate::PlanCache) answers *exact* repeats; this index
//! answers *similar* ones. Every successfully computed plan registers its
//! [`ScenarioDescriptor`] here; on a plan-cache miss the server asks the
//! index for the K nearest cached scenarios and warm-starts the search
//! from the best usable donor (see `qsdnn::QTable::transfer_from`).
//!
//! The index is deliberately loose about staleness — it stores keys, not
//! values, so an entry can outlive its plan (evicted from memory *and*
//! garbage-collected from the spill tier). Callers therefore treat every
//! entry as a hint: fetch the donor through the plan cache, and on failure
//! call [`ScenarioIndex::remove`] so the index converges back onto what is
//! actually fetchable. That keeps the coupling with the cache's eviction
//! machinery one-directional and lock-free between the two structures.
//!
//! **Bounded:** at most `max_entries` scenarios, FIFO by insertion (a
//! re-inserted scenario refreshes its position). **Durable:** with a
//! directory (the server nests `scenarios/` inside its spill dir), every
//! entry persists as `<base_key>.json` and the constructor reloads the
//! surviving files, so a restarted server keeps warm-starting from its
//! previous life's scenarios.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use qsdnn::engine::ScenarioDescriptor;
use serde::{Deserialize, Serialize};

use crate::protocol::WarmStartInfo;

/// Default bound on indexed scenarios. Distance lookups scan linearly, so
/// the bound also caps miss-path latency (~1k edit-distance evaluations of
/// a few hundred layers each stays far below one search episode).
pub const DEFAULT_INDEX_ENTRIES: usize = 1024;

/// How many nearest donors a lookup hands back for the caller to try in
/// order (a donor can be stale or map to nothing).
pub const DEFAULT_DONOR_CANDIDATES: usize = 4;

/// Donors farther than this are never offered: past a few whole-unit
/// mismatches (network + objective, say) a transferred table is noise.
const MAX_DONOR_DISTANCE: f64 = 6.0;

/// One indexed scenario.
///
/// `base_key` is the identity — the cold plan key of *(LUT, objective,
/// portfolio spec)* — because two scenarios can share a descriptor while
/// differing in search spec (episode budget, seeds), and each must keep
/// its own plan. `plan_key` is where the scenario's plan actually lives:
/// equal to `base_key` after a cold search, a warm key after a
/// warm-started one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEntry {
    /// The scenario's structural descriptor (the distance key).
    pub descriptor: ScenarioDescriptor,
    /// Cold plan key of the scenario — the entry's identity.
    pub base_key: String,
    /// Plan-cache key its plan lives under (cold or warm).
    pub plan_key: String,
    /// Provenance carried by the indexed plan, when it was itself
    /// warm-started — echoed on cached repeats of the same scenario.
    #[serde(default)]
    pub warm_start: Option<WarmStartInfo>,
}

struct IndexState {
    /// `base_key` → `(insertion sequence, entry)`. `Arc`'d so distance
    /// scans can snapshot the set cheaply and score outside the lock;
    /// the sequence drives FIFO eviction and recency tie-breaks.
    map: HashMap<String, (u64, Arc<ScenarioEntry>)>,
    /// FIFO queue of `(sequence, base_key)`; a pair whose sequence no
    /// longer matches the map (the key was re-inserted) is skipped on
    /// eviction instead of evicting the refreshed entry.
    order: VecDeque<(u64, String)>,
    /// Monotonic insertion counter.
    seq: u64,
}

impl IndexState {
    fn empty() -> Self {
        IndexState {
            map: HashMap::new(),
            order: VecDeque::new(),
            seq: 0,
        }
    }
}

/// Concurrent, bounded, optionally durable map from scenario descriptors
/// to plan-cache keys. See the module docs for the staleness contract.
pub struct ScenarioIndex {
    state: Mutex<IndexState>,
    dir: Option<PathBuf>,
    max_entries: usize,
}

impl ScenarioIndex {
    /// In-memory index bounded to `max_entries` (min 1).
    pub fn new(max_entries: usize) -> Self {
        ScenarioIndex {
            state: Mutex::new(IndexState::empty()),
            dir: None,
            max_entries: max_entries.max(1),
        }
    }

    /// Durable index: entries persist as `<dir>/<base_key>.json` and
    /// the constructor reloads every parseable file (oldest first by
    /// modification time, trimmed to the bound). Unparseable files — a
    /// torn write, an old format — are deleted, not fatal.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created or listed.
    pub fn with_dir(dir: impl Into<PathBuf>, max_entries: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut files: Vec<(PathBuf, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                let mtime = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::UNIX_EPOCH);
                files.push((path, mtime));
            }
        }
        files.sort_by_key(|f| f.1);
        let index = ScenarioIndex {
            state: Mutex::new(IndexState::empty()),
            dir: Some(dir),
            max_entries: max_entries.max(1),
        };
        for (path, _) in files {
            let parsed = std::fs::read_to_string(&path)
                .ok()
                .and_then(|json| serde_json::from_str::<ScenarioEntry>(&json).ok());
            match parsed {
                // Loaded entries are NOT re-persisted: rewriting them
                // would refresh every file's mtime and erase the very
                // age ordering the next reload sorts by.
                Some(entry) => index.insert_entry(entry, false),
                None => {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(index)
    }

    fn path_for(&self, base_key: &str) -> Option<PathBuf> {
        // Base keys are 16-hex-digit fingerprints, safe as file names.
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{base_key}.json")))
    }

    fn persist(&self, entry: &ScenarioEntry) {
        let Some(path) = self.path_for(&entry.base_key) else {
            return;
        };
        // Best effort: a lost index file only costs a future warm start.
        if let Ok(json) = serde_json::to_string(entry) {
            let tmp = path.with_extension("json.tmp");
            if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    fn unlink(&self, base_key: &str) {
        if let Some(path) = self.path_for(base_key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Registers a scenario's plan. A scenario already present (by
    /// `base_key`) is replaced and refreshed to the back of the eviction
    /// queue; past the bound the oldest entry (and its file) goes.
    pub fn insert(
        &self,
        descriptor: ScenarioDescriptor,
        base_key: String,
        plan_key: String,
        warm_start: Option<WarmStartInfo>,
    ) {
        self.insert_entry(
            ScenarioEntry {
                descriptor,
                base_key,
                plan_key,
                warm_start,
            },
            true,
        );
    }

    fn insert_entry(&self, entry: ScenarioEntry, persist: bool) {
        let entry = Arc::new(entry);
        let evicted: Vec<String> = {
            let mut state = self.state.lock().expect("index lock");
            state.seq += 1;
            let seq = state.seq;
            state
                .map
                .insert(entry.base_key.clone(), (seq, Arc::clone(&entry)));
            state.order.push_back((seq, entry.base_key.clone()));
            // Persisting inside the critical section keeps the disk file
            // in lockstep with the in-memory winner when two requests
            // race on one scenario; inserts only happen on fresh
            // computes, so the hot paths (lookup/nearest) never pay for
            // this I/O.
            if persist {
                self.persist(&entry);
            }
            let mut evicted = Vec::new();
            while state.map.len() > self.max_entries {
                let Some((seq, key)) = state.order.pop_front() else {
                    break;
                };
                match state.map.get(&key) {
                    // A stale queue pair: the key was re-inserted later
                    // and its refreshed entry must survive.
                    Some((current, _)) if *current != seq => continue,
                    _ => {
                        state.map.remove(&key);
                        evicted.push(key);
                    }
                }
            }
            evicted
        };
        for key in evicted {
            self.unlink(&key);
        }
    }

    /// Drops every entry whose plan lives under `plan_key` — called when
    /// a donor's plan turned out to be gone from both cache tiers.
    pub fn remove(&self, plan_key: &str) {
        let dropped: Vec<String> = {
            let mut state = self.state.lock().expect("index lock");
            let dropped: Vec<String> = state
                .map
                .values()
                .filter(|(_, e)| e.plan_key == plan_key)
                .map(|(_, e)| e.base_key.clone())
                .collect();
            for key in &dropped {
                state.map.remove(key);
            }
            dropped
        };
        for key in dropped {
            self.unlink(&key);
        }
    }

    /// The entry for exactly this scenario (`base_key` identity) — how a
    /// repeated warm scenario finds its own cached plan, which lives under
    /// a warm key the exact-match cache lookup cannot derive. `O(1)`: it
    /// runs on every plan-cache hit of a transfer-enabled server.
    pub fn lookup(&self, base_key: &str) -> Option<ScenarioEntry> {
        let state = self.state.lock().expect("index lock");
        state.map.get(base_key).map(|(_, e)| (**e).clone())
    }

    /// The up-to-`k` nearest donor scenarios to `probe` by
    /// [`ScenarioDescriptor::distance`], ascending, excluding the probe's
    /// own scenario (`base_key`) and anything past the transferability
    /// cutoff. An identical descriptor under a *different* base key — the
    /// same network searched with another episode budget, say — is a
    /// perfect (distance-0) donor. Ties break to the more recently
    /// inserted entry, so a batch sweep chains each step off the last.
    pub fn nearest(
        &self,
        probe: &ScenarioDescriptor,
        base_key: &str,
        k: usize,
    ) -> Vec<(ScenarioEntry, f64)> {
        // Snapshot under the lock (cheap `Arc` clones), score outside:
        // the O(entries x layers^2) edit-distance scan must not serialize
        // every connection handler on the index mutex.
        let snapshot: Vec<(u64, Arc<ScenarioEntry>)> = {
            let state = self.state.lock().expect("index lock");
            state
                .map
                .values()
                .filter(|(_, e)| e.base_key != base_key)
                .map(|(seq, e)| (*seq, Arc::clone(e)))
                .collect()
        };
        let mut scored: Vec<(u64, Arc<ScenarioEntry>, f64)> = snapshot
            .into_iter()
            .map(|(seq, e)| {
                let d = probe.distance(&e.descriptor);
                (seq, e, d)
            })
            .filter(|(_, _, d)| d.is_finite() && *d <= MAX_DONOR_DISTANCE)
            .collect();
        scored.sort_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)));
        scored
            .into_iter()
            .take(k)
            .map(|(_, e, d)| ((*e).clone(), d))
            .collect()
    }

    /// Scenarios currently indexed.
    pub fn len(&self) -> usize {
        self.state.lock().expect("index lock").map.len()
    }

    /// Whether the index holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::{toy, Objective};

    fn desc(batch: usize) -> ScenarioDescriptor {
        ScenarioDescriptor::of(&toy::small_chain_lut())
            .with_batch(batch)
            .with_objective(&Objective::Latency)
    }

    fn other_desc() -> ScenarioDescriptor {
        ScenarioDescriptor::of(&toy::fig1_lut())
            .with_batch(1)
            .with_objective(&Objective::Latency)
    }

    /// Shorthand: base key and plan key coincide (a cold entry).
    fn put(index: &ScenarioIndex, d: ScenarioDescriptor, key: &str) {
        index.insert(d, key.to_string(), key.to_string(), None);
    }

    #[test]
    fn nearest_ranks_batch_neighbors_first() {
        let index = ScenarioIndex::new(16);
        put(&index, other_desc(), "other");
        put(&index, desc(1), "b1");
        put(&index, desc(8), "b8");
        let near = index.nearest(&desc(2), "probe", 3);
        assert_eq!(near.len(), 3);
        assert_eq!(near[0].0.plan_key, "b1", "closest batch first");
        assert_eq!(near[1].0.plan_key, "b8");
        assert!(near[0].1 < near[1].1 && near[1].1 < near[2].1);
        // A scenario is never its own donor…
        let self_near = index.nearest(&desc(1), "b1", 3);
        assert!(self_near.iter().all(|(e, _)| e.base_key != "b1"));
        // …but an identical descriptor under a different base key (same
        // scenario, different search spec) is a perfect distance-0 donor.
        let twin = index.nearest(&desc(8), "not-b8", 1);
        assert_eq!(twin[0].0.plan_key, "b8");
        assert_eq!(twin[0].1, 0.0);
    }

    #[test]
    fn lookup_is_keyed_by_base_key_and_replaces() {
        let index = ScenarioIndex::new(16);
        put(&index, desc(1), "b1");
        assert_eq!(index.lookup("b1").expect("present").plan_key, "b1");
        assert!(index.lookup("b2").is_none());
        // Re-registering the same scenario (e.g. after a warm start moved
        // its plan under a warm key) replaces, never duplicates.
        index.insert(desc(1), "b1".into(), "b1-warm".into(), None);
        assert_eq!(index.len(), 1);
        assert_eq!(index.lookup("b1").expect("present").plan_key, "b1-warm");
        // Same descriptor, different search spec: a separate entry.
        index.insert(desc(1), "b1-eps2".into(), "b1-eps2".into(), None);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn bound_evicts_oldest_first() {
        let index = ScenarioIndex::new(2);
        put(&index, desc(1), "b1");
        put(&index, desc(2), "b2");
        put(&index, desc(4), "b4");
        assert_eq!(index.len(), 2);
        assert!(index.lookup("b1").is_none(), "oldest evicted");
        assert!(index.lookup("b4").is_some());
    }

    #[test]
    fn remove_drops_stale_plan_keys() {
        let index = ScenarioIndex::new(16);
        index.insert(desc(1), "s1".into(), "gone".into(), None);
        index.insert(desc(2), "s2".into(), "kept".into(), None);
        index.remove("gone");
        assert_eq!(index.len(), 1);
        assert!(index
            .nearest(&desc(4), "probe", 8)
            .iter()
            .all(|(e, _)| e.plan_key == "kept"));
    }

    #[test]
    fn durable_index_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("qsdnn_scidx_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let index = ScenarioIndex::with_dir(&dir, 16).unwrap();
            put(&index, desc(1), "b1");
            put(&index, desc(2), "b2");
        }
        // Plus one corrupt file that must be swept, not crash the reload.
        std::fs::write(dir.join("deadbeef00000000.json"), "{not json").unwrap();
        let reloaded = ScenarioIndex::with_dir(&dir, 16).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup("b1").expect("reloaded").plan_key, "b1");
        assert!(
            !dir.join("deadbeef00000000.json").exists(),
            "corrupt entries are deleted on reload"
        );
        // Eviction unlinks files, so a re-open honors the bound.
        let bounded = ScenarioIndex::with_dir(&dir, 1).unwrap();
        assert_eq!(bounded.len(), 1);
        drop(bounded);
        let reopened = ScenarioIndex::with_dir(&dir, 16).unwrap();
        assert_eq!(reopened.len(), 1, "evicted entries stay gone on disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hopeless_donors_are_never_offered() {
        let index = ScenarioIndex::new(16);
        let mut far = other_desc();
        far.platform = "saturn-v".into();
        far.mode = "fpga".into();
        far.objective = "carbon".into();
        // network+platform+mode+objective mismatches: 1+2+2+4 > cutoff.
        put(&index, far, "far");
        assert!(index.nearest(&desc(1), "probe", 4).is_empty());
    }
}
