//! Fixed-size `std::thread` worker pool with channel-based job intake.
//!
//! Deliberately minimal: an `mpsc` job queue shared behind a mutex, one
//! receiver loop per worker. Search jobs are CPU-bound and coarse (one
//! portfolio member each), so queueing overhead is irrelevant next to job
//! runtime; what matters is that the pool is `Sync`, drains fully on drop,
//! and never unwinds across a worker (a panicking job poisons nothing —
//! the panic is contained and the worker keeps serving).
//!
//! **Do not submit jobs that block on other pool jobs.** The pool has a
//! fixed worker count and no work stealing, so a job that waits for a
//! later-queued job can occupy every worker with blocked parents and
//! deadlock the queue. This is why the server's pipelined request
//! dispatchers are dedicated threads (bounded by the per-connection
//! in-flight cap) that *fan onto* the pool, never pool jobs themselves —
//! only leaf work (individual portfolio members) runs here.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use qsdnn_obs::{EventKind, FlightRecorder, Gauge};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Flight-recorder hookup for a pool: workers publish a task-table entry
/// for the duration of every job, and `execute` journals a saturation
/// event when the queue depth first reaches `saturation_threshold`.
#[derive(Clone)]
pub struct PoolRecorder {
    /// The server's flight recorder.
    pub recorder: Arc<FlightRecorder>,
    /// Task-table kind id workers register under (see `metrics::task_kind`).
    pub task_kind: u16,
    /// Distinguishes this pool in `PoolSaturated` events (`a` payload).
    pub pool_id: u64,
    /// Queue depth at which a `PoolSaturated` event is journaled. Emitted
    /// only on the exact crossing so a persistently saturated pool logs
    /// once per excursion, not once per job.
    pub saturation_threshold: i64,
}

/// Health gauges a pool maintains: how many jobs are queued and how many
/// workers are mid-job. Cloned into every worker.
///
/// Both gauges are `Relaxed` atomics internally (see `qsdnn_obs`):
/// statistics only, never used to synchronize — the channel itself is
/// the worker handoff.
#[derive(Debug, Clone)]
pub struct PoolGauges {
    /// Jobs submitted but not yet picked up by a worker.
    pub queue_depth: Arc<Gauge>,
    /// Workers currently running a job.
    pub busy: Arc<Gauge>,
}

/// A fixed-size worker pool.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    gauges: Option<PoolGauges>,
    recorder: Option<PoolRecorder>,
}

impl WorkerPool {
    /// Starts `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        WorkerPool::named("qsdnn-worker", threads)
    }

    /// Starts `threads` workers (at least one) named `<prefix>-<i>`, so a
    /// second pool with a different role (e.g. the epoll server's request
    /// dispatchers) is tellable apart in thread listings.
    pub fn named(prefix: &str, threads: usize) -> Self {
        WorkerPool::named_with_gauges(prefix, threads, None)
    }

    /// [`named`](WorkerPool::named), additionally exporting queue-depth
    /// and busy-worker gauges.
    pub fn named_with_gauges(prefix: &str, threads: usize, gauges: Option<PoolGauges>) -> Self {
        WorkerPool::named_observed(prefix, threads, gauges, None)
    }

    /// [`named_with_gauges`](WorkerPool::named_with_gauges), additionally
    /// journaling worker activity and queue saturation to the flight
    /// recorder.
    pub fn named_observed(
        prefix: &str,
        threads: usize,
        gauges: Option<PoolGauges>,
        recorder: Option<PoolRecorder>,
    ) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let gauges = gauges.clone();
                let recorder = recorder.clone();
                std::thread::Builder::new()
                    .name(format!("{prefix}-{i}"))
                    .spawn(move || worker_loop(&rx, gauges.as_ref(), recorder.as_ref()))
                    // LINT-ALLOW(panic-path): pool construction is server
                    // startup, before any connection is accepted; a host
                    // that cannot spawn threads cannot serve at all.
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            gauges,
            recorder,
        }
    }

    /// Pool sized to the machine: one worker per available core, capped.
    pub fn with_default_size() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        WorkerPool::new(cores.clamp(2, 32))
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; it runs on the first free worker. If the pool can
    /// no longer queue (teardown has begun), the job runs inline on the
    /// caller's thread rather than being dropped or panicking: late
    /// completions still get delivered, just without parallelism.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(g) = &self.gauges {
            let depth = g.queue_depth.get() + 1;
            g.queue_depth.inc();
            if let Some(pr) = &self.recorder {
                // Journal the exact crossing only; the gauge itself tells
                // operators how deep the excursion went.
                if depth == pr.saturation_threshold {
                    pr.recorder
                        .emit(EventKind::PoolSaturated, 0, pr.pool_id, depth as u64);
                }
            }
        }
        let Some(tx) = self.tx.as_ref() else {
            // Only reachable mid-Drop (tx is taken there); run inline.
            run_inline(Box::new(job), self.gauges.as_ref());
            return;
        };
        if let Err(returned) = tx.send(Box::new(job)) {
            // Every worker exited, which only happens at teardown; the
            // send handed the job back, so run it inline.
            run_inline(returned.0, self.gauges.as_ref());
        }
    }
}

/// Fallback execution path when the queue is gone: same gauge accounting
/// and panic containment as a worker, on the submitting thread.
fn run_inline(job: Job, gauges: Option<&PoolGauges>) {
    if let Some(g) = gauges {
        g.queue_depth.dec();
        g.busy.inc();
    }
    let _ = catch_unwind(AssertUnwindSafe(job));
    if let Some(g) = gauges {
        g.busy.dec();
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    gauges: Option<&PoolGauges>,
    recorder: Option<&PoolRecorder>,
) {
    loop {
        // Hold the lock only to dequeue, never while running the job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => {
                if let Some(g) = gauges {
                    g.queue_depth.dec();
                    g.busy.inc();
                }
                if let Some(pr) = recorder {
                    // Register in the live task table for the duration of
                    // the job; the job body may refine stage/key itself.
                    pr.recorder.task_begin(pr.task_kind, 0, 0);
                }
                // A panicking search job must not kill the worker; the
                // submitting side observes the failure through its result
                // channel hanging up.
                let _ = catch_unwind(AssertUnwindSafe(job));
                if let Some(pr) = recorder {
                    pr.recorder.task_clear();
                }
                if let Some(g) = gauges {
                    g.busy.dec();
                }
            }
            Err(_) => return, // all senders dropped: shut down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn runs_all_jobs_across_workers() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..32 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("boom"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42).unwrap());
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }
}
