//! Minimal async-signal-safe SIGTERM latch.
//!
//! `qsdnn-cli serve` wants to write a flight-recorder post-mortem dump on
//! SIGTERM before shutting down, which requires *observing* the signal
//! rather than dying to the default disposition. This is the smallest
//! possible handler: it stores into one static atomic and returns —
//! nothing else is async-signal-safe, and nothing else is needed. The
//! serving loop polls [`term_requested`] at its leisure.
//!
//! Like the epoll layer, the binding is direct `extern "C"` FFI: this
//! build is offline and one syscall does not justify a vendored libc.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler when SIGTERM arrives. SeqCst on both sides: the
/// flag is a cross-thread shutdown edge, not a statistic.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    /// POSIX `SIGTERM` — 15 on every Unix this workspace targets.
    pub const SIGTERM: c_int = 15;

    extern "C" {
        /// `signal(2)`. The simplest installer suffices here: one signal,
        /// one process-lifetime handler, no need for `sigaction` flags.
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: std::os::raw::c_int) {
    // Only an atomic store: the one operation unconditionally
    // async-signal-safe in Rust.
    // SeqCst: a shutdown edge crossing from signal context to the serving
    // loop; cold path, strongest order costs nothing here.
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM latch. Idempotent; later installs are harmless
/// (the same handler replaces itself). On non-Unix targets this is a
/// no-op and [`term_requested`] never fires.
pub fn install_term_handler() {
    #[cfg(unix)]
    // SAFETY: `on_sigterm` is an `extern "C" fn(c_int)` — the exact shape
    // `signal` expects — and its body is a single atomic store, which is
    // async-signal-safe. The handler address outlives the process.
    unsafe {
        sys::signal(sys::SIGTERM, on_sigterm as *const () as usize);
    }
}

/// Whether SIGTERM has arrived since [`install_term_handler`].
pub fn term_requested() -> bool {
    // SeqCst: pairs with the handler's store; polled 5x/s, not hot.
    TERM_REQUESTED.load(Ordering::SeqCst)
}
