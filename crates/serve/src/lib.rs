//! # `qsdnn-serve` — the QS-DNN plan-compilation service
//!
//! The paper's pipeline (profile → Q-learning search) is a batch job; this
//! crate turns it into a long-lived, concurrent service in the spirit of
//! Marco et al.'s *Adaptive Model Selection* setting: many networks, many
//! objectives, many clients, one warm server.
//!
//! Four mechanisms do the work:
//!
//! * **Search portfolio** ([`run_portfolio_parallel`]) — every request
//!   races multi-seed QS-DNN against the baselines (random, annealing,
//!   chain DP, PBQP) on a [`WorkerPool`] of `std::thread` workers with
//!   channel fan-in. The reduction is deterministic (lowest cost, ties to
//!   the lowest member index), so a parallel run is bit-identical to the
//!   sequential reference [`qsdnn::Portfolio::run_sequential`].
//! * **Content-addressed plan cache** ([`PlanCache`]) — plans are keyed by
//!   a stable fingerprint of *(LUT, objective, portfolio spec)*, split over
//!   N independent shards (each its own lock, single-flight coalescing and
//!   hard capacity bound — in-flight computes included), evicted LRU or
//!   cost-weighted ([`EvictionPolicy`]), with a bounded, crash-safe JSON
//!   spill tier that survives restarts.
//! * **Scenario transfer** ([`ScenarioIndex`]) — every cached plan
//!   registers a structural [`ScenarioDescriptor`](qsdnn::engine::ScenarioDescriptor);
//!   a plan-cache miss warm-starts its search from the nearest cached
//!   scenario's plan (Q-table transfer with a shortened ε-schedule), so a
//!   batch sweep or platform variant stops being a cold start. Requests
//!   opt out with `transfer: "off"`, which is byte-identical to a
//!   transfer-free server.
//! * **JSON-lines TCP protocol** ([`protocol`]) — `profile`, `search`,
//!   `plan` and `stats` requests over plain `std::net`, one JSON document
//!   per line; [`PlanServer`] serves it, [`PlanClient`] speaks it. Since
//!   protocol v2 a client may wrap requests in tagged envelopes
//!   (`{"id":N,"req":{...}}`) to pipeline up to the server's in-flight cap
//!   over one connection; the server replies out of order as searches
//!   finish, so a single connection can saturate the whole worker pool
//!   ([`PlanClient::submit`]/[`PlanClient::wait`]/[`PlanClient::plan_many`]).
//! * **Epoll connection layer** ([`IoModel`]) — on Linux (the default),
//!   one reactor thread holds *every* connection through a readiness
//!   loop (direct `extern "C"` epoll FFI over `std::os::fd`): nonblocking
//!   reads feed per-connection frame buffers, replies queue in outboxes
//!   with partial-write resumption, and a bounded dispatcher pool runs
//!   the requests — thousands of pipelined clients cost
//!   O(workers + dispatchers) threads, not O(connections). The
//!   thread-per-connection layer survives behind `--io threads` and
//!   answers byte-identically.
//!
//! # Quickstart
//!
//! ```
//! use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};
//! use qsdnn_serve::protocol::PlanRequest;
//!
//! // Ephemeral port, worker pool sized to the machine.
//! let server = PlanServer::start(ServerConfig::default()).unwrap();
//! let mut client = PlanClient::connect(server.local_addr()).unwrap();
//!
//! let mut req = PlanRequest::latency("lenet5");
//! req.episodes = 200; // small budget to keep the doctest fast
//! let plan = client.plan(req.clone()).unwrap();
//! assert!(plan.speedup() > 1.0, "the plan must beat all-Vanilla");
//!
//! // Same scenario again: served from the content-addressed cache.
//! let again = client.plan(req).unwrap();
//! assert!(again.cache_hit);
//! assert_eq!(again.best.best_assignment, plan.best.best_assignment);
//!
//! // Pipeline a batch over the same connection (protocol v2): the server
//! // answers out of order as searches finish; `plan_many` hands the
//! // responses back in request order.
//! let mut a = PlanRequest::latency("tiny_cnn");
//! a.episodes = 150;
//! let mut b = PlanRequest::latency("toy_branchy");
//! b.episodes = 150;
//! let plans = client.plan_many(&[a, b]).unwrap();
//! assert_eq!(plans[0].network, "tiny_cnn");
//! assert_eq!(plans[1].network, "toy_branchy");
//! server.shutdown();
//! ```
//!
//! From the shell: `qsdnn-cli serve --addr 127.0.0.1:7878` and
//! `qsdnn-cli submit --addr 127.0.0.1:7878 --network mobilenet_v1`.

mod cache;
mod client;
mod exposition;
mod metrics;
mod pool;
mod portfolio;
pub mod protocol;
#[cfg(target_os = "linux")]
mod reactor;
mod server;
pub mod signals;
pub mod transfer;

pub use cache::{
    plan_key, warm_plan_key, CacheStats, CacheValue, EvictionPolicy, PlanCache, ShardStats,
    DEFAULT_MAX_DISK_ENTRIES, DEFAULT_MAX_ENTRIES, DEFAULT_SHARDS,
};
pub use client::{PlanClient, Ticket, DEFAULT_CLIENT_WINDOW};
pub use pool::{PoolGauges, PoolRecorder, WorkerPool};
pub use portfolio::{run_portfolio_parallel, run_portfolio_parallel_with, WarmStart};
pub use server::{
    resolve, start_local, IoModel, PlanServer, ServerConfig, DEFAULT_MAX_IN_FLIGHT, DEFAULT_SLOW_MS,
};
pub use transfer::{ScenarioEntry, ScenarioIndex, DEFAULT_INDEX_ENTRIES};

use std::fmt;

/// Service-level error.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(std::io::Error),
    /// Malformed message or framing violation.
    Protocol(String),
    /// The peer reported an error.
    Remote(String),
    /// The request was invalid before any work started.
    BadRequest(String),
    /// The request was valid but the search produced no plan (e.g. no
    /// portfolio member was applicable, or every member failed).
    Search(String),
    /// Server construction failed (e.g. a malformed platform spec file or
    /// an unknown default platform) — reported before the listener binds.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Remote(m) => write!(f, "server error: {m}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Search(m) => write!(f, "search failed: {m}"),
            ServeError::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
