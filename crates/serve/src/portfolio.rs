//! Parallel portfolio execution on the worker pool.
//!
//! Fans each [`PortfolioMember`](qsdnn::PortfolioMember) out as one pool
//! job, fans results back in over an `mpsc` channel, and reduces with
//! [`Portfolio::select_best`] — the same deterministic reduction the
//! sequential reference uses, so for identical specs and seeds the
//! parallel winner is bit-identical to
//! [`Portfolio::run_sequential`](qsdnn::Portfolio::run_sequential)'s
//! regardless of completion order.

use std::sync::mpsc::channel;
use std::sync::Arc;

use qsdnn::engine::CostLut;
use qsdnn::{Portfolio, PortfolioOutcome, QTable, TransferMapping};

use crate::pool::WorkerPool;

/// A transfer donor shared by every warm-started member of one portfolio
/// run: the donor's (rebuilt) Q-table and the structural mapping onto the
/// recipient scenario.
pub struct WarmStart {
    /// Donor Q-table (typically a policy backbone rebuilt from a cached
    /// plan via `QTable::from_best_path`).
    pub donor: QTable,
    /// Alignment of the donor scenario onto the recipient LUT.
    pub mapping: TransferMapping,
}

/// Runs every portfolio member concurrently on `pool` and reduces
/// deterministically.
///
/// Returns `None` for an empty portfolio, when every member is
/// inapplicable, or if a member panics (its result is dropped; the
/// reduction then covers the surviving members — and returns `None` only
/// if none survive).
pub fn run_portfolio_parallel(
    portfolio: &Portfolio,
    lut: &Arc<CostLut>,
    pool: &WorkerPool,
) -> Option<PortfolioOutcome> {
    run_portfolio_parallel_with(portfolio, lut, pool, None)
}

/// [`run_portfolio_parallel`] with an optional transfer donor: when
/// `warm` is set, QS-DNN members in warm-start mode seed from the donor
/// (`PortfolioMember::run_warm`); baselines and cold members are
/// unaffected. Reduction semantics are identical to
/// [`Portfolio::run_sequential_warm`](qsdnn::Portfolio::run_sequential_warm),
/// bit for bit.
pub fn run_portfolio_parallel_with(
    portfolio: &Portfolio,
    lut: &Arc<CostLut>,
    pool: &WorkerPool,
    warm: Option<&Arc<WarmStart>>,
) -> Option<PortfolioOutcome> {
    let (tx, rx) = channel();
    let mut submitted = 0usize;
    for (index, member) in portfolio.members.iter().enumerate() {
        let member = member.clone();
        let lut = Arc::clone(lut);
        let warm = warm.map(Arc::clone);
        let tx = tx.clone();
        pool.execute(move || {
            let report = match &warm {
                Some(w) => member.run_warm(&lut, &w.donor, &w.mapping),
                None => member.run(&lut),
            };
            // A dropped receiver (submitter gone) is fine; ignore.
            let _ = tx.send((index, report));
        });
        submitted += 1;
    }
    drop(tx);
    // Fan-in: collect until every sender is done. A panicked job drops its
    // sender without sending, so `rx` terminates regardless.
    let mut results = Vec::with_capacity(submitted);
    while let Ok(item) = rx.recv() {
        results.push(item);
    }
    portfolio.select_best(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::toy;

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let pool = WorkerPool::new(4);
        for lut in [toy::fig1_lut(), toy::small_chain_lut()] {
            let portfolio = Portfolio::paper_default(200, &[0x5EED, 1, 2]);
            let sequential = portfolio.run_sequential(&lut).expect("applicable");
            let lut = Arc::new(lut);
            for _ in 0..3 {
                let parallel = run_portfolio_parallel(&portfolio, &lut, &pool).expect("applicable");
                assert_eq!(parallel.winner_index, sequential.winner_index);
                assert_eq!(parallel.winner, sequential.winner);
                assert_eq!(
                    parallel.best.best_assignment,
                    sequential.best.best_assignment
                );
                assert_eq!(
                    parallel.best.best_cost_ms.to_bits(),
                    sequential.best.best_cost_ms.to_bits(),
                    "costs must match bit-for-bit"
                );
                assert_eq!(parallel.best.curve, sequential.best.curve);
                // Member summaries match except for wall time.
                for (p, s) in parallel.members.iter().zip(&sequential.members) {
                    assert_eq!(p.label, s.label);
                    assert_eq!(p.best_cost_ms, s.best_cost_ms);
                }
            }
        }
    }

    #[test]
    fn warm_parallel_matches_warm_sequential_bit_for_bit() {
        use qsdnn::engine::ScenarioDescriptor;

        let pool = WorkerPool::new(4);
        let lut = toy::small_chain_lut();
        let cold = Portfolio::paper_default(200, &[0x5EED, 1])
            .run_sequential(&lut)
            .expect("applicable");
        let desc = ScenarioDescriptor::of(&lut);
        let mapping = TransferMapping::between(&desc, &desc);
        let dims: Vec<usize> = (0..lut.len()).map(|l| lut.candidates(l).len()).collect();
        let costs: Vec<f64> = cold
            .best
            .best_assignment
            .iter()
            .enumerate()
            .map(|(l, &ci)| lut.step_cost(l, ci, &cold.best.best_assignment))
            .collect();
        let donor = QTable::from_best_path(&dims, &cold.best.best_assignment, &costs)
            .expect("consistent plan");

        let warm_portfolio = Portfolio::paper_default(200, &[0x5EED, 1]).warmed();
        let sequential = warm_portfolio
            .run_sequential_warm(&lut, &donor, &mapping)
            .expect("applicable");
        let warm = Arc::new(WarmStart { donor, mapping });
        let shared = Arc::new(lut);
        for _ in 0..3 {
            let parallel =
                run_portfolio_parallel_with(&warm_portfolio, &shared, &pool, Some(&warm))
                    .expect("applicable");
            assert_eq!(parallel.winner_index, sequential.winner_index);
            assert_eq!(
                parallel.best.best_assignment,
                sequential.best.best_assignment
            );
            assert_eq!(
                parallel.best.best_cost_ms.to_bits(),
                sequential.best.best_cost_ms.to_bits()
            );
            for (p, s) in parallel.members.iter().zip(&sequential.members) {
                assert_eq!(p.best_cost_ms, s.best_cost_ms);
                assert_eq!(p.episodes, s.episodes, "warm budgets surface identically");
            }
        }
        // The warm QS-DNN members really ran the shortened schedule.
        let warm_eps = sequential
            .members
            .iter()
            .find(|m| m.label.starts_with("qs-dnn"))
            .expect("qs-dnn member")
            .episodes;
        let cold_eps = cold
            .members
            .iter()
            .find(|m| m.label.starts_with("qs-dnn"))
            .expect("qs-dnn member")
            .episodes;
        assert!(warm_eps < cold_eps, "warm {warm_eps} vs cold {cold_eps}");
    }

    #[test]
    fn oversubscribed_pool_still_completes() {
        // More members than workers: jobs must queue, not deadlock.
        let pool = WorkerPool::new(1);
        let lut = Arc::new(toy::small_chain_lut());
        let portfolio = Portfolio::paper_default(80, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = run_portfolio_parallel(&portfolio, &lut, &pool).expect("applicable");
        assert_eq!(out.members.len(), 8 + 4);
    }
}
