//! Parallel portfolio execution on the worker pool.
//!
//! Fans each [`PortfolioMember`](qsdnn::PortfolioMember) out as one pool
//! job, fans results back in over an `mpsc` channel, and reduces with
//! [`Portfolio::select_best`] — the same deterministic reduction the
//! sequential reference uses, so for identical specs and seeds the
//! parallel winner is bit-identical to
//! [`Portfolio::run_sequential`](qsdnn::Portfolio::run_sequential)'s
//! regardless of completion order.

use std::sync::mpsc::channel;
use std::sync::Arc;

use qsdnn::engine::CostLut;
use qsdnn::{Portfolio, PortfolioOutcome};

use crate::pool::WorkerPool;

/// Runs every portfolio member concurrently on `pool` and reduces
/// deterministically.
///
/// Returns `None` for an empty portfolio, when every member is
/// inapplicable, or if a member panics (its result is dropped; the
/// reduction then covers the surviving members — and returns `None` only
/// if none survive).
pub fn run_portfolio_parallel(
    portfolio: &Portfolio,
    lut: &Arc<CostLut>,
    pool: &WorkerPool,
) -> Option<PortfolioOutcome> {
    let (tx, rx) = channel();
    let mut submitted = 0usize;
    for (index, member) in portfolio.members.iter().enumerate() {
        let member = member.clone();
        let lut = Arc::clone(lut);
        let tx = tx.clone();
        pool.execute(move || {
            let report = member.run(&lut);
            // A dropped receiver (submitter gone) is fine; ignore.
            let _ = tx.send((index, report));
        });
        submitted += 1;
    }
    drop(tx);
    // Fan-in: collect until every sender is done. A panicked job drops its
    // sender without sending, so `rx` terminates regardless.
    let mut results = Vec::with_capacity(submitted);
    while let Ok(item) = rx.recv() {
        results.push(item);
    }
    portfolio.select_best(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::toy;

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let pool = WorkerPool::new(4);
        for lut in [toy::fig1_lut(), toy::small_chain_lut()] {
            let portfolio = Portfolio::paper_default(200, &[0x5EED, 1, 2]);
            let sequential = portfolio.run_sequential(&lut).expect("applicable");
            let lut = Arc::new(lut);
            for _ in 0..3 {
                let parallel = run_portfolio_parallel(&portfolio, &lut, &pool).expect("applicable");
                assert_eq!(parallel.winner_index, sequential.winner_index);
                assert_eq!(parallel.winner, sequential.winner);
                assert_eq!(
                    parallel.best.best_assignment,
                    sequential.best.best_assignment
                );
                assert_eq!(
                    parallel.best.best_cost_ms.to_bits(),
                    sequential.best.best_cost_ms.to_bits(),
                    "costs must match bit-for-bit"
                );
                assert_eq!(parallel.best.curve, sequential.best.curve);
                // Member summaries match except for wall time.
                for (p, s) in parallel.members.iter().zip(&sequential.members) {
                    assert_eq!(p.label, s.label);
                    assert_eq!(p.best_cost_ms, s.best_cost_ms);
                }
            }
        }
    }

    #[test]
    fn oversubscribed_pool_still_completes() {
        // More members than workers: jobs must queue, not deadlock.
        let pool = WorkerPool::new(1);
        let lut = Arc::new(toy::small_chain_lut());
        let portfolio = Portfolio::paper_default(80, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = run_portfolio_parallel(&portfolio, &lut, &pool).expect("applicable");
        assert_eq!(out.members.len(), 8 + 4);
    }
}
