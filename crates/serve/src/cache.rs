//! Content-addressed, sharded plan cache with single-flight coalescing,
//! a hard per-shard capacity invariant, real eviction policies and a
//! bounded, crash-safe JSON spill tier.
//!
//! Keys are stable fingerprints of *(LUT, objective, portfolio spec)* — see
//! [`plan_key`] — so any two requests that could possibly produce different
//! plans get different keys, and identical requests (even from different
//! connections, even across process restarts via the spill directory) share
//! one search.
//!
//! **Sharding:** the cache is split into N independent shards (selected by
//! a stable hash of the key), each its own `Mutex` + `Condvar`, so lookups
//! for different keys never contend on one lock. Single-flight, eviction
//! and the capacity bound are all per-shard.
//!
//! **Single-flight:** when several threads ask for the same missing key
//! concurrently, exactly one runs the compute closure; the rest block on
//! the shard's condvar and receive the same `Arc`'d outcome. A panicking
//! compute removes its in-flight marker on unwind so waiters retry rather
//! than hang.
//!
//! **Bounded — a hard invariant:** every shard holds at most
//! `max_entries / shards` slots, *counting in-flight markers*. A claim on
//! a full shard first evicts a ready victim (per the configured
//! [`EvictionPolicy`]); when every slot is an in-flight compute, the
//! claimer blocks on the condvar until one publishes or unwinds — it never
//! overruns the bound and never runs a duplicate search for a key someone
//! else owns.
//!
//! **Eviction:** [`EvictionPolicy::Lru`] evicts the least-recently-used
//! ready entry (true LRU via a per-shard generation counter);
//! [`EvictionPolicy::CostWeighted`] prefers evicting entries that are
//! cheap to recompute (per [`CacheValue::recompute_cost_ms`]), breaking
//! ties by recency.
//!
//! **Spill tier:** computed artifacts persist as `<dir>/<key>.json`. The
//! writer fsyncs before the atomic rename, so a crash never leaves a torn
//! file behind the durable name; construction sweeps the directory,
//! garbage-collecting orphaned `.json.tmp` files and trimming the on-disk
//! entry count (oldest first) to its own bound.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::UNIX_EPOCH;

use qsdnn::engine::{CostLut, Fnv64, Objective};
use qsdnn::PortfolioOutcome;
use qsdnn_obs::{EventKind, FlightRecorder};
use serde::{Deserialize, Serialize};

/// Locks a cache mutex, recovering from poisoning. Every mutation under
/// these locks is transactional (insert/remove completes before the guard
/// drops), so state left by a panicked peer is still coherent — poisoning
/// must not take the whole cache down with the one request that unwound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Builds the content address for one plan scenario.
///
/// The LUT fingerprint already covers network, platform, mode and every
/// profiled number; the objective and portfolio fingerprints cover what the
/// search will do with them.
pub fn plan_key(lut_fingerprint: u64, objective: &Objective, portfolio_fingerprint: u64) -> String {
    plan_key_on(lut_fingerprint, objective, portfolio_fingerprint, None)
}

/// [`plan_key`] for a scenario pinned to an explicitly selected platform.
///
/// `platform` is `Some((name, spec_fingerprint))` only when the request
/// *engaged* a non-default platform; `None` hashes exactly the bytes
/// `plan_key` always hashed, so default-platform requests keep their
/// historical content addresses (and their caches) across the registry
/// refactor.
pub fn plan_key_on(
    lut_fingerprint: u64,
    objective: &Objective,
    portfolio_fingerprint: u64,
    platform: Option<(&str, u64)>,
) -> String {
    let mut h = Fnv64::new();
    h.write_str("qsdnn-plan-v1");
    h.write_u64(lut_fingerprint);
    objective.fingerprint_into(&mut h);
    h.write_u64(portfolio_fingerprint);
    if let Some((name, fp)) = platform {
        h.write_str("platform");
        h.write_str(name);
        h.write_u64(fp);
    }
    format!("{:016x}", h.finish())
}

/// Content address of a *warm-started* plan: the scenario identity plus
/// the donor plan's key. A warm search's outcome depends on which donor
/// seeded it, so warm plans never share a key with the cold plan for the
/// same scenario (or with a warm plan seeded by a different donor) — a
/// later `transfer: "off"` request therefore can never be served a
/// transferred result.
pub fn warm_plan_key(
    lut_fingerprint: u64,
    objective: &Objective,
    portfolio_fingerprint: u64,
    donor_key: &str,
) -> String {
    warm_plan_key_on(
        lut_fingerprint,
        objective,
        portfolio_fingerprint,
        donor_key,
        None,
    )
}

/// [`warm_plan_key`] with the same optional platform component as
/// [`plan_key_on`]: `None` preserves the historical bytes, `Some` binds
/// the warm plan to the explicitly selected target.
pub fn warm_plan_key_on(
    lut_fingerprint: u64,
    objective: &Objective,
    portfolio_fingerprint: u64,
    donor_key: &str,
    platform: Option<(&str, u64)>,
) -> String {
    let mut h = Fnv64::new();
    h.write_str("qsdnn-plan-warm-v1");
    h.write_u64(lut_fingerprint);
    objective.fingerprint_into(&mut h);
    h.write_u64(portfolio_fingerprint);
    h.write_str(donor_key);
    if let Some((name, fp)) = platform {
        h.write_str("platform");
        h.write_str(name);
        h.write_u64(fp);
    }
    format!("{:016x}", h.finish())
}

/// What the cache can hold: serializable (for the spill tier), cloneable,
/// and able to estimate its own recompute cost for cost-weighted eviction.
pub trait CacheValue: Serialize + Deserialize + Clone {
    /// Estimated cost (ms of search/profile work) to recompute this
    /// artifact from scratch. Cost-weighted eviction keeps expensive
    /// artifacts resident longer. The default makes cost-weighted eviction
    /// degrade to LRU.
    fn recompute_cost_ms(&self) -> f64 {
        0.0
    }
}

impl CacheValue for PortfolioOutcome {
    /// The wall time the portfolio actually spent across all members.
    fn recompute_cost_ms(&self) -> f64 {
        self.members.iter().map(|m| m.wall_time_ms).sum()
    }
}

impl CacheValue for CostLut {
    /// Profiling cost scales with the number of profiled implementations.
    fn recompute_cost_ms(&self) -> f64 {
        self.layers()
            .iter()
            .map(|l| l.candidates.len())
            .sum::<usize>() as f64
    }
}

/// Which resident entry a full shard sacrifices to admit a new compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used ready entry.
    #[default]
    Lru,
    /// Evict the ready entry that is cheapest to recompute
    /// ([`CacheValue::recompute_cost_ms`]), ties broken by recency.
    CostWeighted,
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(EvictionPolicy::Lru),
            "cost" | "cost-weighted" => Ok(EvictionPolicy::CostWeighted),
            other => Err(format!("unknown eviction policy `{other}` (lru|cost)")),
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictionPolicy::Lru => write!(f, "lru"),
            EvictionPolicy::CostWeighted => write!(f, "cost-weighted"),
        }
    }
}

/// Aggregate cache counters (monotonic since construction).
///
/// Every completed `get_or_compute` call lands in exactly one of `hits`,
/// `misses`, `coalesced` or `spill_loads`, so the four always sum to the
/// number of requests the cache has answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from memory without waiting.
    pub hits: u64,
    /// Requests that ran a fresh search.
    pub misses: u64,
    /// Requests that piggy-backed on another request's in-flight search.
    pub coalesced: u64,
    /// Requests answered from the spill directory.
    pub spill_loads: u64,
    /// Ready entries currently resident in memory (all shards).
    pub entries: u64,
    /// In-flight computes currently holding slots (all shards).
    pub in_flight: u64,
    /// Ready entries evicted to make room (all shards).
    pub evictions: u64,
    /// Times a claim had to block because its shard was full of in-flight
    /// computes (the bound held instead of overrunning).
    pub capacity_stalls: u64,
    /// Number of shards the cache is split into.
    pub shards: u64,
}

impl CacheStats {
    /// Fraction of requests that avoided a fresh search.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced + self.spill_loads;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced + self.spill_loads) as f64 / total as f64
        }
    }
}

/// One shard's counters and occupancy, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Ready entries resident in this shard.
    pub entries: u64,
    /// In-flight computes holding slots in this shard.
    pub in_flight: u64,
    /// The shard's slot capacity (ready + in-flight never exceeds it).
    pub capacity: u64,
    /// Requests answered from this shard without waiting.
    pub hits: u64,
    /// Requests that ran a fresh search in this shard.
    pub misses: u64,
    /// Requests that piggy-backed on an in-flight search in this shard.
    pub coalesced: u64,
    /// Requests answered from the spill directory via this shard.
    pub spill_loads: u64,
    /// Ready entries evicted from this shard.
    pub evictions: u64,
    /// Claims that blocked on a shard full of in-flight computes.
    pub capacity_stalls: u64,
}

/// Default cap on resident entries across all shards (a plan outcome with
/// a 1000-episode learning curve is tens of kB; ~4k entries keeps the
/// cache far from out-of-memory territory while covering thousands of hot
/// scenarios).
pub const DEFAULT_MAX_ENTRIES: usize = 4096;

/// Default shard count — enough to keep 16-ish connection threads off each
/// other's locks without fragmenting the capacity budget.
pub const DEFAULT_SHARDS: usize = 8;

/// Default cap on spilled `.json` files (the durable tier is cheap but not
/// free; oldest entries are garbage-collected past this).
pub const DEFAULT_MAX_DISK_ENTRIES: usize = 16384;

struct ReadyEntry<T> {
    value: Arc<T>,
    /// Shard generation at last access — larger is more recent.
    last_used: u64,
    /// Snapshot of [`CacheValue::recompute_cost_ms`] at insert time.
    cost_ms: f64,
    /// Preserialized protocol-v3 response body for the zero-copy
    /// cache-hit fast path. Lazily attached after the first eligible
    /// binary-framed hit; lives and dies with this slot, so eviction,
    /// replacement, and spill reload (which starts a fresh entry) all
    /// invalidate it for free. Never spilled: the durable tier stores
    /// plans, and the body is cheap to rebuild once per residency.
    wire_body: Option<Arc<Vec<u8>>>,
}

enum Slot<T> {
    InFlight,
    Ready(ReadyEntry<T>),
}

#[derive(Default, Clone, Copy)]
struct ShardCounters {
    hits: u64,
    misses: u64,
    coalesced: u64,
    spill_loads: u64,
    evictions: u64,
    capacity_stalls: u64,
}

struct ShardState<T> {
    map: HashMap<String, Slot<T>>,
    /// Generation counter backing true-LRU recency.
    tick: u64,
    counters: ShardCounters,
}

struct Shard<T> {
    state: Mutex<ShardState<T>>,
    ready: Condvar,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard {
            state: Mutex::new(ShardState {
                map: HashMap::new(),
                tick: 0,
                counters: ShardCounters::default(),
            }),
            ready: Condvar::new(),
        }
    }
}

/// The bounded durable tier: an index of spilled keys in age order, used
/// to garbage-collect the oldest files past the on-disk bound.
struct SpillTier {
    dir: PathBuf,
    max_disk_entries: usize,
    index: Mutex<DiskIndex>,
}

#[derive(Default)]
struct DiskIndex {
    /// Keys in eviction order, oldest first.
    order: VecDeque<String>,
    present: HashSet<String>,
}

impl SpillTier {
    /// Opens the tier: creates the directory, deletes orphaned `.json.tmp`
    /// files left by a crashed writer, indexes the surviving `.json`
    /// entries by age and trims them to the bound.
    fn open(dir: PathBuf, max_disk_entries: usize) -> std::io::Result<SpillTier> {
        std::fs::create_dir_all(&dir)?;
        let tier = SpillTier {
            dir,
            max_disk_entries,
            index: Mutex::new(DiskIndex::default()),
        };
        tier.sweep()?;
        Ok(tier)
    }

    fn sweep(&self) -> std::io::Result<()> {
        let mut files: Vec<(String, std::time::SystemTime)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".json.tmp") {
                // Orphan from a writer that died between create and
                // rename; it was never part of the durable tier.
                let _ = std::fs::remove_file(entry.path());
            } else if let Some(key) = name.strip_suffix(".json") {
                let mtime = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(UNIX_EPOCH);
                files.push((key.to_string(), mtime));
            }
        }
        files.sort_by_key(|f| f.1);
        let excess = files.len().saturating_sub(self.max_disk_entries);
        let mut index = lock_recover(&self.index);
        *index = DiskIndex::default();
        for (key, _) in files.drain(..excess) {
            let _ = std::fs::remove_file(self.path_for(&key));
        }
        for (key, _) in files {
            index.present.insert(key.clone());
            index.order.push_back(key);
        }
        Ok(())
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    fn load(&self, key: &str) -> Option<String> {
        std::fs::read_to_string(self.path_for(key)).ok()
    }

    fn store(&self, key: &str, json: &str) {
        let path = self.path_for(key);
        let tmp = path.with_extension("json.tmp");
        let durable = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            // fsync *before* the rename: the rename is what makes the
            // entry durable, so the bytes must already be on disk.
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if durable.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        let mut index = lock_recover(&self.index);
        if index.present.insert(key.to_string()) {
            index.order.push_back(key.to_string());
        }
        while index.order.len() > self.max_disk_entries {
            let Some(victim) = index.order.pop_front() else {
                break;
            };
            index.present.remove(&victim);
            let _ = std::fs::remove_file(self.path_for(&victim));
        }
    }

    /// Spilled entries currently indexed.
    fn len(&self) -> usize {
        lock_recover(&self.index).order.len()
    }
}

/// Content-addressed, sharded, single-flight cache. `T` is the cached
/// artifact — `PortfolioOutcome` for plans, `CostLut` for Phase-1
/// profiles.
pub struct PlanCache<T> {
    shards: Vec<Shard<T>>,
    /// Total resident bound requested via [`PlanCache::with_max_entries`].
    max_entries: usize,
    /// Shard count requested via [`PlanCache::with_shards`] (the effective
    /// count is clamped so every shard gets at least one slot).
    requested_shards: usize,
    policy: EvictionPolicy,
    spill: Option<SpillTier>,
    /// Flight recorder plus this cache's id in `CacheHit`/`CacheMiss`/...
    /// events (`a` payload; the serve stack uses 0 = plans, 1 = profiles).
    recorder: Option<(Arc<FlightRecorder>, u64)>,
}

/// Removes the in-flight marker if the computing thread unwinds, waking
/// waiters so they can retry instead of blocking forever.
struct InFlightGuard<'a, T> {
    shard: &'a Shard<T>,
    key: &'a str,
    completed: bool,
}

impl<T> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            let mut state = lock_recover(&self.shard.state);
            if matches!(state.map.get(self.key), Some(Slot::InFlight)) {
                state.map.remove(self.key);
            }
            drop(state);
            self.shard.ready.notify_all();
        }
    }
}

impl<T: CacheValue> PlanCache<T> {
    /// In-memory cache: [`DEFAULT_SHARDS`] shards sharing
    /// [`DEFAULT_MAX_ENTRIES`] resident slots, LRU eviction.
    pub fn new() -> Self {
        let mut cache = PlanCache {
            shards: Vec::new(),
            max_entries: DEFAULT_MAX_ENTRIES,
            requested_shards: DEFAULT_SHARDS,
            policy: EvictionPolicy::Lru,
            spill: None,
            recorder: None,
        };
        cache.rebuild_shards();
        cache
    }

    /// Cache that additionally persists every computed artifact as
    /// `<dir>/<key>.json` and warm-starts from such files on miss. Opening
    /// sweeps the directory: orphaned `.json.tmp` files are deleted and
    /// the on-disk entry count is trimmed (oldest first) to
    /// [`DEFAULT_MAX_DISK_ENTRIES`].
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created or swept.
    pub fn with_spill_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let mut cache = PlanCache::new();
        cache.spill = Some(SpillTier::open(dir.into(), DEFAULT_MAX_DISK_ENTRIES)?);
        Ok(cache)
    }

    /// Returns the cache with a different total resident bound (min 1).
    /// The bound is divided across shards and holds per shard as a hard
    /// invariant, in-flight computes included. Resets resident entries.
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self.rebuild_shards();
        self
    }

    /// Returns the cache with a different shard count (min 1; clamped to
    /// the resident bound so every shard owns at least one slot). Resets
    /// resident entries.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.requested_shards = shards.max(1);
        self.rebuild_shards();
        self
    }

    /// Returns the cache with a different eviction policy.
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the cache journaling every hit/miss/coalesce/spill/evict/
    /// stall to `recorder` as flight-recorder events tagged `cache_id`.
    /// Counters stay authoritative for totals; the journal adds per-event
    /// timing, shard and request attribution.
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>, cache_id: u64) -> Self {
        self.recorder = Some((recorder, cache_id));
        self
    }

    /// Returns the cache with a different bound on spilled `.json` files
    /// (min 1); trims the directory immediately if it is over. No effect
    /// without a spill directory.
    pub fn with_max_disk_entries(mut self, max_disk_entries: usize) -> Self {
        if let Some(spill) = self.spill.as_mut() {
            spill.max_disk_entries = max_disk_entries.max(1);
            let _ = spill.sweep();
        }
        self
    }

    fn rebuild_shards(&mut self) {
        let n = self.requested_shards.min(self.max_entries).max(1);
        self.shards = (0..n).map(|_| Shard::default()).collect();
    }

    /// Slots each shard may hold (ready + in-flight). The floor division
    /// guarantees the total never exceeds `max_entries`.
    fn per_shard_cap(&self) -> usize {
        (self.max_entries / self.shards.len()).max(1)
    }

    /// Selects the shard from a stable hash of the whole key. Hashing
    /// every byte (not just a prefix) keeps the distribution uniform even
    /// for key families that share long common prefixes, e.g. zero-padded
    /// counters or namespaced keys.
    fn shard_index(&self, key: &str) -> usize {
        let mut h = Fnv64::new();
        h.write_str(key);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard_for(&self, key: &str) -> &Shard<T> {
        // LINT-ALLOW(panic-path): the index is `hash % len`, in range by
        // construction, and `shards` is never empty (clamped to >= 1).
        &self.shards[self.shard_index(key)]
    }

    /// Journals one cache event when a recorder is attached. Plan keys are
    /// 16 hex chars, so the key packs losslessly into the event's `key`
    /// field; non-hex keys (tests) record as 0.
    fn record(&self, kind: EventKind, key: &str) {
        if let Some((rec, cache_id)) = &self.recorder {
            if rec.enabled() {
                let packed = u64::from_str_radix(key, 16).unwrap_or(0);
                rec.emit(kind, packed, *cache_id, self.shard_index(key) as u64);
            }
        }
    }

    fn load_spilled(&self, key: &str) -> Option<T> {
        let json = self.spill.as_ref()?.load(key)?;
        serde_json::from_str(&json).ok()
    }

    fn spill(&self, key: &str, outcome: &T) {
        if let Some(spill) = &self.spill {
            if let Ok(json) = serde_json::to_string(outcome) {
                spill.store(key, &json);
            }
        }
    }

    /// Evicts one ready victim per the policy; `false` when every slot is
    /// an in-flight compute (nothing is safely removable — threads wait on
    /// those slots).
    fn evict_one(&self, state: &mut ShardState<T>) -> bool {
        let victim = state
            .map
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Ready(e) => Some((k, e)),
                Slot::InFlight => None,
            })
            .min_by(|a, b| match self.policy {
                EvictionPolicy::Lru => a.1.last_used.cmp(&b.1.last_used),
                EvictionPolicy::CostWeighted => {
                    a.1.cost_ms
                        .partial_cmp(&b.1.cost_ms)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.1.last_used.cmp(&b.1.last_used))
                }
            })
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                state.map.remove(&k);
                state.counters.evictions += 1;
                self.record(EventKind::CacheEvict, &k);
                true
            }
            None => false,
        }
    }

    /// Looks up `key` without ever computing: a resident hit refreshes
    /// recency and counts as a cache hit; a spill-tier hit counts as a
    /// spill load and becomes resident when the shard has room (it is
    /// dropped from memory, not blocked on, when every slot is in
    /// flight). A miss touches no counter — callers use `peek` to decide
    /// *which* key to compute under (exact vs warm-started), and the
    /// follow-up `get_or_compute` accounts that request.
    ///
    /// An in-flight slot reads as a miss: peek never waits on another
    /// thread's compute. Use [`PlanCache::is_pending`] to tell "being
    /// computed right now" apart from "gone from both tiers".
    pub fn peek(&self, key: &str) -> Option<Arc<T>> {
        self.peek_inner(key, true)
    }

    /// [`PlanCache::peek`] for *internal* fetches (e.g. transfer donors):
    /// refreshes recency and loads from spill exactly like `peek`, but
    /// touches none of the request counters, preserving the invariant
    /// that `hits + misses + coalesced + spill_loads` counts only
    /// requests the cache answered for callers.
    pub fn peek_quiet(&self, key: &str) -> Option<Arc<T>> {
        self.peek_inner(key, false)
    }

    /// Whether `key` currently holds an in-flight compute — some other
    /// request owns the slot via `get_or_compute` and will publish (or
    /// unwind) soon. `peek` reports such slots as misses.
    pub fn is_pending(&self, key: &str) -> bool {
        let state = lock_recover(&self.shard_for(key).state);
        matches!(state.map.get(key), Some(Slot::InFlight))
    }

    /// The preserialized wire body attached to `key`'s resident entry,
    /// if any. Deliberately recency-neutral: the paired [`PlanCache::peek`]
    /// on the hot path already refreshed LRU for this hit, and a body
    /// fetch must not double-count it.
    pub fn wire_body(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        let state = lock_recover(&self.shard_for(key).state);
        match state.map.get(key) {
            Some(Slot::Ready(entry)) => entry.wire_body.clone(),
            _ => None,
        }
    }

    /// Attaches a preserialized wire body to `key`'s resident entry so
    /// later binary-framed hits skip serialization entirely. A no-op when
    /// the key is absent or in flight (the entry may have been evicted
    /// between the hit and the attach — the body is then rebuilt on the
    /// next residency, which is exactly the invalidation contract).
    pub fn attach_wire_body(&self, key: &str, body: Arc<Vec<u8>>) {
        let mut state = lock_recover(&self.shard_for(key).state);
        if let Some(Slot::Ready(entry)) = state.map.get_mut(key) {
            entry.wire_body = Some(body);
        }
    }

    fn peek_inner(&self, key: &str, counted: bool) -> Option<Arc<T>> {
        let shard = self.shard_for(key);
        {
            let mut state = lock_recover(&shard.state);
            // Reborrow so the entry's borrow of `map` can coexist with
            // the disjoint `tick`/`counters` field updates.
            let st = &mut *state;
            if let Some(Slot::Ready(entry)) = st.map.get_mut(key) {
                st.tick += 1;
                if counted {
                    st.counters.hits += 1;
                }
                entry.last_used = st.tick;
                let value = Arc::clone(&entry.value);
                drop(state);
                if counted {
                    self.record(EventKind::CacheHit, key);
                }
                return Some(value);
            }
        }
        // Not resident: try the durable tier (outside the lock — disk I/O
        // must not serialize the shard).
        let value = Arc::new(self.load_spilled(key)?);
        let cap = self.per_shard_cap();
        let mut state = lock_recover(&shard.state);
        if counted {
            state.counters.spill_loads += 1;
        }
        match state.map.get(key) {
            // Someone published or claimed the key meanwhile; leave their
            // slot alone and serve our loaded copy.
            Some(_) => {}
            None => {
                if state.map.len() < cap || self.evict_one(&mut state) {
                    state.tick += 1;
                    let entry = ReadyEntry {
                        value: Arc::clone(&value),
                        last_used: state.tick,
                        cost_ms: value.recompute_cost_ms(),
                        wire_body: None,
                    };
                    state.map.insert(key.to_string(), Slot::Ready(entry));
                }
            }
        }
        drop(state);
        if counted {
            self.record(EventKind::CacheSpillLoad, key);
        }
        Some(value)
    }

    /// Looks up `key`, computing it with `compute` on a miss. Guarantees at
    /// most one concurrent `compute` per key (single-flight) and never more
    /// than the shard's capacity in resident slots, in-flight included.
    /// Returns the outcome and whether it was served without running
    /// `compute` on this call.
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> T) -> (Arc<T>, bool) {
        match self.try_get_or_compute(key, || Ok::<T, std::convert::Infallible>(compute())) {
            Ok(served) => served,
            Err(never) => match never {},
        }
    }

    /// Fallible [`PlanCache::get_or_compute`]: when `compute` fails, the
    /// in-flight slot is released, waiters are woken (the next one retries
    /// the compute), nothing is cached or spilled, and the error is
    /// returned to this caller only.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error verbatim.
    pub fn try_get_or_compute<E>(
        &self,
        key: &str,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        let cap = self.per_shard_cap();
        let shard = self.shard_for(key);
        let mut waited = false;
        {
            let mut state = lock_recover(&shard.state);
            loop {
                // Reborrow so the entry's borrow of `map` can coexist
                // with the disjoint `tick`/`counters` field updates.
                let st = &mut *state;
                if let Some(Slot::Ready(entry)) = st.map.get_mut(key) {
                    st.tick += 1;
                    if waited {
                        st.counters.coalesced += 1;
                    } else {
                        st.counters.hits += 1;
                    }
                    entry.last_used = st.tick;
                    let value = Arc::clone(&entry.value);
                    drop(state);
                    self.record(
                        if waited {
                            EventKind::CacheCoalesced
                        } else {
                            EventKind::CacheHit
                        },
                        key,
                    );
                    return Ok((value, true));
                }
                // Ready was handled above, so an occupied slot means an
                // in-flight compute someone else owns: wait for it to
                // publish or unwind. Counted once per request at the
                // end, not once per wakeup.
                if state.map.contains_key(key) {
                    waited = true;
                    state = match shard.ready.wait(state) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    continue;
                }
                // Claim the key — but only if the shard has room. The
                // in-flight marker counts toward the bound, so the
                // capacity invariant holds from claim to publish.
                if state.map.len() < cap || self.evict_one(&mut state) {
                    state.map.insert(key.to_string(), Slot::InFlight);
                    break;
                }
                // Every slot is an in-flight compute: wait for one to
                // publish (then evictable) or unwind — never overrun
                // the bound.
                state.counters.capacity_stalls += 1;
                self.record(EventKind::CacheStall, key);
                waited = true;
                state = match shard.ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        // We own the in-flight slot. Check disk first, then compute. The
        // guard releases the slot if `compute` fails or unwinds.
        let mut guard = InFlightGuard {
            shard,
            key,
            completed: false,
        };
        let (outcome, from_spill) = match self.load_spilled(key) {
            Some(o) => {
                self.record(EventKind::CacheSpillLoad, key);
                (o, true)
            }
            None => {
                // Journaled before the compute runs so a slow request's
                // exemplar shows the miss *preceding* its search stages.
                self.record(EventKind::CacheMiss, key);
                (compute()?, false)
            }
        };
        let outcome = Arc::new(outcome);
        {
            let mut state = lock_recover(&shard.state);
            state.tick += 1;
            let entry = ReadyEntry {
                value: Arc::clone(&outcome),
                last_used: state.tick,
                cost_ms: outcome.recompute_cost_ms(),
                wire_body: None,
            };
            // Replaces our own in-flight marker: occupancy is unchanged,
            // so the bound established at claim time still holds.
            state.map.insert(key.to_string(), Slot::Ready(entry));
            if from_spill {
                state.counters.spill_loads += 1;
            } else {
                state.counters.misses += 1;
            }
        }
        guard.completed = true;
        drop(guard);
        shard.ready.notify_all();
        if !from_spill {
            if self.spill.is_some() {
                self.record(EventKind::CacheSpill, key);
            }
            self.spill(key, &outcome);
        }
        Ok((outcome, from_spill))
    }

    fn shard_stats_locked(state: &MutexGuard<'_, ShardState<T>>, cap: usize) -> ShardStats {
        let in_flight = state
            .map
            .values()
            .filter(|s| matches!(s, Slot::InFlight))
            .count() as u64;
        ShardStats {
            entries: state.map.len() as u64 - in_flight,
            in_flight,
            capacity: cap as u64,
            hits: state.counters.hits,
            misses: state.counters.misses,
            coalesced: state.counters.coalesced,
            spill_loads: state.counters.spill_loads,
            evictions: state.counters.evictions,
            capacity_stalls: state.counters.capacity_stalls,
        }
    }

    /// Per-shard occupancy and counters (one consistent snapshot per
    /// shard; shards are sampled in order, not atomically together).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let cap = self.per_shard_cap();
        self.shards
            .iter()
            .map(|s| Self::shard_stats_locked(&lock_recover(&s.state), cap))
            .collect()
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            coalesced: 0,
            spill_loads: 0,
            entries: 0,
            in_flight: 0,
            evictions: 0,
            capacity_stalls: 0,
            shards: self.shards.len() as u64,
        };
        for s in self.shard_stats() {
            total.hits += s.hits;
            total.misses += s.misses;
            total.coalesced += s.coalesced;
            total.spill_loads += s.spill_loads;
            total.entries += s.entries;
            total.in_flight += s.in_flight;
            total.evictions += s.evictions;
            total.capacity_stalls += s.capacity_stalls;
        }
        total
    }

    /// Resident slots (ready + in-flight) across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_recover(&s.state).map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spilled `.json` entries currently on disk (0 without a spill dir).
    pub fn spilled_entries(&self) -> usize {
        self.spill.as_ref().map_or(0, SpillTier::len)
    }
}

impl<T: CacheValue> Default for PlanCache<T> {
    fn default() -> Self {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::toy;
    use qsdnn::Portfolio;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use qsdnn::PortfolioOutcome;

    fn outcome() -> PortfolioOutcome {
        Portfolio::paper_default(60, &[1])
            .run_sequential(&toy::fig1_lut())
            .expect("applicable")
    }

    #[test]
    fn hit_returns_identical_plan() {
        let cache = PlanCache::<PortfolioOutcome>::new();
        let (first, hit1) = cache.get_or_compute("k", outcome);
        assert!(!hit1);
        let (second, hit2) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert!(hit2);
        assert_eq!(*first, *second, "cache hit must return the identical plan");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_identical_requests_run_one_search() {
        let cache = Arc::new(PlanCache::<PortfolioOutcome>::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (out, _) = cache.get_or_compute("same-key", || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Give the other threads time to pile up on the slot.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    outcome()
                });
                out.best.best_cost_ms
            }));
        }
        let costs: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 15);
        assert!(stats.hit_rate() > 0.9);
    }

    #[test]
    fn panicking_compute_releases_the_slot() {
        let cache = PlanCache::<PortfolioOutcome>::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute("k", || panic!("search exploded"));
        }));
        assert!(boom.is_err());
        // The slot must be free again: a retry computes normally.
        let (out, hit) = cache.get_or_compute("k", outcome);
        assert!(!hit);
        assert!(out.best.best_cost_ms.is_finite());
    }

    #[test]
    fn failing_compute_releases_the_slot_and_caches_nothing() {
        let cache = PlanCache::<PortfolioOutcome>::new();
        let err = cache
            .try_get_or_compute("k", || Err::<PortfolioOutcome, String>("no member".into()))
            .expect_err("compute failure propagates");
        assert_eq!(err, "no member");
        let stats = cache.stats();
        assert_eq!(stats.in_flight, 0, "failed compute must release its slot");
        assert_eq!(stats.entries, 0, "errors are never cached");
        // A retry on the same key computes normally (no poisoned slot, no
        // cached error) and is accounted as an ordinary miss.
        let (out, served_without_compute) = cache
            .try_get_or_compute("k", || Ok::<_, String>(outcome()))
            .unwrap();
        assert!(!served_without_compute);
        assert!(out.best.best_cost_ms.is_finite());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn spill_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("qsdnn_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
            cache.get_or_compute("spilled", outcome);
        }
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
        let (out, served_without_compute) =
            cache.get_or_compute("spilled", || panic!("must load from disk"));
        assert!(served_without_compute);
        assert_eq!(out.best.best_assignment, outcome().best.best_assignment);
        assert_eq!(cache.stats().spill_loads, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_bound_evicts_but_keeps_the_newest_entry() {
        let cache = PlanCache::<PortfolioOutcome>::new().with_max_entries(2);
        for key in ["a", "b", "c", "d"] {
            cache.get_or_compute(key, outcome);
            assert!(cache.len() <= 2, "bound must hold after every insert");
        }
        // The most recent insertion always survives its own insert.
        let (_, hit) = cache.get_or_compute("d", || panic!("d must be resident"));
        assert!(hit);
        // Misses on evicted keys recompute (and stay within the bound).
        let recomputed = cache.stats().misses;
        assert_eq!(
            recomputed, 4,
            "each distinct key computed exactly once so far"
        );
    }

    /// Regression for the seed bug: the bound check counted in-flight
    /// slots as evictable, so a shard whose slots were all in-flight
    /// overran `max_entries`. Now the extra claim stalls until a compute
    /// publishes, and the bound holds at every instant.
    #[test]
    fn bound_holds_with_all_slots_in_flight() {
        let cache = Arc::new(
            PlanCache::<PortfolioOutcome>::new()
                .with_shards(1)
                .with_max_entries(2),
        );
        let mut slow = Vec::new();
        for key in ["a", "b"] {
            let cache = Arc::clone(&cache);
            slow.push(std::thread::spawn(move || {
                cache.get_or_compute(key, || {
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    outcome()
                });
            }));
        }
        // Let both slow computes claim their slots.
        while cache.len() < 2 {
            std::thread::yield_now();
        }
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let extra = {
            let cache = Arc::clone(&cache);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                cache.get_or_compute("c", outcome);
                done.store(true, Ordering::SeqCst);
            })
        };
        // The third insert must wait for room, never overrun the bound.
        while !done.load(Ordering::SeqCst) {
            assert!(cache.len() <= 2, "bound violated under in-flight pressure");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        extra.join().unwrap();
        for h in slow {
            h.join().unwrap();
        }
        assert!(cache.len() <= 2);
        let stats = cache.stats();
        assert_eq!(stats.misses, 3, "all three keys computed exactly once");
        assert!(
            stats.capacity_stalls >= 1,
            "the extra claim must have stalled at the full shard"
        );
    }

    /// Regression for the coalesced-counter bug: a request that waits
    /// through several panic-retry wakeups must be accounted exactly once,
    /// so the four request counters always sum to the number of completed
    /// requests and `hit_rate` stays within [0, 1].
    #[test]
    fn coalesced_counts_once_per_request_across_panic_retries() {
        let cache = Arc::new(PlanCache::<PortfolioOutcome>::new().with_shards(1));
        let attempts = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let attempts = Arc::clone(&attempts);
            handles.push(std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute("k", || {
                        let n = attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        // The first two claimed computes explode; waiters
                        // wake, one re-claims, and the third succeeds.
                        assert!(n >= 2, "search exploded");
                        outcome()
                    });
                }))
                .is_ok()
            }));
        }
        let succeeded = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count() as u64;
        assert_eq!(succeeded, 14, "exactly the two panicking requests fail");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one successful fresh search");
        assert_eq!(
            stats.hits + stats.misses + stats.coalesced + stats.spill_loads,
            succeeded,
            "every completed request is accounted exactly once"
        );
        let rate = stats.hit_rate();
        assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
        assert!(rate >= 13.0 / 14.0 - 1e-9, "13 of 14 served without search");
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = PlanCache::<PortfolioOutcome>::new()
            .with_shards(1)
            .with_max_entries(2)
            .with_eviction(EvictionPolicy::Lru);
        cache.get_or_compute("a", outcome);
        cache.get_or_compute("b", outcome);
        // Touch "a" so "b" becomes the LRU victim.
        cache.get_or_compute("a", || panic!("a is resident"));
        cache.get_or_compute("c", outcome);
        let (_, a_hit) = cache.get_or_compute("a", || panic!("a must survive"));
        assert!(a_hit, "recently used entry survives eviction");
        let (_, b_hit) = cache.get_or_compute("b", outcome);
        assert!(!b_hit, "LRU victim was evicted");
    }

    #[test]
    fn cost_weighted_eviction_prefers_cheap_entries() {
        // Two outcomes with different wall times: the cheap one goes first.
        let cheap = || {
            let mut o = outcome();
            for m in &mut o.members {
                m.wall_time_ms = 0.001;
            }
            o
        };
        let expensive = || {
            let mut o = outcome();
            for m in &mut o.members {
                m.wall_time_ms = 1000.0;
            }
            o
        };
        let cache = PlanCache::<PortfolioOutcome>::new()
            .with_shards(1)
            .with_max_entries(2)
            .with_eviction(EvictionPolicy::CostWeighted);
        cache.get_or_compute("expensive", expensive);
        cache.get_or_compute("cheap", cheap);
        // Touch "cheap" — under LRU "expensive" would now be the victim,
        // but cost-weighted still sacrifices the cheap entry.
        cache.get_or_compute("cheap", || panic!("resident"));
        cache.get_or_compute("new", outcome);
        let (_, kept) = cache.get_or_compute("expensive", || panic!("must survive"));
        assert!(kept, "expensive-to-recompute entry survives");
        let (_, evicted_hit) = cache.get_or_compute("cheap", cheap);
        assert!(!evicted_hit, "cheap entry was the victim");
    }

    #[test]
    fn startup_sweep_removes_orphaned_tmp_files() {
        let dir = std::env::temp_dir().join(format!("qsdnn_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A crashed writer's orphan and a valid spilled entry.
        std::fs::write(dir.join("deadbeef.json.tmp"), "{half a pla").unwrap();
        {
            let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
            cache.get_or_compute("valid", outcome);
        }
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
        assert!(
            !dir.join("deadbeef.json.tmp").exists(),
            "orphaned tmp file must be garbage-collected"
        );
        assert_eq!(cache.spilled_entries(), 1, "valid entry survives the sweep");
        let (_, loaded) = cache.get_or_compute("valid", || panic!("must load from disk"));
        assert!(loaded);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_tier_is_bounded_and_gcs_oldest_first() {
        let dir = std::env::temp_dir().join(format!("qsdnn_diskgc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir)
            .unwrap()
            .with_max_disk_entries(2);
        for key in ["a", "b", "c", "d"] {
            cache.get_or_compute(key, outcome);
        }
        assert_eq!(cache.spilled_entries(), 2, "disk bound enforced");
        let on_disk: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(on_disk.len(), 2);
        assert!(on_disk.contains(&"d.json".to_string()), "newest survives");
        assert!(!on_disk.contains(&"a.json".to_string()), "oldest GC'd");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_stats_cover_every_shard_and_sum_to_totals() {
        let cache = PlanCache::<PortfolioOutcome>::new()
            .with_shards(4)
            .with_max_entries(64);
        for key in ["a", "b", "c", "d", "e", "f"] {
            cache.get_or_compute(key, outcome);
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.capacity == 16));
        let stats = cache.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(shards.iter().map(|s| s.entries).sum::<u64>(), stats.entries);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), 6);
        assert!(
            shards.iter().filter(|s| s.entries > 0).count() >= 2,
            "keys spread over shards"
        );
    }

    /// Regression: shard selection once hashed only the key's first 8
    /// bytes, so zero-padded key families (shared long prefix) collapsed
    /// into one shard, silently shrinking capacity and re-serializing
    /// every lookup on one lock.
    #[test]
    fn shared_prefix_keys_spread_over_shards() {
        let cache = PlanCache::<PortfolioOutcome>::new()
            .with_shards(8)
            .with_max_entries(4096);
        for k in 0..32 {
            cache.get_or_compute(&format!("{k:016x}"), outcome);
        }
        let occupied = cache.shard_stats().iter().filter(|s| s.entries > 0).count();
        assert!(
            occupied >= 4,
            "32 zero-padded keys must spread over shards, occupied only {occupied}"
        );
    }

    #[test]
    fn eviction_policy_parses_from_cli_strings() {
        assert_eq!(
            "lru".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::Lru
        );
        assert_eq!(
            "cost".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::CostWeighted
        );
        assert_eq!(
            "cost-weighted".parse::<EvictionPolicy>().unwrap(),
            EvictionPolicy::CostWeighted
        );
        assert!("mru".parse::<EvictionPolicy>().is_err());
        assert_eq!(EvictionPolicy::Lru.to_string(), "lru");
    }

    #[test]
    fn peek_serves_memory_and_spill_without_computing() {
        let dir = std::env::temp_dir().join(format!("qsdnn_peek_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
            assert!(cache.peek("k").is_none(), "cold peek is a miss");
            cache.get_or_compute("k", outcome);
            let hit = cache.peek("k").expect("resident");
            assert_eq!(hit.best.best_assignment, outcome().best.best_assignment);
            assert_eq!(cache.stats().hits, 1, "peek hit is accounted");
        }
        // A fresh instance only has the spill tier; peek must load it.
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
        let loaded = cache.peek("k").expect("spilled");
        assert_eq!(loaded.best.best_assignment, outcome().best.best_assignment);
        assert_eq!(cache.stats().spill_loads, 1);
        // …and the entry is resident afterwards: the next peek is a hit.
        cache.peek("k").expect("now resident");
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The protocol-v3 fast path's invalidation contract: a wire body
    /// attaches to the resident entry, is served back verbatim, dies
    /// with the entry on eviction, and does not resurrect through the
    /// spill tier.
    #[test]
    fn wire_body_lives_and_dies_with_the_entry() {
        let dir = std::env::temp_dir().join(format!("qsdnn_wirebody_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
            cache.get_or_compute("k", outcome);
            assert!(cache.wire_body("k").is_none(), "fresh entries start bare");
            let body = Arc::new(vec![0xB3u8, 1, 2, 3]);
            cache.attach_wire_body("k", Arc::clone(&body));
            let got = cache.wire_body("k").expect("attached body is served");
            assert_eq!(*got, *body);
            // Attaching to an absent key is a silent no-op (the entry may
            // have been evicted between hit and attach).
            cache.attach_wire_body("missing", Arc::clone(&body));
            assert!(cache.wire_body("missing").is_none());
        }
        // A fresh instance reloads the plan from spill — the wire body
        // must NOT survive the round trip (fresh residency, fresh body).
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
        assert!(cache.peek("k").is_some(), "plan reloads from spill");
        assert!(
            cache.wire_body("k").is_none(),
            "wire bodies are never spilled"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Eviction drops the attached wire body along with its entry, and a
    /// recomputed residency starts bare again.
    #[test]
    fn wire_body_is_dropped_on_eviction() {
        let cache = PlanCache::<PortfolioOutcome>::new()
            .with_shards(1)
            .with_max_entries(2);
        cache.get_or_compute("aaaa000000000001", outcome);
        cache.attach_wire_body("aaaa000000000001", Arc::new(vec![1, 2, 3]));
        assert!(cache.wire_body("aaaa000000000001").is_some());
        // Fill past capacity so the oldest entry (and its body) evicts.
        cache.get_or_compute("aaaa000000000002", outcome);
        cache.get_or_compute("aaaa000000000003", outcome);
        assert!(cache.peek("aaaa000000000001").is_none(), "entry evicted");
        assert!(
            cache.wire_body("aaaa000000000001").is_none(),
            "body evicted with it"
        );
        // Recompute: the new residency must not inherit the stale body.
        cache.get_or_compute("aaaa000000000001", outcome);
        assert!(cache.wire_body("aaaa000000000001").is_none());
    }

    /// Regression: donor fetches on the transfer path must not inflate
    /// the request counters (the four buckets count answered requests
    /// only), and an in-flight slot must be distinguishable from a key
    /// that is gone from both tiers.
    #[test]
    fn quiet_peek_counts_nothing_and_pending_is_visible() {
        let cache = Arc::new(PlanCache::<PortfolioOutcome>::new());
        cache.get_or_compute("k", outcome);
        let before = cache.stats();
        assert!(cache.peek_quiet("k").is_some());
        assert!(cache.peek_quiet("missing").is_none());
        let after = cache.stats();
        assert_eq!(before.hits, after.hits, "quiet peeks are uncounted");
        assert_eq!(before.spill_loads, after.spill_loads);

        assert!(!cache.is_pending("k"), "ready slots are not pending");
        assert!(!cache.is_pending("missing"));
        // While a compute holds the slot, the key is pending and peek
        // reports a miss instead of waiting.
        let slow = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute("inflight", || {
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    outcome()
                });
            })
        };
        while !cache.is_pending("inflight") {
            std::thread::yield_now();
        }
        assert!(cache.peek("inflight").is_none(), "peek never waits");
        slow.join().unwrap();
        assert!(!cache.is_pending("inflight"));
        assert!(cache.peek_quiet("inflight").is_some());
    }

    #[test]
    fn warm_keys_never_collide_with_cold_keys() {
        let lut = toy::fig1_lut();
        let p = Portfolio::paper_default(100, &[1]);
        let cold = plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint());
        let warm_a = warm_plan_key(
            lut.fingerprint(),
            &Objective::Latency,
            p.warmed().fingerprint(),
            "donor-a",
        );
        let warm_b = warm_plan_key(
            lut.fingerprint(),
            &Objective::Latency,
            p.warmed().fingerprint(),
            "donor-b",
        );
        assert_ne!(cold, warm_a, "cold and warm plans are separate artifacts");
        assert_ne!(warm_a, warm_b, "the donor is part of the warm identity");
        assert_ne!(
            p.fingerprint(),
            p.warmed().fingerprint(),
            "warm-start mode changes the portfolio fingerprint"
        );
    }

    #[test]
    fn plan_keys_separate_scenarios() {
        let lut = toy::fig1_lut();
        let p = Portfolio::paper_default(100, &[1]);
        let base = plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint());
        assert_eq!(base.len(), 16);
        assert_eq!(
            base,
            plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint())
        );
        assert_ne!(
            base,
            plan_key(lut.fingerprint(), &Objective::Energy, p.fingerprint())
        );
        assert_ne!(
            base,
            plan_key(
                toy::small_chain_lut().fingerprint(),
                &Objective::Latency,
                p.fingerprint()
            )
        );
        assert_ne!(
            base,
            plan_key(
                lut.fingerprint(),
                &Objective::Latency,
                Portfolio::paper_default(101, &[1]).fingerprint()
            )
        );
    }

    #[test]
    fn platform_component_is_absent_by_default_and_separates_targets() {
        let lut = toy::fig1_lut();
        let p = Portfolio::paper_default(100, &[1]);
        let legacy = plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint());
        // `None` must hash exactly the bytes `plan_key` always hashed:
        // default-platform requests keep their historical addresses.
        assert_eq!(
            legacy,
            plan_key_on(
                lut.fingerprint(),
                &Objective::Latency,
                p.fingerprint(),
                None
            )
        );
        let pinned = plan_key_on(
            lut.fingerprint(),
            &Objective::Latency,
            p.fingerprint(),
            Some(("sim-gpu-heavy", 0xABCD)),
        );
        assert_ne!(legacy, pinned);
        assert_ne!(
            pinned,
            plan_key_on(
                lut.fingerprint(),
                &Objective::Latency,
                p.fingerprint(),
                Some(("sim-gpu-heavy", 0xABCE)),
            ),
            "the spec fingerprint is part of the plan identity"
        );

        let warm_legacy = warm_plan_key(
            lut.fingerprint(),
            &Objective::Latency,
            p.fingerprint(),
            "donor",
        );
        assert_eq!(
            warm_legacy,
            warm_plan_key_on(
                lut.fingerprint(),
                &Objective::Latency,
                p.fingerprint(),
                "donor",
                None,
            )
        );
        assert_ne!(
            warm_legacy,
            warm_plan_key_on(
                lut.fingerprint(),
                &Objective::Latency,
                p.fingerprint(),
                "donor",
                Some(("sim-gpu-heavy", 0xABCD)),
            )
        );
    }
}
