//! Content-addressed plan cache with single-flight coalescing and optional
//! JSON spill-to-disk.
//!
//! Keys are stable fingerprints of *(LUT, objective, portfolio spec)* — see
//! [`plan_key`] — so any two requests that could possibly produce different
//! plans get different keys, and identical requests (even from different
//! connections, even across process restarts via the spill directory) share
//! one search.
//!
//! **Single-flight:** when several threads ask for the same missing key
//! concurrently, exactly one runs the compute closure; the rest block on a
//! condvar and receive the same `Arc`'d outcome. A panicking compute
//! removes its in-flight marker on unwind so waiters retry rather than
//! hang.
//!
//! **Bounded:** resident entries are capped ([`DEFAULT_MAX_ENTRIES`] by
//! default, tunable via [`PlanCache::with_max_entries`]); inserting past
//! the cap evicts an arbitrary ready entry. Spilled files are not evicted
//! — the disk copy is the durable tier. Smarter (LRU / cost-weighted)
//! eviction is a roadmap item.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use qsdnn::engine::{Fnv64, Objective};
use serde::{Deserialize, Serialize};

/// Builds the content address for one plan scenario.
///
/// The LUT fingerprint already covers network, platform, mode and every
/// profiled number; the objective and portfolio fingerprints cover what the
/// search will do with them.
pub fn plan_key(lut_fingerprint: u64, objective: &Objective, portfolio_fingerprint: u64) -> String {
    let mut h = Fnv64::new();
    h.write_str("qsdnn-plan-v1");
    h.write_u64(lut_fingerprint);
    objective.fingerprint_into(&mut h);
    h.write_u64(portfolio_fingerprint);
    format!("{:016x}", h.finish())
}

/// Cache effectiveness counters (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from memory.
    pub hits: u64,
    /// Requests that ran a fresh search.
    pub misses: u64,
    /// Requests that piggy-backed on another request's in-flight search.
    pub coalesced: u64,
    /// Requests answered from the spill directory.
    pub spill_loads: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of requests that avoided a fresh search.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced + self.spill_loads;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced + self.spill_loads) as f64 / total as f64
        }
    }
}

enum Slot<T> {
    InFlight,
    Ready(Arc<T>),
}

/// Default cap on resident entries (a plan outcome with a 1000-episode
/// learning curve is tens of kB; ~4k entries keeps the cache far from
/// out-of-memory territory while covering thousands of hot scenarios).
pub const DEFAULT_MAX_ENTRIES: usize = 4096;

/// Content-addressed, single-flight cache. `T` is the cached artifact —
/// `PortfolioOutcome` for plans, `CostLut` for Phase-1 profiles.
pub struct PlanCache<T> {
    slots: Mutex<HashMap<String, Slot<T>>>,
    ready: Condvar,
    spill_dir: Option<PathBuf>,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    spill_loads: AtomicU64,
}

/// Removes the in-flight marker if the computing thread unwinds, waking
/// waiters so they can retry instead of blocking forever.
struct InFlightGuard<'a, T: Serialize + Deserialize + Clone> {
    cache: &'a PlanCache<T>,
    key: &'a str,
    completed: bool,
}

impl<T: Serialize + Deserialize + Clone> Drop for InFlightGuard<'_, T> {
    fn drop(&mut self) {
        if !self.completed {
            let mut slots = self.cache.slots.lock().expect("cache lock");
            if matches!(slots.get(self.key), Some(Slot::InFlight)) {
                slots.remove(self.key);
            }
            drop(slots);
            self.cache.ready.notify_all();
        }
    }
}

impl<T: Serialize + Deserialize + Clone> PlanCache<T> {
    /// In-memory cache bounded at [`DEFAULT_MAX_ENTRIES`].
    pub fn new() -> Self {
        PlanCache {
            slots: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            spill_dir: None,
            max_entries: DEFAULT_MAX_ENTRIES,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            spill_loads: AtomicU64::new(0),
        }
    }

    /// Cache that additionally persists every computed plan as
    /// `<dir>/<key>.json` and warm-starts from such files on miss.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn with_spill_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = PlanCache::new();
        cache.spill_dir = Some(dir);
        Ok(cache)
    }

    /// Returns the cache with a different resident-entry cap (min 1).
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries.max(1);
        self
    }

    fn spill_path(&self, key: &str) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    fn load_spilled(&self, key: &str) -> Option<T> {
        let path = self.spill_path(key)?;
        let json = std::fs::read_to_string(path).ok()?;
        serde_json::from_str(&json).ok()
    }

    fn spill(&self, key: &str, outcome: &T) {
        if let Some(path) = self.spill_path(key) {
            if let Ok(json) = serde_json::to_string(outcome) {
                // Write-then-rename so a crashed writer never leaves a
                // half-written plan that a future load would reject.
                let tmp = path.with_extension("json.tmp");
                if std::fs::write(&tmp, json).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
    }

    /// Looks up `key`, computing it with `compute` on a miss. Guarantees at
    /// most one concurrent `compute` per key (single-flight). Returns the
    /// outcome and whether it was served without running `compute` on this
    /// call.
    pub fn get_or_compute(&self, key: &str, compute: impl FnOnce() -> T) -> (Arc<T>, bool) {
        {
            let mut slots = self.slots.lock().expect("cache lock");
            loop {
                match slots.get(key) {
                    Some(Slot::Ready(outcome)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(outcome), true);
                    }
                    Some(Slot::InFlight) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        // Wait for the computing thread; loop because the
                        // slot may have been abandoned on panic.
                        slots = self.ready.wait(slots).expect("cache lock");
                        // Correct the double count if we loop again.
                        match slots.get(key) {
                            Some(Slot::Ready(outcome)) => {
                                return (Arc::clone(outcome), true);
                            }
                            Some(Slot::InFlight) => {
                                self.coalesced.fetch_sub(1, Ordering::Relaxed);
                                continue;
                            }
                            None => {
                                // Abandoned: fall through to compute here.
                                self.coalesced.fetch_sub(1, Ordering::Relaxed);
                                slots.insert(key.to_string(), Slot::InFlight);
                                break;
                            }
                        }
                    }
                    None => {
                        slots.insert(key.to_string(), Slot::InFlight);
                        break;
                    }
                }
            }
        }

        // We own the in-flight slot. Check disk first, then compute.
        let mut guard = InFlightGuard {
            cache: self,
            key,
            completed: false,
        };
        let (outcome, from_spill) = match self.load_spilled(key) {
            Some(o) => (o, true),
            None => (compute(), false),
        };
        let outcome = Arc::new(outcome);
        {
            let mut slots = self.slots.lock().expect("cache lock");
            // Keep the cache bounded: evict an arbitrary ready entry when
            // at capacity (never an in-flight one — threads wait on those).
            if slots.len() >= self.max_entries {
                let victim = slots
                    .iter()
                    .find(|(k, v)| matches!(v, Slot::Ready(_)) && k.as_str() != key)
                    .map(|(k, _)| k.clone());
                if let Some(victim) = victim {
                    slots.remove(&victim);
                }
            }
            slots.insert(key.to_string(), Slot::Ready(Arc::clone(&outcome)));
        }
        guard.completed = true;
        drop(guard);
        self.ready.notify_all();
        if from_spill {
            self.spill_loads.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.spill(key, &outcome);
        }
        (outcome, from_spill)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            spill_loads: self.spill_loads.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").len() as u64,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Serialize + Deserialize + Clone> Default for PlanCache<T> {
    fn default() -> Self {
        PlanCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn::engine::toy;
    use qsdnn::Portfolio;
    use std::sync::atomic::AtomicUsize;

    use qsdnn::PortfolioOutcome;

    fn outcome() -> PortfolioOutcome {
        Portfolio::paper_default(60, &[1])
            .run_sequential(&toy::fig1_lut())
            .expect("applicable")
    }

    #[test]
    fn hit_returns_identical_plan() {
        let cache = PlanCache::<PortfolioOutcome>::new();
        let (first, hit1) = cache.get_or_compute("k", outcome);
        assert!(!hit1);
        let (second, hit2) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert!(hit2);
        assert_eq!(*first, *second, "cache hit must return the identical plan");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_identical_requests_run_one_search() {
        let cache = Arc::new(PlanCache::<PortfolioOutcome>::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (out, _) = cache.get_or_compute("same-key", || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    // Give the other threads time to pile up on the slot.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    outcome()
                });
                out.best.best_cost_ms
            }));
        }
        let costs: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        assert!(costs.windows(2).all(|w| w[0] == w[1]));
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.coalesced, 15);
        assert!(stats.hit_rate() > 0.9);
    }

    #[test]
    fn panicking_compute_releases_the_slot() {
        let cache = PlanCache::<PortfolioOutcome>::new();
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute("k", || panic!("search exploded"));
        }));
        assert!(boom.is_err());
        // The slot must be free again: a retry computes normally.
        let (out, hit) = cache.get_or_compute("k", outcome);
        assert!(!hit);
        assert!(out.best.best_cost_ms.is_finite());
    }

    #[test]
    fn spill_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("qsdnn_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
            cache.get_or_compute("spilled", outcome);
        }
        let cache = PlanCache::<PortfolioOutcome>::with_spill_dir(&dir).unwrap();
        let (out, served_without_compute) =
            cache.get_or_compute("spilled", || panic!("must load from disk"));
        assert!(served_without_compute);
        assert_eq!(out.best.best_assignment, outcome().best.best_assignment);
        assert_eq!(cache.stats().spill_loads, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_bound_evicts_but_keeps_the_newest_entry() {
        let cache = PlanCache::<PortfolioOutcome>::new().with_max_entries(2);
        for key in ["a", "b", "c", "d"] {
            cache.get_or_compute(key, outcome);
            assert!(cache.len() <= 2, "bound must hold after every insert");
        }
        // The most recent insertion always survives its own insert.
        let (_, hit) = cache.get_or_compute("d", || panic!("d must be resident"));
        assert!(hit);
        // Misses on evicted keys recompute (and stay within the bound).
        let recomputed = cache.stats().misses;
        assert_eq!(
            recomputed, 4,
            "each distinct key computed exactly once so far"
        );
    }

    #[test]
    fn plan_keys_separate_scenarios() {
        let lut = toy::fig1_lut();
        let p = Portfolio::paper_default(100, &[1]);
        let base = plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint());
        assert_eq!(base.len(), 16);
        assert_eq!(
            base,
            plan_key(lut.fingerprint(), &Objective::Latency, p.fingerprint())
        );
        assert_ne!(
            base,
            plan_key(lut.fingerprint(), &Objective::Energy, p.fingerprint())
        );
        assert_ne!(
            base,
            plan_key(
                toy::small_chain_lut().fingerprint(),
                &Objective::Latency,
                p.fingerprint()
            )
        );
        assert_ne!(
            base,
            plan_key(
                lut.fingerprint(),
                &Objective::Latency,
                Portfolio::paper_default(101, &[1]).fingerprint()
            )
        );
    }
}
