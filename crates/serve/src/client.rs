//! Typed client for the plan-compilation service.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use qsdnn::engine::{CostLut, Objective};

use crate::protocol::{
    read_message, write_message, PlanRequest, PlanResponse, ProfileRequest, ProfileResponse,
    Request, Response, SearchRequest, StatsResponse, PROTOCOL_VERSION,
};
use crate::ServeError;

/// A connected client. One request is in flight at a time per client;
/// open several clients for concurrency.
pub struct PlanClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl PlanClient {
    /// Connects and verifies the protocol revision with a ping.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a protocol-version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = PlanClient {
            reader: BufReader::new(stream),
            writer,
        };
        match client.request(&Request::Ping {
            version: PROTOCOL_VERSION,
        })? {
            Response::Pong { .. } => Ok(client),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected handshake reply {other:?}"
            ))),
        }
    }

    /// Sets read/write timeouts on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed responses, or a server-side close.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_message(&mut self.writer, req)?;
        read_message(&mut self.reader)?
            .ok_or_else(|| ServeError::Protocol("server closed the connection".into()))
    }

    fn expect_plan(&mut self, req: &Request) -> Result<PlanResponse, ServeError> {
        match self.request(req)? {
            Response::Plan(plan) => Ok(plan),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Profiles a zoo network on the server.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn profile(&mut self, req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
        match self.request(&Request::Profile(req))? {
            Response::Profile(p) => Ok(p),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Runs the search portfolio on a client-supplied LUT.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn search(
        &mut self,
        lut: CostLut,
        objective: Objective,
        episodes: usize,
        seeds: Vec<u64>,
    ) -> Result<PlanResponse, ServeError> {
        self.expect_plan(&Request::Search(SearchRequest {
            lut,
            objective,
            episodes,
            seeds,
        }))
    }

    /// Requests an end-to-end plan (profile + portfolio search, cached).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn plan(&mut self, req: PlanRequest) -> Result<PlanResponse, ServeError> {
        self.expect_plan(&Request::Plan(req))
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn stats(&mut self) -> Result<StatsResponse, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}
