//! Typed client for the plan-compilation service.
//!
//! Two ways to talk to the server share one connection:
//!
//! * **Synchronous (v1)** — [`PlanClient::request`] and the typed wrappers
//!   ([`PlanClient::plan`], [`PlanClient::profile`], …) send a bare
//!   request and block for its reply, strictly one at a time.
//! * **Pipelined (v2)** — [`PlanClient::submit`] tags a request with a
//!   connection-scoped id and returns a [`Ticket`] immediately;
//!   [`PlanClient::wait`] / [`PlanClient::wait_any`] collect replies,
//!   which the server sends **out of order** as searches finish. Replies
//!   for tickets other than the awaited one are stashed and handed out
//!   when their ticket is waited on. [`PlanClient::plan_many`] pipelines a
//!   whole batch over the connection with a sliding submission window.
//!
//! All reads go through a persistent resumable line buffer, so a read
//! timeout mid-response (after [`PlanClient::set_timeout`]) never drops
//! received bytes or desyncs the framing — the next read resumes the same
//! line.
//!
//! [`PlanClient::connect`] negotiates the **v3 binary framing** (see the
//! protocol module docs) and transparently falls back to the JSON v2
//! handshake against a pre-v3 server — the typed API is identical either
//! way, and decoded responses are bit-identical by construction.

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use qsdnn::engine::{CostLut, Objective};

use crate::protocol::{
    negotiates_binary, parse_binary_response, parse_response_frame, read_binary_frame_resumable,
    read_line_resumable, write_binary_message, write_message, FrameBuffer, PlanRequest,
    PlanResponse, ProfileRequest, ProfileResponse, Request, Response, ResponseFrame, SearchRequest,
    StatsResponse, TaggedRequest, WireMode, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::ServeError;

/// Default sliding-window size for [`PlanClient::plan_many`]: how many
/// submitted-but-unanswered requests the client keeps on the wire. Equals
/// the server's default per-connection in-flight cap
/// ([`crate::DEFAULT_MAX_IN_FLIGHT`]) so a defaulted client never stalls
/// the server's reader — a stalled reader plus a client that writes
/// without reading is the classic pipelining deadlock.
pub const DEFAULT_CLIENT_WINDOW: usize = 32;

/// Handle to one in-flight pipelined request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The wire id this ticket correlates with.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// A connected client. Synchronous requests run one at a time; pipelined
/// requests ([`PlanClient::submit`]) multiplex over the same connection.
pub struct PlanClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Resumable framing buffer: a half-read line survives read timeouts
    /// here instead of being dropped.
    partial: String,
    /// Resumable binary-framing twin of `partial`, used once the
    /// connection negotiates v3.
    bin_frames: FrameBuffer,
    /// Wire framing in effect: JSON during the handshake (and for life
    /// against a pre-v3 server), binary after a v3 pong.
    mode: WireMode,
    next_id: u64,
    /// Tickets submitted but not yet returned to the caller.
    outstanding: HashSet<u64>,
    /// Replies received while waiting for a different ticket.
    stashed: HashMap<u64, Response>,
    window: usize,
}

impl PlanClient {
    /// Connects and verifies the protocol revision with a ping,
    /// negotiating the v3 binary framing. A pre-v3 server answers the
    /// ping with a version-mismatch error; the client then redoes the
    /// handshake at v2 on a fresh connection and stays on JSON framing —
    /// same typed API, bit-identical decoded responses.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or a protocol-version mismatch that
    /// even the v2 fallback cannot bridge.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        // Resolve once so the fallback handshake dials the same server.
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        match Self::connect_with_version(&addrs[..], PROTOCOL_VERSION) {
            Err(ServeError::Remote(message)) if message.contains("protocol mismatch") => {
                Self::connect_with_version(&addrs[..], 2)
            }
            other => other,
        }
    }

    /// [`PlanClient::connect`] pinned to one protocol revision, with no
    /// fallback: the connection speaks binary frames iff `version`
    /// negotiates them (v3+), JSON lines otherwise.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or when the server rejects `version`.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        version: u32,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = PlanClient {
            reader: BufReader::new(stream),
            writer,
            partial: String::new(),
            bin_frames: FrameBuffer::new(),
            mode: WireMode::Json,
            next_id: 0,
            outstanding: HashSet::new(),
            stashed: HashMap::new(),
            window: DEFAULT_CLIENT_WINDOW,
        };
        match client.request(&Request::Ping { version })? {
            Response::Pong { .. } => {
                if negotiates_binary(version) {
                    // That pong was the last JSON line in either
                    // direction; everything from here is binary frames.
                    client.mode = WireMode::Binary;
                }
                Ok(client)
            }
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected handshake reply {other:?}"
            ))),
        }
    }

    /// Whether this connection negotiated the v3 binary framing.
    pub fn is_binary(&self) -> bool {
        self.mode == WireMode::Binary
    }

    /// Sets read/write timeouts on the underlying socket. A timeout
    /// surfacing mid-response keeps the received bytes, so framing never
    /// desyncs. On the pipelined path the interrupted read is fully
    /// recoverable — call [`PlanClient::wait`] on the same ticket again.
    /// The synchronous wrappers ([`PlanClient::plan`] etc.) have no
    /// read-only retry: re-calling one *resends* the request, and the
    /// connection then carries one unconsumed reply — prefer
    /// [`PlanClient::submit`]/[`PlanClient::wait`] when using timeouts.
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.writer.set_read_timeout(timeout)?;
        self.writer.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Sets the sliding-window size used by [`PlanClient::plan_many`]
    /// (clamped to ≥ 1). Keep it at or below the server's per-connection
    /// in-flight cap; a larger window can stall the server's reader.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Reads the next response frame off the connection, whatever its
    /// framing.
    fn read_frame(&mut self) -> Result<ResponseFrame, ServeError> {
        match self.mode {
            WireMode::Json => match read_line_resumable(&mut self.reader, &mut self.partial)? {
                Some(line) => parse_response_frame(&line),
                None => Err(ServeError::Protocol("server closed the connection".into())),
            },
            WireMode::Binary => {
                match read_binary_frame_resumable(
                    &mut self.reader,
                    &mut self.bin_frames,
                    MAX_FRAME_BYTES,
                )? {
                    Some(frame) => parse_binary_response(&frame),
                    None => Err(ServeError::Protocol("server closed the connection".into())),
                }
            }
        }
    }

    /// Sends one bare request and reads its reply. Tagged replies to
    /// earlier [`PlanClient::submit`] calls that arrive first are stashed
    /// for their tickets, not lost.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed responses, or a server-side close.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        match self.mode {
            WireMode::Json => write_message(&mut self.writer, req)?,
            WireMode::Binary => write_binary_message(&mut self.writer, None, req)?,
        }
        loop {
            match self.read_frame()? {
                ResponseFrame::Untagged(resp) => return Ok(resp),
                ResponseFrame::Tagged(tagged) => {
                    self.stashed.insert(tagged.id, tagged.resp);
                }
            }
        }
    }

    /// Pipelines a request: writes it inside a tagged envelope and returns
    /// a ticket without waiting for the reply. The server answers tickets
    /// out of order as their searches finish; collect replies with
    /// [`PlanClient::wait`] or [`PlanClient::wait_any`]. Takes the request
    /// by value — a `search` request carries a whole LUT, which would
    /// otherwise be deep-cloned per submit.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors (the write side).
    pub fn submit(&mut self, req: Request) -> Result<Ticket, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.mode {
            WireMode::Json => write_message(&mut self.writer, &TaggedRequest { id, req })?,
            // The binary envelope carries the id in the frame header, so
            // the body is the bare request — no JSON-style wrapper.
            WireMode::Binary => write_binary_message(&mut self.writer, Some(id), &req)?,
        }
        self.outstanding.insert(id);
        Ok(Ticket(id))
    }

    /// Blocks for a specific ticket's reply. Replies for other tickets
    /// that arrive first are stashed.
    ///
    /// On an I/O error (including a read timeout), the ticket stays
    /// outstanding and any half-received line is preserved — call `wait`
    /// again to resume exactly where the read stopped.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, for a ticket that was never submitted (or
    /// already waited on), or when the server breaks framing.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Response, ServeError> {
        if let Some(resp) = self.stashed.remove(&ticket.0) {
            self.outstanding.remove(&ticket.0);
            return Ok(resp);
        }
        if !self.outstanding.contains(&ticket.0) {
            return Err(ServeError::Protocol(format!(
                "ticket {} is not in flight",
                ticket.0
            )));
        }
        loop {
            match self.read_frame()? {
                ResponseFrame::Tagged(tagged) if tagged.id == ticket.0 => {
                    self.outstanding.remove(&ticket.0);
                    return Ok(tagged.resp);
                }
                ResponseFrame::Tagged(tagged) => {
                    self.stashed.insert(tagged.id, tagged.resp);
                }
                ResponseFrame::Untagged(Response::Error { message }) => {
                    // Framing-level server error (no id survived on the
                    // server side); surface it to the waiter.
                    return Err(ServeError::Remote(message));
                }
                ResponseFrame::Untagged(other) => {
                    return Err(ServeError::Protocol(format!(
                        "untagged reply {other:?} while waiting for ticket {}",
                        ticket.0
                    )));
                }
            }
        }
    }

    /// Blocks for whichever in-flight ticket completes next — the way to
    /// observe the server's out-of-order completion order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, when nothing is in flight, or when the server
    /// breaks framing.
    pub fn wait_any(&mut self) -> Result<(Ticket, Response), ServeError> {
        if let Some(&id) = self.stashed.keys().next() {
            let resp = self.stashed.remove(&id).expect("key just seen");
            self.outstanding.remove(&id);
            return Ok((Ticket(id), resp));
        }
        if self.outstanding.is_empty() {
            return Err(ServeError::Protocol("no requests in flight".into()));
        }
        loop {
            match self.read_frame()? {
                ResponseFrame::Tagged(tagged) if self.outstanding.remove(&tagged.id) => {
                    return Ok((Ticket(tagged.id), tagged.resp));
                }
                ResponseFrame::Tagged(tagged) => {
                    // Unknown id: keep it — a caller may have leaked the
                    // ticket, and dropping bytes desyncs nothing.
                    self.stashed.insert(tagged.id, tagged.resp);
                }
                ResponseFrame::Untagged(Response::Error { message }) => {
                    return Err(ServeError::Remote(message));
                }
                ResponseFrame::Untagged(other) => {
                    return Err(ServeError::Protocol(format!(
                        "untagged reply {other:?} while waiting for any ticket"
                    )));
                }
            }
        }
    }

    /// [`PlanClient::submit`] for a plan request.
    ///
    /// # Errors
    ///
    /// See [`PlanClient::submit`].
    pub fn submit_plan(&mut self, req: PlanRequest) -> Result<Ticket, ServeError> {
        self.submit(Request::Plan(req))
    }

    /// [`PlanClient::wait`] narrowed to a plan reply.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn wait_plan(&mut self, ticket: Ticket) -> Result<PlanResponse, ServeError> {
        match self.wait(ticket)? {
            Response::Plan(plan) => Ok(plan),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Pipelines a batch of plan requests over this one connection and
    /// returns the responses in request order. At most
    /// [`PlanClient::set_window`] requests ride the wire unanswered at a
    /// time, so a defaulted client stays under the server's in-flight cap
    /// while still keeping the server's whole worker pool busy.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or the first server-side rejection. On a
    /// rejection, the batch's already-submitted tickets are drained before
    /// returning, so their late replies never leak into a later
    /// [`PlanClient::wait_any`] or pile up in the stash.
    pub fn plan_many(&mut self, reqs: &[PlanRequest]) -> Result<Vec<PlanResponse>, ServeError> {
        let mut tickets = Vec::with_capacity(reqs.len());
        let result = self.plan_many_windowed(reqs, &mut tickets);
        if result.is_err() {
            self.discard(&tickets);
        }
        result
    }

    fn plan_many_windowed(
        &mut self,
        reqs: &[PlanRequest],
        tickets: &mut Vec<Ticket>,
    ) -> Result<Vec<PlanResponse>, ServeError> {
        let head = self.window.min(reqs.len());
        for req in &reqs[..head] {
            tickets.push(self.submit_plan(req.clone())?);
        }
        let mut out = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            out.push(self.wait_plan(tickets[i])?);
            // One answered, one submitted: the window slides.
            if tickets.len() < reqs.len() {
                let next = tickets.len();
                tickets.push(self.submit_plan(reqs[next].clone())?);
            }
        }
        Ok(out)
    }

    /// Blocks until each ticket's reply has arrived and discards it.
    /// Stops at the first transport or framing failure — the connection
    /// is unusable at that point anyway.
    fn discard(&mut self, tickets: &[Ticket]) {
        for &ticket in tickets {
            let pending = self.outstanding.contains(&ticket.0);
            if !pending && !self.stashed.contains_key(&ticket.0) {
                continue; // already delivered to the caller
            }
            match self.wait(ticket) {
                Ok(_) | Err(ServeError::Remote(_)) => {}
                Err(_) => return,
            }
        }
    }

    fn expect_plan(&mut self, req: &Request) -> Result<PlanResponse, ServeError> {
        match self.request(req)? {
            Response::Plan(plan) => Ok(plan),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Profiles a zoo network on the server.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn profile(&mut self, req: ProfileRequest) -> Result<ProfileResponse, ServeError> {
        match self.request(&Request::Profile(req))? {
            Response::Profile(p) => Ok(p),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Runs the search portfolio on a client-supplied LUT (scenario
    /// transfer left to the server's policy; pass a [`SearchRequest`] via
    /// [`PlanClient::request`] to control it per request).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn search(
        &mut self,
        lut: CostLut,
        objective: Objective,
        episodes: usize,
        seeds: Vec<u64>,
    ) -> Result<PlanResponse, ServeError> {
        self.search_on(lut, objective, episodes, seeds, "")
    }

    /// [`PlanClient::search`] pinned to a registered platform (empty =
    /// the server's default platform).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn search_on(
        &mut self,
        lut: CostLut,
        objective: Objective,
        episodes: usize,
        seeds: Vec<u64>,
        platform: impl Into<String>,
    ) -> Result<PlanResponse, ServeError> {
        self.expect_plan(&Request::Search(SearchRequest {
            lut,
            objective,
            episodes,
            seeds,
            transfer: crate::protocol::TransferMode::Auto,
            trace: false,
            platform: platform.into(),
        }))
    }

    /// Requests an end-to-end plan (profile + portfolio search, cached).
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn plan(&mut self, req: PlanRequest) -> Result<PlanResponse, ServeError> {
        self.expect_plan(&Request::Plan(req))
    }

    /// Fetches service counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn stats(&mut self) -> Result<StatsResponse, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the full observability snapshot: every metric family with
    /// histogram quantiles — the wire twin of the Prometheus endpoint.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn metrics(&mut self) -> Result<crate::protocol::MetricsResponse, ServeError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Lists the server's platform registry: every target a request's
    /// `platform` field can select, with spec fingerprints.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn platforms(&mut self) -> Result<crate::protocol::PlatformsResponse, ServeError> {
        match self.request(&Request::Platforms)? {
            Response::Platforms(p) => Ok(p),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Dumps the server's flight recorder: the event journal across every
    /// thread ring plus the retained slow/panic exemplars.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn events(&mut self) -> Result<crate::protocol::EventsResponse, ServeError> {
        match self.request(&Request::Events)? {
            Response::Events(e) => Ok(e),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the live task table: what every worker and dispatcher
    /// thread is doing right now.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a server-side rejection.
    pub fn tasks(&mut self) -> Result<crate::protocol::TasksResponse, ServeError> {
        match self.request(&Request::Tasks)? {
            Response::Tasks(t) => Ok(t),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}
