//! Prometheus text-exposition endpoint: a tiny hand-rolled HTTP/1.1
//! listener over `std::net` (no HTTP crate), serving `GET /metrics`.
//!
//! One thread, blocking per request: a scrape is a point-in-time snapshot
//! render, microseconds of work, and scrapers arrive every few seconds —
//! concurrency would buy nothing. The listener polls `accept` with a
//! short sleep so it notices server shutdown promptly.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::server::ServiceState;
use crate::ServeError;

/// How long the accept loop sleeps when no scraper is waiting.
const ACCEPT_TICK: Duration = Duration::from_millis(25);
/// Read cap on a request head; scrape requests are a few hundred bytes.
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Per-`read` tick while collecting a request head: short, so a stalled
/// scraper can't hold the single-threaded listener long, but the head is
/// *resumed* across ticks up to [`HEAD_DEADLINE`] rather than abandoned
/// at the first stall.
const HEAD_READ_TICK: Duration = Duration::from_millis(100);
/// Overall bound on collecting one request head. A scraper that cannot
/// produce its blank line within this is answered 408 and dropped.
const HEAD_DEADLINE: Duration = Duration::from_secs(3);

/// A running exposition listener.
pub(crate) struct MetricsExposition {
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExposition {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts serving
    /// scrapes of `state` until the server shuts down.
    pub(crate) fn start(addr: &str, state: Arc<ServiceState>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("qsdnn-metrics-http".to_string())
            .spawn(move || accept_loop(&listener, &state))
            .map_err(ServeError::Io)?;
        qsdnn_obs::log::info(
            "metrics_listener_started",
            &[("addr", qsdnn_obs::log::FieldValue::from(local.to_string()))],
        );
        Ok(MetricsExposition {
            addr: local,
            handle: Some(handle),
        })
    }

    /// The bound address (resolved port for `:0` binds).
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the listener thread to notice shutdown and exit.
    pub(crate) fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) {
    loop {
        if state.is_shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // A broken scraper connection is its problem, not ours.
                let _ = handle_scrape(stream, state);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            // Transient accept failure (fd pressure): back off, stay up.
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Reads one HTTP request head and answers it. Any malformed traffic gets
/// a 400; only `GET /metrics` (and `GET /`) return the exposition body.
fn handle_scrape(mut stream: TcpStream, state: &Arc<ServiceState>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(HEAD_READ_TICK))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let started = Instant::now();
    let mut timed_out = false;
    // Read until the blank line ending the head; scrape requests have no
    // body worth waiting for. A read timeout is NOT the end of the head:
    // a scraper whose headers split across packets (or who dribbles
    // them byte by byte) resumes here until the overall deadline — the
    // historical bug was breaking on the first stall, which truncated
    // the request line and turned a legitimate scrape into a 404.
    while !head_complete(&head) && head.len() < MAX_HEAD_BYTES {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if started.elapsed() >= HEAD_DEADLINE || state.is_shutting_down() {
                    timed_out = true;
                    break;
                }
            }
            Err(e) => return Err(e),
        }
    }
    let request_line = std::str::from_utf8(&head)
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if timed_out && !head_complete(&head) {
        (
            "408 Request Timeout",
            "request head timed out\n".to_string(),
        )
    } else if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path == "/" {
        ("200 OK", state.metrics_text())
    } else {
        ("404 Not Found", "not found; scrape /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn head_complete(head: &[u8]) -> bool {
    head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n")
}
