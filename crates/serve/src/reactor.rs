//! The epoll connection layer: one readiness loop owns every socket.
//!
//! The threaded layer spends a thread per connection; this layer spends
//! one — a reactor thread running `epoll_wait` over the listener, a
//! wakeup pipe and every client socket (all nonblocking). Connections are
//! per-socket state machines:
//!
//! * **read** — readable bytes land in a [`FrameBuffer`], which splits
//!   them into JSON lines whatever the fragmentation; complete frames are
//!   parsed and handed to a bounded dispatcher pool.
//! * **dispatch** — dispatchers run the request (fanning portfolio members
//!   onto the shared search [`WorkerPool`]), serialize the reply and push
//!   it onto a completion queue, then write one byte into the wakeup pipe
//!   so the loop picks it up. Dispatchers never touch sockets.
//! * **write** — replies queue in a per-connection outbox; the loop writes
//!   as much as the socket accepts, resumes partial writes on `EPOLLOUT`,
//!   and never blocks on a slow reader.
//!
//! Backpressure falls out of interest management: a connection at its
//! tagged in-flight cap, mid-v1-request, or with an over-full outbox
//! simply stops being registered for `EPOLLIN`, so TCP flow control
//! pushes back on the client while every other connection proceeds.
//!
//! Protocol semantics are identical to the threaded layer: bare (v1)
//! requests are answered in order one at a time (the state machine pauses
//! frame parsing until the reply is queued), tagged (v2) requests pipeline
//! up to the per-connection cap and complete out of order.
//!
//! The epoll binding is direct `extern "C"` FFI over `std::os::fd` — this
//! build is offline, and the four syscalls involved don't justify a
//! vendored libc.

#![allow(unsafe_code)]

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qsdnn_obs::EventKind;

use crate::metrics::{RequestSpan, Stage, TASK_KIND_DISPATCH_JOB};
use crate::pool::{PoolRecorder, WorkerPool};
use crate::protocol::{
    binary_error_frame, negotiates_binary, parse_binary_request, parse_request_frame,
    write_message, BinaryFrame, BinaryFrameStatus, FrameBuffer, Request, RequestFrame, Response,
    TaggedResponse, WireMode, BINARY_FRAME_OVERHEAD,
};
use crate::server::{ServiceState, ACCEPT_BACKOFF_MAX, ACCEPT_BACKOFF_MIN, POOL_ID_DISPATCH};
use crate::ServeError;

/// Raw Linux epoll/pipe bindings. Constants match the kernel UAPI headers
/// for every Linux target this workspace builds on.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    /// `struct epoll_event`. The x86-64 kernel ABI packs it to 12 bytes;
    /// every other architecture uses natural alignment — same split libc
    /// makes.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Hard bound on one request line. A line that exceeds this without a
/// terminator is hostile (or a broken client); the connection gets one
/// untagged error reply and is closed — there is no way to resync framing
/// inside an unbounded line. The threaded layer reads lines unboundedly;
/// this bound exists exactly because the epoll layer is the
/// thousands-of-untrusted-clients layer.
pub(crate) const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

// The codec layer publishes the same bound for clients and the threaded
// layer; the two must never drift apart.
const _: () = assert!(MAX_FRAME_BYTES == crate::protocol::MAX_FRAME_BYTES);

/// Outbox high-water mark: a connection whose peer refuses to read its
/// replies stops being read once this many reply bytes queue, so its
/// memory footprint is bounded and nothing else stalls.
pub(crate) const MAX_OUTBOX_BYTES: usize = 8 * 1024 * 1024;

/// Bytes read from a socket per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Idle `epoll_wait` tick: bounds how stale the accept back-off and
/// shutdown checks can get even if a wakeup is lost.
const TICK: Duration = Duration::from_millis(100);

/// How long shutdown waits for in-flight requests to finish and queued
/// replies to flush before abandoning the remaining connections. Keeps a
/// never-reading client from wedging [`crate::PlanServer::shutdown`].
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// A reactor work phase (everything between two `epoll_wait`s) longer
/// than this journals a `reactor_stall` flight-recorder event: the loop
/// is the only thread moving bytes, so a stall here delays every
/// connection at once.
const STALL_THRESHOLD: Duration = Duration::from_millis(10);

/// An `epoll_wait` that overstays its requested timeout by more than this
/// journals an `epoll_wait_outlier` event — scheduler starvation the
/// latency histograms can't attribute.
const WAIT_OUTLIER_SLACK: Duration = Duration::from_millis(100);

/// `epoll_wait` data tokens for the two non-connection fds.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Thin safe wrapper over one epoll instance.
struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes no pointers; the flag constant is
        // the kernel's own. A negative return is checked before use.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(last_os_error());
        }
        Ok(Epoll {
            // SAFETY: fd was just returned by epoll_create1 (checked
            // >= 0) and has no other owner; OwnedFd takes sole custody.
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a live stack value for the duration of the
        // call; epoll_ctl only reads it. Both fds are open (self.fd is
        // owned, `fd` is the caller's live socket).
        let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout: Duration) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: the pointer and length describe the caller's live
        // mutable slice; the kernel writes at most `events.len()`
        // entries and reports how many via the return value.
        let n = unsafe {
            sys::epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len() as i32,
                ms,
            )
        };
        if n < 0 {
            let e = last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

/// Write end of the reactor's wakeup pipe. Cloneable and cheap: one byte
/// per wake, and a full pipe means a wakeup is already pending, so every
/// error is ignorable.
#[derive(Clone)]
pub(crate) struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    pub(crate) fn wake(&self) {
        let byte = [1u8];
        // EAGAIN: the pipe already holds a pending wakeup. EPIPE: the
        // reactor is gone and nothing needs waking. Both are fine.
        // SAFETY: the pointer/length pair describes the one-byte stack
        // buffer above, live for the whole call; the fd is kept open by
        // the Arc<OwnedFd> this method borrows.
        unsafe {
            sys::write(
                self.fd.as_raw_fd(),
                byte.as_ptr() as *const std::os::raw::c_void,
                1,
            );
        }
    }
}

/// One finished request on its way back from a dispatcher to the loop.
struct Completion {
    token: u64,
    /// `true` for a bare (v1) reply: delivery unblocks the connection's
    /// frame parser. `false` decrements the tagged in-flight count.
    untagged: bool,
    line: Vec<u8>,
    /// The request's span (parse/queue/handler/serialize recorded by the
    /// dispatcher); the loop adds the write stage and observes it once the
    /// reply is fully on the wire.
    span: Option<RequestSpan>,
}

/// Dispatcher → reactor handoff: a locked queue plus the wakeup pipe.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn push(&self, completion: Completion) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(
            &mut *self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// One reply line queued for a connection's socket, with the span it
/// closes (observed when its last byte is handed to the kernel).
struct OutLine {
    line: Vec<u8>,
    span: Option<RequestSpan>,
    /// When the line entered the outbox: the write stage measures
    /// queue-to-last-byte.
    queued: Instant,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    /// Serialized reply lines awaiting the socket; `front_written` bytes
    /// of the front line are already on the wire (partial-write resume).
    outbox: VecDeque<OutLine>,
    front_written: usize,
    outbox_bytes: usize,
    /// Tagged (v2) requests dispatched but not yet completed.
    in_flight: usize,
    /// A bare (v1) request is being handled; parsing is paused so its
    /// reply stays in order, exactly like the threaded layer's inline
    /// handling.
    v1_busy: bool,
    /// EOF (or half-close) observed on the read side.
    read_closed: bool,
    /// Fatal framing violation: flush the outbox, then close.
    closing: bool,
    /// Interest mask currently installed in the epoll set.
    registered: u32,
    /// Wire framing currently active: every connection starts as JSON
    /// lines; a bare v3 ping flips it to binary at pong delivery.
    mode: WireMode,
    /// A bare v3 ping was dispatched; its pong completion flips `mode`.
    /// `v1_busy` already pauses parsing meanwhile, so no bytes the
    /// client sends after its ping are misparsed under the old framing.
    upgrade_pending: bool,
}

impl Conn {
    fn new(stream: TcpStream, registered: u32) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::new(),
            outbox: VecDeque::new(),
            front_written: 0,
            outbox_bytes: 0,
            in_flight: 0,
            v1_busy: false,
            read_closed: false,
            closing: false,
            registered,
            mode: WireMode::Json,
            upgrade_pending: false,
        }
    }

    /// Read/parse cutoff for this connection's framing. A binary frame's
    /// body is bounded at [`MAX_FRAME_BYTES`] like a JSON line, but the
    /// frame additionally carries its fixed-size header — without the
    /// slack, an exactly-at-the-bound body could never finish buffering
    /// and the connection would wedge unreadable.
    fn frame_bound(&self) -> usize {
        match self.mode {
            WireMode::Json => MAX_FRAME_BYTES,
            WireMode::Binary => MAX_FRAME_BYTES + BINARY_FRAME_OVERHEAD,
        }
    }

    fn queue_line(&mut self, line: Vec<u8>, span: Option<RequestSpan>) {
        self.outbox_bytes += line.len();
        self.outbox.push_back(OutLine {
            line,
            span,
            queued: Instant::now(),
        });
    }

    /// No request in any stage — safe to close once the read side is done
    /// (or the server is draining).
    fn idle(&self) -> bool {
        self.in_flight == 0 && !self.v1_busy && self.outbox.is_empty()
    }
}

/// Starts the epoll connection layer on `listener`. Returns the reactor's
/// join handle, a waker for shutdown, and the dispatcher pool (the caller
/// holds one `Arc` so it can drain the pool after joining the reactor).
pub(crate) fn start(
    listener: TcpListener,
    state: Arc<ServiceState>,
) -> Result<(JoinHandle<()>, Waker, Arc<WorkerPool>), ServeError> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let mut pipe_fds = [0i32; 2];
    // SAFETY: pipe2 writes exactly two fds into the two-element array
    // whose pointer it is given; the flags are kernel constants.
    let rc = unsafe { sys::pipe2(pipe_fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
    if rc < 0 {
        return Err(ServeError::Io(last_os_error()));
    }
    // SAFETY: pipe2 succeeded (rc checked), so both fds are open and
    // owned by nobody else; each OwnedFd takes sole custody of one end.
    let wake_rx = unsafe { OwnedFd::from_raw_fd(pipe_fds[0]) };
    let waker = Waker {
        // SAFETY: as above — the write end from the same successful
        // pipe2 call, moved into exactly one OwnedFd.
        fd: Arc::new(unsafe { OwnedFd::from_raw_fd(pipe_fds[1]) }),
    };
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKER)?;
    let dispatcher_count = state.config.dispatcher_count(state.pool.threads());
    let dispatchers = Arc::new(WorkerPool::named_observed(
        "qsdnn-dispatch",
        dispatcher_count,
        state
            .config
            .instrument
            .then(|| state.metrics.dispatch_pool.clone()),
        state.metrics.recorder().enabled().then(|| PoolRecorder {
            recorder: Arc::clone(state.metrics.recorder()),
            task_kind: TASK_KIND_DISPATCH_JOB,
            pool_id: POOL_ID_DISPATCH,
            saturation_threshold: (dispatcher_count * 2) as i64,
        }),
    ));
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        waker: waker.clone(),
    });
    let mut reactor = Reactor {
        epoll,
        listener,
        listener_armed: true,
        accept_backoff: ACCEPT_BACKOFF_MIN,
        accept_resume: None,
        wake_rx,
        conns: HashMap::new(),
        next_token: TOKEN_FIRST_CONN,
        state,
        dispatchers: Arc::clone(&dispatchers),
        completions,
        drain_deadline: None,
    };
    let handle = std::thread::Builder::new()
        .name("qsdnn-reactor".into())
        .spawn(move || reactor.run())?;
    Ok((handle, waker, dispatchers))
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    /// Whether the listener is currently registered for `EPOLLIN`
    /// (disarmed during accept back-off and shutdown).
    listener_armed: bool,
    accept_backoff: Duration,
    /// When a backed-off listener re-arms.
    accept_resume: Option<Instant>,
    wake_rx: OwnedFd,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    state: Arc<ServiceState>,
    dispatchers: Arc<WorkerPool>,
    completions: Arc<Completions>,
    /// Set when shutdown begins: how long to keep flushing before
    /// abandoning whatever is left.
    drain_deadline: Option<Instant>,
}

impl Reactor {
    fn run(&mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 256];
        let instrumented = self.state.metrics.enabled();
        let recorder = Arc::clone(self.state.metrics.recorder());
        loop {
            let timeout = self.wait_timeout();
            let wait_start = Instant::now();
            let n = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let work_start = Instant::now();
            let waited = work_start.duration_since(wait_start);
            if instrumented {
                // Event-loop health: how long the loop sat blocked, and how
                // much readiness one wakeup delivered.
                self.state
                    .metrics
                    .reactor_wait_stall_us
                    .set(waited.as_micros() as i64);
                self.state.metrics.reactor_ready_events.set(n as i64);
            }
            if recorder.enabled() && waited > timeout + WAIT_OUTLIER_SLACK {
                recorder.emit(EventKind::EpollWaitOutlier, 0, waited.as_micros() as u64, 0);
            }
            let mut accept_ready = false;
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) event before use.
                let token = ev.data;
                let bits = ev.events;
                match token {
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_WAKER => self.drain_wake_pipe(),
                    token => self.on_conn_event(token, bits),
                }
            }
            // Completions are drained every turn, not only on waker
            // readiness: a wake can coalesce with one already pending.
            for completion in self.completions.drain() {
                self.deliver(completion);
            }
            let worked = work_start.elapsed();
            if instrumented {
                self.state.metrics.reactor_loop_us.record_duration(worked);
            }
            if recorder.enabled() && worked > STALL_THRESHOLD {
                recorder.emit(EventKind::ReactorStall, 0, worked.as_micros() as u64, 0);
            }
            // SeqCst: shutdown must be totally ordered against the
            // acceptor and worker threads' own checks so no thread keeps
            // admitting work after another observed the flag.
            if self.state.shutting_down.load(Ordering::SeqCst) {
                if self.begin_or_check_drain() {
                    return;
                }
                continue;
            }
            if accept_ready {
                self.do_accept();
            }
            if let Some(resume) = self.accept_resume {
                if Instant::now() >= resume {
                    self.accept_resume = None;
                    self.arm_listener(true);
                    // Connections queued during the back-off are still
                    // pending; try them now rather than next readiness.
                    self.do_accept();
                }
            }
        }
    }

    fn wait_timeout(&self) -> Duration {
        let mut timeout = TICK;
        if let Some(resume) = self.accept_resume {
            timeout = timeout.min(resume.saturating_duration_since(Instant::now()));
        }
        timeout.max(Duration::from_millis(1))
    }

    /// First call: stop accepting and reading, close idle connections,
    /// start the drain clock. Later calls: report whether the drain is
    /// done (everything idle-and-closed, or deadline passed).
    fn begin_or_check_drain(&mut self) -> bool {
        if self.drain_deadline.is_none() {
            self.drain_deadline = Some(Instant::now() + SHUTDOWN_DRAIN);
            self.arm_listener(false);
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.update_interest(token);
                self.maybe_close(token);
            }
        }
        let deadline = *self
            .drain_deadline
            .get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN);
        self.conns.is_empty() || Instant::now() >= deadline
    }

    fn arm_listener(&mut self, armed: bool) {
        if self.listener_armed == armed {
            return;
        }
        let events = if armed { sys::EPOLLIN } else { 0 };
        if self
            .epoll
            .modify(self.listener.as_raw_fd(), events, TOKEN_LISTENER)
            .is_ok()
        {
            self.listener_armed = armed;
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: the pointer/length pair describes the local stack
            // buffer, live across the call; the kernel writes at most
            // `buf.len()` bytes. The fd is owned by self and nonblocking.
            let n = unsafe {
                sys::read(
                    self.wake_rx.as_raw_fd(),
                    buf.as_mut_ptr() as *mut std::os::raw::c_void,
                    buf.len(),
                )
            };
            if n < buf.len() as isize {
                return; // drained (or EAGAIN / error — nothing more to read)
            }
        }
    }

    fn do_accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                        continue;
                    }
                    self.state.metrics.connections.inc();
                    self.conns.insert(token, Conn::new(stream, interest));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // One queued connection died before we accepted it; the
                // queue behind it is healthy — retry immediately.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(_) => {
                    // Resource exhaustion (EMFILE, ENFILE, ENOMEM…): with a
                    // level-triggered listener, retrying instantly would
                    // spin the whole loop at 100% CPU. Disarm the
                    // listener and re-arm after an exponential back-off;
                    // pending connections stay queued in the kernel.
                    self.state.accept_errors.fetch_add(1, Ordering::Relaxed);
                    self.arm_listener(false);
                    self.accept_resume = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    return;
                }
            }
        }
    }

    fn on_conn_event(&mut self, token: u64, bits: u32) {
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(token);
            return;
        }
        if bits & sys::EPOLLOUT != 0 && !self.flush(token) {
            return;
        }
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.read_ready(token);
            return;
        }
        // EPOLLOUT-only wakeup: draining the outbox below its high-water
        // mark is one of the conditions that unpauses parsing, and the
        // unparsed frames already sit in the FrameBuffer — no further
        // EPOLLIN will announce them, so parse here or never.
        self.process_frames(token);
        self.update_interest(token);
        self.maybe_close(token);
    }

    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if let Some(bytes) = chunk.get(..n) {
                        conn.frames.push(bytes);
                    }
                    if n < chunk.len() {
                        break;
                    }
                    // Bound the bytes taken per readiness round so one
                    // firehose connection cannot starve the loop; level
                    // triggering re-reports the rest next turn.
                    if conn.frames.buffered() >= conn.frame_bound() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.process_frames(token);
        self.update_interest(token);
        self.maybe_close(token);
    }

    /// Parses as many buffered frames as the connection's state machine
    /// allows and dispatches them. Called after reads and after every
    /// completion delivery (a completion can unpause parsing with bytes
    /// already buffered and no new readiness coming).
    fn process_frames(&mut self, token: u64) {
        // Once shutdown draining starts, no new requests are accepted —
        // buffered-but-unparsed bytes are dropped, exactly like the
        // threaded reader returning on the shutdown flag.
        if self.drain_deadline.is_some() {
            return;
        }
        loop {
            let cap = self.state.config.in_flight_cap();
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing
                || conn.v1_busy
                || conn.in_flight >= cap
                || conn.outbox_bytes > MAX_OUTBOX_BYTES
            {
                return;
            }
            if conn.mode == WireMode::Binary {
                match conn.frames.next_binary_frame(MAX_FRAME_BYTES) {
                    BinaryFrameStatus::Frame(frame) => {
                        self.handle_binary_frame(token, frame);
                        continue;
                    }
                    BinaryFrameStatus::Corrupt(message) => {
                        // Header violation (bad magic/kind, or a declared
                        // length beyond the bound — rejected from the
                        // 6-byte header alone): one error frame, then
                        // close. Without a trustworthy length prefix the
                        // stream cannot resync.
                        conn.queue_line(binary_error_frame(None, &message), None);
                        conn.closing = true;
                        self.flush(token);
                        return;
                    }
                    BinaryFrameStatus::NeedMore => {
                        if conn.read_closed && conn.frames.buffered() > 0 {
                            // EOF mid-frame: explicit lengths make a torn
                            // tail corruption, not a final request —
                            // unlike the JSON layer's unterminated line.
                            conn.queue_line(
                                binary_error_frame(None, "connection closed mid-frame"),
                                None,
                            );
                            conn.closing = true;
                            self.flush(token);
                        }
                        return;
                    }
                }
            }
            let line = match conn.frames.next_frame() {
                Some(line) => line,
                // `>=`, matching the read cutoff exactly: reading stops at
                // the bound, so a line that *reaches* it can never grow a
                // terminator — treating only `>` as hostile would strand
                // an exactly-at-the-bound connection unreadable forever.
                None if conn.frames.buffered() >= MAX_FRAME_BYTES => {
                    // A single line at the frame bound: hostile. One
                    // untagged error, then close — framing cannot be
                    // resynced inside an unbounded line.
                    let resp = Response::Error {
                        message: format!(
                            "protocol error: request line exceeds the \
                             {MAX_FRAME_BYTES}-byte frame bound"
                        ),
                    };
                    conn.queue_line(serialize_line(&resp), None);
                    conn.closing = true;
                    self.flush(token);
                    return;
                }
                None if conn.read_closed => {
                    // EOF with a trailing unterminated line: answer it,
                    // matching the threaded layer's `read_line_resumable`.
                    match conn.frames.take_partial() {
                        Some(tail) => tail,
                        None => return,
                    }
                }
                None => return,
            };
            self.handle_frame(token, line);
        }
    }

    fn handle_frame(&mut self, token: u64, line: Vec<u8>) {
        // The span opens at frame receipt as kind `error`; a parsed
        // request re-labels it in `dispatch_spanned`.
        let mut span = self.state.metrics.span("error");
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let parsed = span.time(Stage::Parse, || {
            String::from_utf8(line)
                .map_err(|_| "request line is not valid UTF-8".to_string())
                .and_then(|text| {
                    parse_request_frame(&text).map_err(|e| match e {
                        ServeError::Protocol(message) => message,
                        other => other.to_string(),
                    })
                })
        });
        match parsed {
            Err(message) => {
                // Malformed line (or not UTF-8): report (untagged — no id
                // survived the wreckage) and keep the connection, exactly
                // like the threaded layer.
                let resp = Response::Error { message };
                conn.queue_line(serialize_line(&resp), Some(span));
            }
            Ok(RequestFrame::Untagged(req)) => {
                // v1 contract: at most one bare request runs at a time and
                // its reply stays in order — parsing pauses until the
                // completion comes back.
                conn.v1_busy = true;
                // A *bare* in-range v3 ping negotiates the binary framing
                // (the handler always answers it with a pong). The flip
                // happens when that pong is delivered, so it goes out as
                // this connection's last JSON line.
                if matches!(&req, Request::Ping { version } if negotiates_binary(*version)) {
                    conn.upgrade_pending = true;
                }
                let state = Arc::clone(&self.state);
                let completions = Arc::clone(&self.completions);
                let enqueued = Instant::now();
                self.dispatchers.execute(move || {
                    span.record(Stage::Queue, enqueued.elapsed());
                    let resp = state.dispatch_spanned(req, &mut span);
                    let line = span.time(Stage::Serialize, || serialize_line(&resp));
                    completions.push(Completion {
                        token,
                        untagged: true,
                        line,
                        span: Some(span),
                    });
                });
            }
            Ok(RequestFrame::Tagged(tagged)) => {
                conn.in_flight += 1;
                let depth = conn.in_flight;
                self.state.note_in_flight(depth);
                self.state.pipelined.fetch_add(1, Ordering::Relaxed);
                let state = Arc::clone(&self.state);
                let completions = Arc::clone(&self.completions);
                let enqueued = Instant::now();
                self.dispatchers.execute(move || {
                    span.record(Stage::Queue, enqueued.elapsed());
                    let resp = state.dispatch_spanned(tagged.req, &mut span);
                    let line = span.time(Stage::Serialize, || {
                        serialize_line(&TaggedResponse {
                            id: tagged.id,
                            resp,
                        })
                    });
                    completions.push(Completion {
                        token,
                        untagged: false,
                        line,
                        span: Some(span),
                    });
                });
            }
        }
    }

    /// [`Reactor::handle_frame`] for a binary-mode connection. Same
    /// v1/v2 dispatch contract; the dispatcher serializes through
    /// [`ServiceState::render_binary_frame`], which rides the cached
    /// wire body on eligible plan-cache hits. A body that fails to
    /// decode answers under its header id (when tagged) and the
    /// connection lives — the length prefix already resynced the stream.
    fn handle_binary_frame(&mut self, token: u64, frame: BinaryFrame) {
        let mut span = self.state.metrics.span("error");
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let parsed = span.time(Stage::Parse, || parse_binary_request(&frame));
        match parsed {
            Err(e) => {
                let message = match e {
                    ServeError::Protocol(message) => message,
                    other => other.to_string(),
                };
                conn.queue_line(binary_error_frame(frame.id, &message), Some(span));
            }
            Ok(RequestFrame::Untagged(req)) => {
                conn.v1_busy = true;
                let state = Arc::clone(&self.state);
                let completions = Arc::clone(&self.completions);
                let enqueued = Instant::now();
                self.dispatchers.execute(move || {
                    span.record(Stage::Queue, enqueued.elapsed());
                    let resp = state.dispatch_spanned(req, &mut span);
                    let line =
                        span.time(Stage::Serialize, || state.render_binary_frame(None, &resp));
                    completions.push(Completion {
                        token,
                        untagged: true,
                        line,
                        span: Some(span),
                    });
                });
            }
            Ok(RequestFrame::Tagged(tagged)) => {
                conn.in_flight += 1;
                let depth = conn.in_flight;
                self.state.note_in_flight(depth);
                self.state.pipelined.fetch_add(1, Ordering::Relaxed);
                let state = Arc::clone(&self.state);
                let completions = Arc::clone(&self.completions);
                let enqueued = Instant::now();
                self.dispatchers.execute(move || {
                    span.record(Stage::Queue, enqueued.elapsed());
                    let resp = state.dispatch_spanned(tagged.req, &mut span);
                    let line = span.time(Stage::Serialize, || {
                        state.render_binary_frame(Some(tagged.id), &resp)
                    });
                    completions.push(Completion {
                        token,
                        untagged: false,
                        line,
                        span: Some(span),
                    });
                });
            }
        }
    }

    fn deliver(&mut self, completion: Completion) {
        let Some(conn) = self.conns.get_mut(&completion.token) else {
            // The connection died while its request ran: the reply is
            // undeliverable, but the work still happened — observe the
            // span without a write stage.
            if let Some(span) = &completion.span {
                self.state.metrics.observe(span);
            }
            return;
        };
        if completion.untagged {
            conn.v1_busy = false;
            if conn.upgrade_pending {
                // The queued line is the negotiation pong — the last
                // JSON this connection sees. Parsing was paused the
                // whole time (`v1_busy`), so every byte still buffered
                // parses under the new framing, never the old.
                conn.upgrade_pending = false;
                conn.mode = WireMode::Binary;
            }
        } else {
            conn.in_flight = conn.in_flight.saturating_sub(1);
        }
        conn.queue_line(completion.line, completion.span);
        self.state
            .metrics
            .outbox_high_water_bytes
            .set_max(conn.outbox_bytes as i64);
        let token = completion.token;
        if !self.flush(token) {
            return;
        }
        self.process_frames(token);
        self.update_interest(token);
        self.maybe_close(token);
    }

    /// Writes as much of the outbox as the socket accepts. Returns `false`
    /// when the connection was closed by a write failure.
    fn flush(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        while let Some(front) = conn.outbox.front() {
            let pending = front.line.get(conn.front_written..).unwrap_or(&[]);
            match conn.stream.write(pending) {
                Ok(n) => {
                    conn.front_written += n;
                    conn.outbox_bytes = conn.outbox_bytes.saturating_sub(n);
                    if conn.front_written >= front.line.len() {
                        conn.front_written = 0;
                        // The reply is fully handed to the kernel: close
                        // out its span with the write stage.
                        if let Some(done) = conn.outbox.pop_front() {
                            if let Some(mut span) = done.span {
                                span.record(Stage::Write, done.queued.elapsed());
                                self.state.metrics.observe(&span);
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // The peer is gone; in-flight replies for this token
                    // will be discarded at delivery.
                    self.close(token);
                    return false;
                }
            }
        }
        true
    }

    /// Reconciles the epoll interest mask with the connection's state:
    /// `EPOLLIN` while the state machine is willing to parse, `EPOLLOUT`
    /// while the outbox holds unflushed bytes.
    fn update_interest(&mut self, token: u64) {
        let cap = self.state.config.in_flight_cap();
        let draining = self.drain_deadline.is_some();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = !conn.read_closed
            && !conn.closing
            && !draining
            && !conn.v1_busy
            && conn.in_flight < cap
            && conn.outbox_bytes <= MAX_OUTBOX_BYTES
            && conn.frames.buffered() < conn.frame_bound();
        // EPOLLRDHUP rides with EPOLLIN, never alone: once the read side
        // is done (or paused), a half-closed socket would otherwise
        // re-report RDHUP on every single epoll_wait — a busy loop that
        // burns the core until the connection drains.
        let mut want = 0;
        if readable {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !conn.outbox.is_empty() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.registered
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_ok()
        {
            conn.registered = want;
        }
    }

    /// Closes a connection whose useful life is over: the read side is
    /// done (or the connection is condemned / the server draining) and no
    /// request or reply remains in any stage.
    fn maybe_close(&mut self, token: u64) {
        let draining = self.drain_deadline.is_some();
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if (conn.read_closed || conn.closing || draining) && conn.idle() {
            self.close(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.state.metrics.connections.dec();
            // Replies stranded in the outbox never reach the wire, but
            // their requests did run — observe their spans sans write.
            for entry in conn.outbox {
                if let Some(span) = entry.span {
                    self.state.metrics.observe(&span);
                }
            }
            // Dropping the stream closes the fd.
        }
    }
}

/// Serializes one reply as a JSON line. Serialization of our own response
/// types cannot fail in practice; if it ever does, the client still gets
/// a well-formed error line rather than silence or a torn frame.
fn serialize_line(resp: &impl serde::Serialize) -> Vec<u8> {
    let mut line = Vec::new();
    if write_message(&mut line, resp).is_err() {
        line.clear();
        line.extend_from_slice(
            b"{\"Error\":{\"message\":\"internal error: reply serialization failed\"}}\n",
        );
    }
    line
}
