//! Demo: drive 36 concurrent `plan` requests over three zoo networks
//! through a real `qsdnn-serve` TCP server and verify that every plan is
//! bit-identical to the single-threaded portfolio reference — then run
//! the same scenarios as a protocol-v2 pipelined batch over a single
//! connection and show it matches.
//!
//! Run with: `cargo run --release -p qsdnn-serve --example serve_demo`

use std::time::Instant;

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn::Portfolio;
use qsdnn_serve::protocol::{PlanRequest, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const NETWORKS: [&str; 3] = ["lenet5", "squeezenet_v11", "mobilenet_v1"];
const CLIENTS_PER_NETWORK: usize = 12;
const EPISODES: usize = 400;
const SEEDS: [u64; 3] = [0x5EED, 7, 99];

fn main() {
    let config = ServerConfig::default();
    let repeats = config.profile_repeats;
    let server = PlanServer::start(config).expect("bind ephemeral port");
    let addr = server.local_addr();
    println!("qsdnn-serve listening on {addr}");
    println!(
        "submitting {} concurrent plan requests ({} networks x {} clients)...\n",
        NETWORKS.len() * CLIENTS_PER_NETWORK,
        NETWORKS.len(),
        CLIENTS_PER_NETWORK
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    for network in NETWORKS {
        for client_id in 0..CLIENTS_PER_NETWORK {
            handles.push(std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                let plan = client
                    .plan(PlanRequest {
                        network: network.to_string(),
                        batch: 1,
                        mode: Mode::Gpgpu,
                        objective: Objective::Latency,
                        episodes: EPISODES,
                        seeds: SEEDS.to_vec(),
                        // The demo asserts bit-identity with the cold
                        // sequential reference, so transfer stays off.
                        transfer: TransferMode::Off,
                        trace: false,
                        platform: String::new(),
                    })
                    .expect("plan");
                (network, client_id, plan)
            }));
        }
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = wall.elapsed();

    for network in NETWORKS {
        let group: Vec<_> = responses.iter().filter(|(n, _, _)| *n == network).collect();
        let (_, _, sample) = group[0];
        println!(
            "{network:<16} {:>9.3} ms  ({:.2}x vs vanilla, winner {}, key {})",
            sample.best.best_cost_ms,
            sample.speedup(),
            sample.winner,
            sample.plan_key
        );

        // Cross-check against the single-threaded reference.
        let net = zoo::by_name(network, 1).expect("known");
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), repeats)
            .profile(&net, Mode::Gpgpu)
            .with_objective(Objective::Latency);
        let reference = Portfolio::paper_default(EPISODES, &SEEDS)
            .run_sequential(&lut)
            .expect("applicable");
        for (_, id, plan) in &group {
            assert_eq!(
                plan.best.best_assignment, reference.best.best_assignment,
                "{network} client {id}: plan differs from the sequential reference"
            );
            assert_eq!(
                plan.best.best_cost_ms.to_bits(),
                reference.best.best_cost_ms.to_bits()
            );
        }
        println!(
            "{:<16} all {} responses bit-identical to the sequential portfolio",
            "",
            group.len()
        );
    }

    let mut client = PlanClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    println!(
        "\nserved {} plans in {:.2} s | cache: {} misses (fresh searches), {} hits, \
         {} coalesced -> {:.0}% hit rate | {} workers",
        stats.plans,
        elapsed.as_secs_f64(),
        stats.plan_cache.misses,
        stats.plan_cache.hits,
        stats.plan_cache.coalesced,
        stats.plan_cache.hit_rate() * 100.0,
        stats.workers
    );
    assert!(
        stats.plan_cache.hit_rate() > 0.0,
        "cache must report a nonzero hit rate"
    );

    // The same scenarios again, this time pipelined over ONE connection
    // (tagged protocol-v2 requests). Everything is cached now, so this
    // also shows a single client draining the cache at wire speed.
    let reqs: Vec<PlanRequest> = NETWORKS
        .iter()
        .map(|network| PlanRequest {
            network: (*network).to_string(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: EPISODES,
            seeds: SEEDS.to_vec(),
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        })
        .collect();
    let wall = Instant::now();
    let pipelined = client.plan_many(&reqs).expect("pipelined batch");
    println!(
        "\npipelined {} plans over one connection in {:.1} ms (all cache hits: {})",
        pipelined.len(),
        wall.elapsed().as_secs_f64() * 1e3,
        pipelined.iter().all(|p| p.cache_hit)
    );
    for (req, plan) in reqs.iter().zip(&pipelined) {
        assert_eq!(req.network, plan.network, "replies in request order");
    }
    let stats = client.stats().expect("stats");
    println!(
        "server counters: {} pipelined requests, in-flight peak {}, cap {}",
        stats.pipelined, stats.in_flight_peak, stats.max_in_flight
    );
    server.shutdown();
}
