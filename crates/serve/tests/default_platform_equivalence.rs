//! Satellite pin for the platform-registry refactor: a server asked for
//! nothing platform-specific must answer **byte-identically** to the
//! pre-refactor service.
//!
//! `tests/data/default_platform_reference.txt` was captured by running this
//! exact request script against the commit *before* the registry landed
//! (normalizing only wall-clock fields). The replay below must reproduce
//! every line — plan keys, fingerprints, costs, assignments, cache-hit
//! flags — bit for bit. Any drift means the default path is no longer the
//! historical TX-2 service.
//!
//! A second test pins the aliasing rule: naming the default platform
//! explicitly (`platform: "sim-tx2"`) is indistinguishable from leaving the
//! field absent — same plan key, same fingerprint, and the explicit request
//! hits the cache entry the implicit one created.

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn_serve::protocol::{
    PlanRequest, PlanResponse, ProfileRequest, Request, Response, SearchRequest, TransferMode,
};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

fn plan_request(network: &str, episodes: usize) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes,
        seeds: vec![0x5EED, 7],
        transfer: TransferMode::Off,
        trace: false,
        platform: String::new(),
    }
}

fn normalize(mut plan: PlanResponse) -> PlanResponse {
    plan.best.wall_time_ms = 0.0;
    for member in &mut plan.members {
        member.wall_time_ms = 0.0;
    }
    plan
}

/// Replays the pre-refactor capture script and diffs line-by-line.
#[test]
fn default_platform_requests_are_byte_identical_to_the_pre_registry_service() {
    let server = PlanServer::start(ServerConfig {
        threads: 2,
        max_in_flight: 4,
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let mut out: Vec<String> = Vec::new();

    // 1. Profile: full response Debug (covers the LUT bytes and key).
    let prof = client
        .profile(ProfileRequest {
            network: "tiny_cnn".into(),
            batch: 1,
            mode: Mode::Gpgpu,
            repeats: 3,
            platform: String::new(),
        })
        .expect("profile");
    out.push(format!("{prof:?}"));

    // 2. Cold plan + cached repeat (latency objective).
    let cold = client.plan(plan_request("tiny_cnn", 140)).expect("cold");
    assert!(!cold.cache_hit);
    out.push(format!("{:?}", normalize(cold)));
    let hit = client.plan(plan_request("tiny_cnn", 140)).expect("hit");
    assert!(hit.cache_hit);
    out.push(format!("{:?}", normalize(hit)));

    // 3. Weighted objective plan (exercises the energy path).
    let mut weighted = plan_request("toy_branchy", 120);
    weighted.objective = Objective::Weighted { lambda: 0.5 };
    out.push(format!(
        "{:?}",
        normalize(client.plan(weighted).expect("weighted"))
    ));

    // 4. Search over a client-supplied LUT.
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3)
        .profile(&zoo::by_name("toy_branchy", 1).expect("zoo"), Mode::Gpgpu);
    match client
        .request(&Request::Search(SearchRequest {
            lut,
            objective: Objective::Latency,
            episodes: 120,
            seeds: vec![11],
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        }))
        .expect("search")
    {
        Response::Plan(plan) => out.push(format!("{:?}", normalize(plan))),
        other => panic!("search answered {other:?}"),
    }

    // 5. Transfer warm start: batch 1 cold, batch 2 warm (auto).
    let mut b1 = plan_request("lenet5", 200);
    b1.transfer = TransferMode::Auto;
    b1.mode = Mode::Cpu;
    out.push(format!("{:?}", normalize(client.plan(b1).expect("b1"))));
    let mut b2 = plan_request("lenet5", 200);
    b2.transfer = TransferMode::Auto;
    b2.mode = Mode::Cpu;
    b2.batch = 2;
    out.push(format!("{:?}", normalize(client.plan(b2).expect("b2"))));

    server.shutdown();

    let reference = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join("data")
            .join("default_platform_reference.txt"),
    )
    .expect("committed pre-refactor reference");
    let expected: Vec<&str> = reference.lines().collect();
    assert_eq!(
        expected.len(),
        out.len(),
        "reference has {} lines, replay produced {}",
        expected.len(),
        out.len()
    );
    for (i, (want, got)) in expected.iter().zip(out.iter()).enumerate() {
        assert_eq!(
            *want,
            got,
            "line {} of the replay diverged from the pre-refactor capture",
            i + 1
        );
    }
}

/// `platform: "sim-tx2"` must alias the absent field exactly: the explicit
/// request lands on the cache entry the implicit one created (same plan
/// key, same winning plan) and the profile fingerprints match.
#[test]
fn naming_the_default_platform_is_the_same_as_omitting_it() {
    let server = PlanServer::start(ServerConfig {
        threads: 2,
        max_in_flight: 4,
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let implicit = client.plan(plan_request("tiny_cnn", 140)).expect("plan");
    assert!(!implicit.cache_hit);
    let mut named = plan_request("tiny_cnn", 140);
    named.platform = "sim-tx2".to_string();
    let explicit = client.plan(named).expect("plan");
    assert!(
        explicit.cache_hit,
        "explicit sim-tx2 must hit the entry the implicit request cached"
    );
    assert_eq!(implicit.plan_key, explicit.plan_key);
    assert_eq!(implicit.best.best_assignment, explicit.best.best_assignment);

    let implicit_prof = client
        .profile(ProfileRequest {
            network: "tiny_cnn".into(),
            batch: 1,
            mode: Mode::Gpgpu,
            repeats: 3,
            platform: String::new(),
        })
        .expect("profile");
    let explicit_prof = client
        .profile(ProfileRequest {
            network: "tiny_cnn".into(),
            batch: 1,
            mode: Mode::Gpgpu,
            repeats: 3,
            platform: "sim-tx2".into(),
        })
        .expect("profile");
    assert_eq!(implicit_prof.fingerprint, explicit_prof.fingerprint);
    server.shutdown();
}
