//! End-to-end acceptance of the scenario-transfer subsystem (ISSUE 4):
//! serve a plan for `(net, batch=1)`, then request `(net, batch=4)` — the
//! second search must warm-start from the first (stats show a transfer
//! hit), run fewer episodes than a cold search, and return a plan no
//! worse than the cold plan for the same seed. With `transfer: "off"` the
//! server must behave exactly like a server without the subsystem.

use qsdnn::engine::Mode;
use qsdnn::engine::Objective;
use qsdnn_serve::protocol::{PlanRequest, PlanResponse, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const NETWORK: &str = "tiny_cnn";
const EPISODES: usize = 200;
const SEEDS: [u64; 1] = [7];

fn request(batch: usize, transfer: TransferMode) -> PlanRequest {
    PlanRequest {
        network: NETWORK.to_string(),
        batch,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes: EPISODES,
        seeds: SEEDS.to_vec(),
        transfer,
        trace: false,
        platform: String::new(),
    }
}

fn qsdnn_episodes(plan: &PlanResponse) -> usize {
    plan.members
        .iter()
        .filter(|m| m.label.starts_with("qs-dnn"))
        .map(|m| m.episodes)
        .max()
        .expect("portfolio has qs-dnn members")
}

#[test]
fn batch_sweep_warm_starts_from_the_previous_batch() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    // Cold start: nothing cached, nothing indexed.
    let b1 = client
        .plan(request(1, TransferMode::Auto))
        .expect("batch 1");
    assert!(!b1.cache_hit);
    assert!(b1.warm_start.is_none(), "first scenario has no donor");
    let cold_episodes = qsdnn_episodes(&b1);
    assert_eq!(cold_episodes, EPISODES);

    // batch=4 misses the plan cache but finds batch=1 in the index.
    let b4 = client
        .plan(request(4, TransferMode::Auto))
        .expect("batch 4");
    assert!(!b4.cache_hit, "a fresh scenario still searches");
    let warm = b4.warm_start.as_ref().expect("warm-start provenance");
    assert_eq!(warm.donor_key, b1.plan_key, "batch 1 is the donor");
    assert_eq!(warm.donor_network, NETWORK);
    assert!(
        warm.donor_distance > 0.0,
        "batch neighbors are near, not identical"
    );
    assert!(warm.donor_distance < 1.0, "same network stays sub-unit");
    assert!(warm.transferred_states > 0);

    // The warm search ran a shortened schedule (asserted via the member
    // SearchReport episodes surfaced in the summaries).
    let warm_episodes = qsdnn_episodes(&b4);
    assert!(
        warm_episodes < cold_episodes,
        "warm {warm_episodes} episodes must undercut cold {cold_episodes}"
    );
    assert_eq!(warm.episodes, warm_episodes, "provenance reports the truth");

    // A repeat of the warm scenario is a cache hit onto the warm plan,
    // provenance included (no exact cold plan exists yet, so the index
    // routes the repeat to its warm key).
    let b4_again = client.plan(request(4, TransferMode::Auto)).expect("again");
    assert!(b4_again.cache_hit);
    assert_eq!(b4_again.plan_key, b4.plan_key);
    assert_eq!(b4_again.best.best_assignment, b4.best.best_assignment);
    assert_eq!(
        b4_again.warm_start.as_ref().map(|w| &w.donor_key),
        Some(&b1.plan_key)
    );

    // Same scenario, same seed, transfer off: the cold plan for batch=4.
    // The warm plan must not be worse (the portfolio keeps the exact
    // baselines, so on this chain network both reach the optimum).
    let b4_cold = client.plan(request(4, TransferMode::Off)).expect("cold 4");
    assert!(b4_cold.warm_start.is_none());
    assert_ne!(
        b4.plan_key, b4_cold.plan_key,
        "warm plans live under donor-specific keys, never the cold key"
    );
    assert!(
        b4.best.best_cost_ms <= b4_cold.best.best_cost_ms + 1e-9,
        "warm plan {} must be no worse than cold {}",
        b4.best.best_cost_ms,
        b4_cold.best.best_cost_ms
    );

    // Stats surface the transfer counters.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.transfer, TransferMode::Auto);
    assert!(stats.transfer_hits >= 1, "stats: {stats:?}");
    assert!(stats.warm_starts >= 1);
    assert!(stats.mean_donor_distance > 0.0);
    assert!(stats.index_entries >= 2, "both scenarios are indexed");

    // Once the exact cold plan exists (the off-request above computed
    // it), an auto repeat prefers the exact content address — transferred
    // plans never shadow exact artifacts.
    let b4_exact = client.plan(request(4, TransferMode::Auto)).expect("exact");
    assert!(b4_exact.cache_hit);
    assert_eq!(b4_exact.plan_key, b4_cold.plan_key);
    assert!(b4_exact.warm_start.is_none());

    server.shutdown();
}

/// `transfer: "off"` must be byte-identical to a server that never had
/// the subsystem: same plan keys, same plans, no index writes — even on a
/// server whose cache is full of warm artifacts.
#[test]
fn transfer_off_is_bit_identical_to_a_transfer_free_server() {
    let dir = std::env::temp_dir().join(format!("qsdnn_transfer_off_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Server A: transfer on with a spill dir, warmed up with a batch
    // sweep — it leaves plans *and* a populated scenarios/ index behind.
    let server_a = PlanServer::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client_a = PlanClient::connect(server_a.local_addr()).expect("connect");
    client_a.plan(request(1, TransferMode::Auto)).expect("b1");
    client_a
        .plan(request(4, TransferMode::Auto))
        .expect("b4 warm");
    let off_a = client_a
        .plan(request(4, TransferMode::Off))
        .expect("b4 off");
    server_a.shutdown();

    // Server B: transfer disabled wholesale, on the *same* spill dir —
    // the previous life's scenarios/ directory must be ignored entirely.
    let server_b = PlanServer::start(ServerConfig {
        transfer: TransferMode::Off,
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client_b = PlanClient::connect(server_b.local_addr()).expect("connect");
    // Even an `auto` request cannot opt in past a disabled server.
    let off_b = client_b.plan(request(4, TransferMode::Auto)).expect("b4");

    assert_eq!(
        off_a.plan_key, off_b.plan_key,
        "identical content addresses"
    );
    assert_eq!(off_a.best.best_assignment, off_b.best.best_assignment);
    assert_eq!(
        off_a.best.best_cost_ms.to_bits(),
        off_b.best.best_cost_ms.to_bits(),
        "bit-identical costs"
    );
    assert_eq!(off_a.warm_start, None);
    assert_eq!(off_b.warm_start, None);
    for (a, b) in off_a.members.iter().zip(&off_b.members) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.best_cost_ms, b.best_cost_ms);
        assert_eq!(a.episodes, b.episodes);
    }
    let stats_b = client_b.stats().expect("stats");
    assert_eq!(stats_b.transfer, TransferMode::Off);
    assert_eq!(stats_b.transfer_hits, 0);
    assert_eq!(stats_b.warm_starts, 0);
    assert_eq!(
        stats_b.index_entries, 0,
        "a disabled server indexes nothing — not even a previous \
         transfer-enabled life's scenarios directory"
    );

    server_b.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The index reloads from the spill directory on startup, so a restarted
/// server keeps warm-starting from its previous life's scenarios.
#[test]
fn index_survives_a_server_restart_via_the_spill_tier() {
    let dir = std::env::temp_dir().join(format!("qsdnn_transfer_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let first = PlanServer::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = PlanClient::connect(first.local_addr()).expect("connect");
    let b1 = client.plan(request(1, TransferMode::Auto)).expect("b1");
    first.shutdown();

    let second = PlanServer::start(ServerConfig {
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("rebind");
    let mut client = PlanClient::connect(second.local_addr()).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert!(stats.index_entries >= 1, "index reloaded from disk");

    // A new batch on the fresh process warm-starts from the spilled donor.
    let b2 = client.plan(request(2, TransferMode::Auto)).expect("b2");
    let warm = b2.warm_start.expect("warm-started across the restart");
    assert_eq!(warm.donor_key, b1.plan_key);
    second.shutdown();

    std::fs::remove_dir_all(&dir).ok();
}
