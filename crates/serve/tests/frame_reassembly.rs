//! Property test of the epoll layer's frame reassembly: a valid mixed
//! v1/v2 request stream, fragmented at *arbitrary* byte boundaries —
//! including inside UTF-8 multibyte sequences and straddling the `\n`
//! terminator — always reassembles into exactly the original request
//! sequence. This pins the [`FrameBuffer`] the reactor feeds every
//! socket's bytes through; a fragmentation-sensitive bug here silently
//! corrupts requests under real-world packet boundaries.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{
    encode_binary_frame, encode_body, parse_binary_request, parse_request_frame, write_message,
    BinaryFrameStatus, FrameBuffer, PlanRequest, ProfileRequest, Request, RequestFrame,
    TaggedRequest, TransferMode, MAX_FRAME_BYTES,
};

/// Network names deliberately rich in multibyte UTF-8 (the vendored
/// serializer emits non-ASCII raw, so these bytes really ride the wire):
/// 2-, 3- and 4-byte sequences all appear.
const NETWORKS: [&str; 4] = ["lenet5", "möbilenet", "ネット", "net🔥v2"];

fn random_request(rng: &mut SmallRng) -> Request {
    let network = NETWORKS[rng.gen_range(0..NETWORKS.len())].to_string();
    match rng.gen_range(0..4) {
        0 => Request::Ping {
            version: rng.gen_range(1..3),
        },
        1 => Request::Stats,
        2 => Request::Profile(ProfileRequest {
            network,
            batch: rng.gen_range(1..5),
            mode: if rng.gen_bool(0.5) {
                Mode::Cpu
            } else {
                Mode::Gpgpu
            },
            repeats: rng.gen_range(0..10),
            platform: String::new(),
        }),
        _ => Request::Plan(PlanRequest {
            network,
            batch: rng.gen_range(1..5),
            mode: Mode::Gpgpu,
            objective: Objective::Weighted {
                lambda: rng.gen_range(0.0..1.0),
            },
            episodes: rng.gen_range(0..500),
            seeds: (0..rng.gen_range(0..3)).map(|i| i as u64).collect(),
            transfer: if rng.gen_bool(0.5) {
                TransferMode::Auto
            } else {
                TransferMode::Off
            },
            trace: false,
            platform: String::new(),
        }),
    }
}

/// A random mixed stream: bare and tagged frames, with occasional blank
/// keepalive lines and CRLF terminators sprinkled in (both of which the
/// splitter must skip / strip, not surface as frames).
fn random_stream(rng: &mut SmallRng) -> (Vec<RequestFrame>, Vec<u8>) {
    let mut frames = Vec::new();
    let mut bytes = Vec::new();
    for id in 0..rng.gen_range(1..8u64) {
        if rng.gen_bool(0.3) {
            bytes.extend_from_slice(if rng.gen_bool(0.5) { b"\n" } else { b"  \r\n" });
        }
        let req = random_request(rng);
        let frame = if rng.gen_bool(0.5) {
            RequestFrame::Tagged(TaggedRequest { id, req })
        } else {
            RequestFrame::Untagged(req)
        };
        let mut line = Vec::new();
        match &frame {
            RequestFrame::Tagged(t) => write_message(&mut line, t).expect("serialize"),
            RequestFrame::Untagged(r) => write_message(&mut line, r).expect("serialize"),
        }
        if rng.gen_bool(0.2) {
            // CRLF clients exist; the splitter strips the \r.
            line.truncate(line.len() - 1);
            line.extend_from_slice(b"\r\n");
        }
        bytes.extend_from_slice(&line);
        frames.push(frame);
    }
    (frames, bytes)
}

/// A random v3 binary stream: bare and tagged frames over the
/// length-prefixed framing (no keepalives — the binary framing has no
/// blank-line concept; every byte belongs to a frame).
fn random_binary_stream(rng: &mut SmallRng) -> (Vec<RequestFrame>, Vec<u8>) {
    let mut frames = Vec::new();
    let mut bytes = Vec::new();
    for id in 0..rng.gen_range(1..8u64) {
        let req = random_request(rng);
        let frame = if rng.gen_bool(0.5) {
            RequestFrame::Tagged(TaggedRequest { id, req })
        } else {
            RequestFrame::Untagged(req)
        };
        let (wire_id, req) = match &frame {
            RequestFrame::Tagged(t) => (Some(t.id), &t.req),
            RequestFrame::Untagged(r) => (None, r),
        };
        let body = encode_body(req).expect("encode body");
        bytes.extend_from_slice(&encode_binary_frame(wire_id, &body).expect("encode frame"));
        frames.push(frame);
    }
    (frames, bytes)
}

/// Random packet boundaries over `bytes`: duplicates and empty chunks
/// included, so zero-length reads and byte-at-a-time delivery both occur.
fn random_chunks<'a>(rng: &mut SmallRng, bytes: &'a [u8]) -> Vec<&'a [u8]> {
    let mut cuts: Vec<usize> = (0..rng.gen_range(0..24))
        .map(|_| rng.gen_range(0..bytes.len() + 1))
        .collect();
    cuts.push(0);
    cuts.push(bytes.len());
    cuts.sort_unstable();
    cuts.windows(2)
        .map(|pair| &bytes[pair[0]..pair[1]])
        .collect()
}

/// Drains every complete binary frame currently buffered.
fn drain_binary(fb: &mut FrameBuffer, got: &mut Vec<RequestFrame>) {
    loop {
        match fb.next_binary_frame(MAX_FRAME_BYTES) {
            BinaryFrameStatus::Frame(frame) => {
                got.push(parse_binary_request(&frame).expect("frames parse"));
            }
            BinaryFrameStatus::NeedMore => return,
            BinaryFrameStatus::Corrupt(message) => panic!("valid stream read as: {message}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the fragmentation — byte-at-a-time, mid-multibyte-char,
    /// across the terminator — the reassembled request sequence is the
    /// original one.
    #[test]
    fn fragmented_streams_reassemble_identically(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (expected, bytes) = random_stream(&mut rng);

        // Random cut points (duplicates and 0/len included): every
        // position is a legal packet boundary, multibyte chars included.
        let mut cuts: Vec<usize> = (0..rng.gen_range(0..24))
            .map(|_| rng.gen_range(0..bytes.len() + 1))
            .collect();
        cuts.push(0);
        cuts.push(bytes.len());
        cuts.sort_unstable();

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for pair in cuts.windows(2) {
            fb.push(&bytes[pair[0]..pair[1]]);
            while let Some(frame) = fb.next_frame() {
                let text = String::from_utf8(frame).expect("frames are valid UTF-8");
                got.push(parse_request_frame(&text).expect("frames parse"));
            }
        }
        prop_assert_eq!(&got, &expected, "seed {} mangled the stream", seed);
        prop_assert_eq!(fb.buffered(), 0, "no bytes may linger after a complete stream");
    }

    /// A stream whose last frame lost its terminator (half-close client):
    /// everything terminated reassembles normally and the EOF hand-over
    /// recovers the final request, matching the threaded layer's
    /// `read_line_resumable` EOF contract.
    #[test]
    fn unterminated_tail_is_recovered_at_eof(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (expected, mut bytes) = random_stream(&mut rng);
        assert_eq!(bytes.pop(), Some(b'\n'));

        // Byte-at-a-time: the most fragmented delivery possible.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &bytes {
            fb.push(std::slice::from_ref(b));
            while let Some(frame) = fb.next_frame() {
                let text = String::from_utf8(frame).expect("valid UTF-8");
                got.push(parse_request_frame(&text).expect("frames parse"));
            }
        }
        prop_assert_eq!(got.len(), expected.len() - 1, "tail must still be pending");
        let tail = fb.take_partial().expect("unterminated tail");
        let text = String::from_utf8(tail).expect("valid UTF-8");
        got.push(parse_request_frame(&text).expect("tail parses"));
        prop_assert_eq!(&got, &expected);
    }

    /// The v3 length-prefixed framing reassembles from arbitrary byte
    /// boundaries — mid-magic, mid-length-prefix, mid-id, mid-body —
    /// exactly like the JSON splitter does from mid-line cuts.
    #[test]
    fn fragmented_binary_streams_reassemble_identically(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xB3B3_0000);
        let (expected, bytes) = random_binary_stream(&mut rng);

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for chunk in random_chunks(&mut rng, &bytes) {
            fb.push(chunk);
            drain_binary(&mut fb, &mut got);
        }
        prop_assert_eq!(&got, &expected, "seed {} mangled the binary stream", seed);
        prop_assert_eq!(fb.buffered(), 0, "no bytes may linger after a complete stream");
    }

    /// Adjacent connections speaking different framings: one JSON, one
    /// binary, their packets arriving interleaved in arbitrary order.
    /// Each [`FrameBuffer`] is per-connection state — neither stream may
    /// perturb the other, however their deliveries are woven together.
    #[test]
    fn binary_and_json_connections_interleave_without_crosstalk(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0051_D3A1);
        let (json_expected, json_bytes) = random_stream(&mut rng);
        let (bin_expected, bin_bytes) = random_binary_stream(&mut rng);
        let json_chunks = random_chunks(&mut rng, &json_bytes);
        let bin_chunks = random_chunks(&mut rng, &bin_bytes);

        let mut json_fb = FrameBuffer::new();
        let mut bin_fb = FrameBuffer::new();
        let mut json_got = Vec::new();
        let mut bin_got = Vec::new();
        let (mut ji, mut bi) = (0, 0);
        while ji < json_chunks.len() || bi < bin_chunks.len() {
            let take_json =
                bi >= bin_chunks.len() || (ji < json_chunks.len() && rng.gen_bool(0.5));
            if take_json {
                json_fb.push(json_chunks[ji]);
                ji += 1;
                while let Some(frame) = json_fb.next_frame() {
                    let text = String::from_utf8(frame).expect("valid UTF-8");
                    json_got.push(parse_request_frame(&text).expect("frames parse"));
                }
            } else {
                bin_fb.push(bin_chunks[bi]);
                bi += 1;
                drain_binary(&mut bin_fb, &mut bin_got);
            }
        }
        prop_assert_eq!(&json_got, &json_expected, "JSON stream perturbed");
        prop_assert_eq!(&bin_got, &bin_expected, "binary stream perturbed");
        prop_assert_eq!(json_fb.buffered() + bin_fb.buffered(), 0);
    }
}
