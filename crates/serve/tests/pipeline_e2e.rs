//! End-to-end tests of protocol-v2 pipelining: one connection holding many
//! tagged plan requests in flight, answered out of order as searches
//! finish, with the per-connection in-flight cap providing backpressure —
//! while untagged v1 traffic on the same server keeps its in-order,
//! one-at-a-time contract.

use std::io::Write as _;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{
    read_line_resumable, read_message, write_message, PlanRequest, Request, Response,
    TaggedResponse, TransferMode, PROTOCOL_VERSION,
};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const NETWORKS: [&str; 3] = ["lenet5", "tiny_cnn", "toy_branchy"];

/// A batch of distinct plan requests (distinct episode budgets give every
/// request its own plan key, so nothing coalesces in the cache).
fn batch(n: usize, base_episodes: usize, step: usize) -> Vec<PlanRequest> {
    (0..n)
        .map(|i| PlanRequest {
            network: NETWORKS[i % NETWORKS.len()].to_string(),
            batch: 1,
            mode: Mode::Gpgpu,
            objective: Objective::Latency,
            episodes: base_episodes + i * step,
            seeds: vec![0x5EED],
            // This suite pins the cold-path pipelining contract (replies
            // bit-identical to v1 references); scenario transfer would let
            // earlier-finishing budgets seed later ones.
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        })
        .collect()
}

#[test]
fn thirty_two_tagged_requests_pipeline_out_of_order_under_a_small_cap() {
    let server = PlanServer::start(ServerConfig {
        max_in_flight: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let mut client = PlanClient::connect(addr).expect("connect");

    // Mixed costs: request 0 is far more expensive than the rest, so its
    // reply cannot come first if pipelining really overlaps requests.
    let mut reqs = batch(32, 40, 1);
    reqs[0].episodes = 2500;

    let mut tickets = Vec::new();
    for req in &reqs {
        tickets.push(client.submit_plan(req.clone()).expect("submit"));
    }
    // Collect replies in *completion* order.
    let mut completion = Vec::new();
    for _ in 0..reqs.len() {
        let (ticket, resp) = client.wait_any().expect("wait_any");
        let plan = match resp {
            Response::Plan(plan) => plan,
            other => panic!("ticket {} answered with {other:?}", ticket.id()),
        };
        completion.push((ticket, plan));
    }
    assert_eq!(completion.len(), 32);

    // Out of order: the expensive request was submitted first but must
    // not complete first — and the overall completion order must differ
    // from submission order.
    assert_ne!(
        completion[0].0, tickets[0],
        "the expensive head request cannot finish first"
    );
    let submitted: Vec<u64> = tickets.iter().map(|t| t.id()).collect();
    let completed: Vec<u64> = completion.iter().map(|(t, _)| t.id()).collect();
    assert_ne!(completed, submitted, "replies arrived strictly in order");

    // Every ticket answered exactly once.
    let mut seen = completed.clone();
    seen.sort_unstable();
    let mut expected = submitted.clone();
    expected.sort_unstable();
    assert_eq!(seen, expected);

    // Id ↔ response matching: each ticket's reply must be *the* plan for
    // its request. A fresh v1 client re-requests every scenario (all
    // cached now) and the plan keys must line up pairwise.
    let mut check = PlanClient::connect(addr).expect("connect for check");
    for (ticket, plan) in &completion {
        let idx = submitted
            .iter()
            .position(|id| id == &ticket.id())
            .expect("known ticket");
        assert_eq!(
            plan.network,
            reqs[idx].network,
            "ticket {} answered with another request's network",
            ticket.id()
        );
        let reference = check.plan(reqs[idx].clone()).expect("cached reference");
        assert!(reference.cache_hit, "pipelined plan must be cached");
        assert_eq!(
            plan.plan_key,
            reference.plan_key,
            "ticket {} carries the wrong plan",
            ticket.id()
        );
        assert_eq!(plan.best.best_assignment, reference.best.best_assignment);
    }

    // Backpressure: the reader stopped parsing at the cap, so the server
    // never had more than 4 of this connection's requests in flight even
    // though 32 were submitted back to back.
    let stats = check.stats().expect("stats");
    assert_eq!(stats.pipelined, 32, "all 32 rode the v2 envelope");
    assert_eq!(stats.max_in_flight, 4);
    assert!(
        stats.in_flight_peak <= 4,
        "in-flight cap violated: peak {}",
        stats.in_flight_peak
    );
    assert!(
        stats.in_flight_peak >= 2,
        "no overlap observed: peak {}",
        stats.in_flight_peak
    );
    server.shutdown();
}

#[test]
fn v1_untagged_requests_stay_in_order_on_a_pipelining_server() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    // Concurrent pipelined traffic on another connection, to show the v1
    // contract holds on a server that is actively answering out of order.
    let churn = std::thread::spawn(move || {
        let mut client = PlanClient::connect(addr).expect("connect");
        client.plan_many(&batch(8, 90, 3)).expect("pipelined batch")
    });

    // A raw v1 client: write several bare requests back to back without
    // reading, then read every reply. Replies must come back in request
    // order — bare requests are handled inline, one at a time.
    let stream = std::net::TcpStream::connect(addr).expect("connect raw");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(stream);
    let reqs = batch(6, 150, 7);
    for req in &reqs {
        write_message(&mut writer, &Request::Plan(req.clone())).expect("write");
    }
    for req in &reqs {
        let resp: Response = read_message(&mut reader)
            .expect("read")
            .expect("server closed");
        match resp {
            Response::Plan(plan) => assert_eq!(
                plan.network, req.network,
                "v1 replies must arrive in request order"
            ),
            other => panic!("unexpected v1 reply {other:?}"),
        }
    }
    let pipelined = churn.join().expect("churn thread");
    assert_eq!(pipelined.len(), 8);
    server.shutdown();
}

/// Acceptance criterion: one pipelined connection issuing 16 distinct plan
/// requests completes within 2× the wall-clock of 16 parallel connections
/// issuing the same requests. Each phase gets a fresh server so the second
/// phase cannot ride the first phase's cache.
#[test]
fn one_pipelined_connection_keeps_pace_with_sixteen_parallel_connections() {
    let reqs = batch(16, 120, 5);

    // Phase A: 16 connections, one request each, all in parallel.
    let parallel_server = PlanServer::start(ServerConfig::default()).expect("bind");
    let parallel_addr = parallel_server.local_addr();
    let started = Instant::now();
    let mut handles = Vec::new();
    for req in reqs.clone() {
        handles.push(std::thread::spawn(move || {
            let mut client = PlanClient::connect(parallel_addr).expect("connect");
            client.plan(req).expect("plan")
        }));
    }
    let parallel_plans: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let t_parallel = started.elapsed();
    parallel_server.shutdown();

    // Phase B: the same 16 requests pipelined over one connection.
    let pipelined_server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(pipelined_server.local_addr()).expect("connect");
    client.set_window(16);
    let started = Instant::now();
    let pipelined_plans = client.plan_many(&reqs).expect("pipelined batch");
    let t_pipelined = started.elapsed();
    pipelined_server.shutdown();

    // Same work, same deterministic reduction: the transports must agree
    // bit for bit, request by request.
    assert_eq!(pipelined_plans.len(), parallel_plans.len());
    for (p, q) in pipelined_plans.iter().zip(&parallel_plans) {
        assert_eq!(p.plan_key, q.plan_key);
        assert_eq!(p.best.best_assignment, q.best.best_assignment);
        assert_eq!(p.best.best_cost_ms.to_bits(), q.best.best_cost_ms.to_bits());
    }

    // The floor keeps sub-300 ms baselines (where scheduler noise
    // dominates) from flaking the ratio; real runs are well above it.
    let budget = (2 * t_parallel).max(Duration::from_millis(300));
    assert!(
        t_pipelined <= budget,
        "one pipelined connection took {t_pipelined:?}, parallel fan-out took {t_parallel:?} \
         (budget {budget:?})"
    );
}

#[test]
fn failed_plan_many_drains_its_batch() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let mut reqs = batch(3, 80, 1);
    reqs[1].network = "no_such_network".to_string();
    let err = client.plan_many(&reqs).expect_err("mid-batch rejection");
    assert!(err.to_string().contains("unknown network"), "{err}");
    // The batch's other tickets were drained with it: no stale replies
    // leak into later pipelined work.
    let err = client
        .wait_any()
        .expect_err("nothing must remain in flight");
    assert!(err.to_string().contains("no requests in flight"), "{err}");
    // And the connection is still fully usable, both pipelined and v1.
    let again = client.plan_many(&batch(2, 200, 3)).expect("clean batch");
    assert_eq!(again.len(), 2);
    let single = client.plan(batch(1, 260, 0)[0].clone()).expect("v1 plan");
    assert!(single.best.best_cost_ms.is_finite());
    server.shutdown();
}

/// Regression for the client framing bug: `PlanClient` used to read with
/// `read_message`, which drops a partially-received line when the read
/// times out — after `set_timeout`, a slow response lost its first bytes
/// and permanently desynced the connection. The client now frames reads
/// through a persistent resumable buffer, so a timed-out read resumes the
/// same line.
#[test]
fn client_framing_survives_a_mid_response_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr");
    let marker = "resumable-framing-marker";

    let fake_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        // Handshake.
        let ping: Request = read_message(&mut reader).expect("ping").expect("open");
        assert!(matches!(ping, Request::Ping { .. }));
        write_message(
            &mut stream,
            &Response::Pong {
                version: PROTOCOL_VERSION,
            },
        )
        .expect("pong");
        // One tagged request, answered in two halves with a pause that
        // outlives the client's read timeout.
        let mut partial = String::new();
        let line = read_line_resumable(&mut reader, &mut partial)
            .expect("tagged request")
            .expect("open");
        assert!(line.contains("\"id\":0"), "expected envelope, got {line}");
        let mut reply = Vec::new();
        write_message(
            &mut reply,
            &TaggedResponse {
                id: 0,
                resp: Response::Error {
                    message: marker.to_string(),
                },
            },
        )
        .expect("serialize");
        let mid = reply.len() / 2;
        stream.write_all(&reply[..mid]).expect("first half");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(&reply[mid..]).expect("second half");
        stream.flush().expect("flush");
        // Keep the socket open until the client is done reading.
        std::thread::sleep(Duration::from_millis(400));
    });

    // Pinned to the v2 handshake: this test exercises JSON-line
    // resumability against a fake JSON server (its binary twin follows).
    let mut client = PlanClient::connect_with_version(addr, 2).expect("handshake");
    assert!(!client.is_binary());
    let ticket = client.submit(Request::Stats).expect("submit");
    // Let the first half of the reply arrive, then read with a timeout
    // shorter than the server's mid-line pause.
    std::thread::sleep(Duration::from_millis(150));
    client
        .set_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    let err = client.wait(ticket).expect_err("must time out mid-line");
    match err {
        qsdnn_serve::ServeError::Io(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected I/O error {e:?}"
        ),
        other => panic!("expected a timeout, got {other}"),
    }
    // Retrying the same ticket resumes the half-read line instead of
    // parsing its severed tail as a fresh message.
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let resp = client.wait(ticket).expect("resumed read completes");
    assert_eq!(
        resp,
        Response::Error {
            message: marker.to_string()
        }
    );
    fake_server.join().expect("fake server");
}

/// The binary twin of the mid-response-timeout test: a v3 frame split in
/// two around a pause longer than the client's read timeout must resume
/// from the buffered half, never desync.
#[test]
fn client_binary_framing_survives_a_mid_frame_timeout() {
    use qsdnn_serve::protocol::{
        encode_binary_frame, encode_body, read_binary_frame_resumable, FrameBuffer, MAX_FRAME_BYTES,
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().expect("addr");
    let marker = "resumable-binary-framing-marker";

    let fake_server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
        // JSON handshake; accepting the v3 ping upgrades both directions.
        let ping: Request = read_message(&mut reader).expect("ping").expect("open");
        assert!(matches!(ping, Request::Ping { version: 3 }));
        write_message(
            &mut stream,
            &Response::Pong {
                version: PROTOCOL_VERSION,
            },
        )
        .expect("pong");
        // One tagged *binary* request, answered in two halves with a
        // pause that outlives the client's read timeout.
        let mut frames = FrameBuffer::new();
        let frame = read_binary_frame_resumable(&mut reader, &mut frames, MAX_FRAME_BYTES)
            .expect("tagged request")
            .expect("open");
        assert_eq!(frame.id, Some(0), "expected the first tagged frame");
        let body = encode_body(&Response::Error {
            message: marker.to_string(),
        })
        .expect("encode");
        let reply = encode_binary_frame(Some(0), &body).expect("frame");
        let mid = reply.len() / 2;
        stream.write_all(&reply[..mid]).expect("first half");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(400));
        stream.write_all(&reply[mid..]).expect("second half");
        stream.flush().expect("flush");
        // Keep the socket open until the client is done reading.
        std::thread::sleep(Duration::from_millis(400));
    });

    let mut client = PlanClient::connect(addr).expect("handshake");
    assert!(client.is_binary(), "v3 handshake negotiates binary");
    let ticket = client.submit(Request::Stats).expect("submit");
    std::thread::sleep(Duration::from_millis(150));
    client
        .set_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    let err = client.wait(ticket).expect_err("must time out mid-frame");
    match err {
        qsdnn_serve::ServeError::Io(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected I/O error {e:?}"
        ),
        other => panic!("expected a timeout, got {other}"),
    }
    // Retrying the same ticket resumes the half-read frame instead of
    // parsing its severed tail as a fresh frame header.
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let resp = client.wait(ticket).expect("resumed read completes");
    assert_eq!(
        resp,
        Response::Error {
            message: marker.to_string()
        }
    );
    fake_server.join().expect("fake server");
}
