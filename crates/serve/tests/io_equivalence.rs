//! Acceptance: the epoll connection layer is a transport swap, not a
//! semantics change. One request script runs against a threaded server
//! and an epoll server with identical configs; every response must match
//! bit for bit — modulo wall-clock and host-sizing fields
//! (`wall_time_ms`, `uptime_ms`, `workers`, `in_flight_peak`), which no
//! transport can reproduce deterministically; those are range-checked
//! and then canonicalized before comparison.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn_serve::protocol::{
    parse_binary_response, read_binary_frame_resumable, write_binary_message, write_message,
    FrameBuffer, PlanRequest, PlanResponse, Request, Response, ResponseFrame, SearchRequest,
    StatsResponse, TransferMode, MAX_FRAME_BYTES,
};
use qsdnn_serve::{IoModel, PlanClient, PlanServer, ServerConfig};

fn config(io: IoModel) -> ServerConfig {
    ServerConfig {
        io,
        threads: 2,
        max_in_flight: 4,
        ..ServerConfig::default()
    }
}

fn plan_request(network: &str, episodes: usize) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes,
        seeds: vec![0x5EED, 7],
        transfer: TransferMode::Off,
        trace: false,
        platform: String::new(),
    }
}

/// Zeroes the only nondeterministic fields a plan response carries.
fn normalize(mut plan: PlanResponse) -> PlanResponse {
    plan.best.wall_time_ms = 0.0;
    for member in &mut plan.members {
        member.wall_time_ms = 0.0;
    }
    plan
}

/// Property-checks the fields no transport can reproduce exactly, then
/// canonicalizes them so the REST of the struct — every counter, cache
/// shard, and transfer field — is compared in full. `uptime_ms` must be
/// nonzero on both layers (it was once hard-zeroed here because the
/// threaded layer reported 0; the serve stack now guarantees ≥ 1).
fn canonical_stats(mut stats: StatsResponse) -> StatsResponse {
    assert!(stats.uptime_ms > 0, "uptime must be monotonic and >= 1 ms");
    assert!(stats.workers > 0, "worker pool cannot be empty");
    assert!(
        (1..=stats.max_in_flight).contains(&stats.in_flight_peak),
        "in-flight peak {} outside [1, {}]",
        stats.in_flight_peak,
        stats.max_in_flight
    );
    stats.uptime_ms = 1;
    stats.workers = 1;
    stats.in_flight_peak = 1;
    // Whether two concurrent identical requests overlap on the
    // single-flight slot (one hit + one coalesced) or arrive a tick
    // apart (two hits) is scheduler timing, not transport semantics —
    // the pipelined batch profiles the same two networks from six
    // dispatchers. Their *sum* is the deterministic quantity; fold it
    // so every other counter still compares exactly.
    for cache in [&mut stats.plan_cache, &mut stats.profile_cache] {
        cache.hits += cache.coalesced;
        cache.coalesced = 0;
    }
    for shard in stats
        .plan_cache_shards
        .iter_mut()
        .chain(stats.profile_cache_shards.iter_mut())
    {
        shard.hits += shard.coalesced;
        shard.coalesced = 0;
    }
    stats
}

/// Runs the whole script against one server and returns every observation
/// in a deterministic order, normalized for comparison.
fn run_script(io: IoModel) -> Vec<String> {
    let server = PlanServer::start(config(io)).expect("start server");
    let addr = server.local_addr();
    let mut out = Vec::new();

    // 1. Raw framing: handshake, version rejection, a blank keepalive
    //    line, a malformed line, and a wrong-shape envelope.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let send_recv = |conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, bytes: &[u8]| {
        conn.write_all(bytes).expect("write");
        conn.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        line
    };
    let mut ping = Vec::new();
    write_message(&mut ping, &Request::Ping { version: 1 }).expect("serialize");
    out.push(send_recv(&mut raw, &mut reader, &ping));
    let mut bad_ping = Vec::new();
    write_message(&mut bad_ping, &Request::Ping { version: 99 }).expect("serialize");
    out.push(send_recv(&mut raw, &mut reader, &bad_ping));
    // A keepalive newline produces no reply; prepend it to a real request
    // to show both layers skip it identically.
    let mut with_keepalive = b"\n  \n".to_vec();
    with_keepalive.extend_from_slice(&ping);
    out.push(send_recv(&mut raw, &mut reader, &with_keepalive));
    out.push(send_recv(&mut raw, &mut reader, b"{totally not json\n"));
    out.push(send_recv(&mut raw, &mut reader, b"{\"id\":3}\n"));
    // Invalid UTF-8: both layers must answer the same error and keep the
    // connection usable (the next step reuses it).
    out.push(send_recv(&mut raw, &mut reader, b"\"Stats\xff\xfe\"\n"));
    out.push(send_recv(&mut raw, &mut reader, &ping));
    // The same, but with a valid prefix stalled across the threaded
    // layer's 100 ms read timeout before the invalid bytes arrive: the
    // whole line must be discarded — a stale prefix must not prepend
    // itself to the next (valid) request on either layer.
    raw.write_all(b"\"Sta").expect("valid prefix");
    raw.flush().expect("flush");
    std::thread::sleep(std::time::Duration::from_millis(250));
    out.push(send_recv(&mut raw, &mut reader, b"ts\xff\xfe\"\n"));
    out.push(send_recv(&mut raw, &mut reader, &ping));
    drop(raw);

    // 2. Typed clients: cold plan, cached repeat, a search over a
    //    client-supplied LUT, and a rejected request. The default client
    //    negotiates the v3 binary framing; a second client pinned to v2
    //    fetches the same cached plan so the decoded v3 response is
    //    pinned bit-identical to its JSON rendering — the binary codec
    //    must be a pure transport change, including the zero-copy
    //    cached-body path the v3 hit exercises.
    let mut client = PlanClient::connect(addr).expect("connect");
    assert!(client.is_binary(), "default client must negotiate v3");
    let cold = client.plan(plan_request("tiny_cnn", 140)).expect("cold");
    assert!(!cold.cache_hit, "first plan must be a fresh search");
    out.push(format!("{:?}", normalize(cold)));
    let warm = client.plan(plan_request("tiny_cnn", 140)).expect("hit");
    assert!(warm.cache_hit, "repeat must be cache-served");
    out.push(format!("{:?}", normalize(warm)));
    let mut v2 = PlanClient::connect_with_version(addr, 2).expect("v2 connect");
    assert!(!v2.is_binary(), "v2 client must stay on JSON framing");
    let warm_v2 = v2.plan(plan_request("tiny_cnn", 140)).expect("v2 hit");
    assert!(warm_v2.cache_hit, "v2 repeat must be cache-served");
    let warm_v3 = client.plan(plan_request("tiny_cnn", 140)).expect("v3 hit");
    assert!(warm_v3.cache_hit, "v3 repeat must be cache-served");
    let warm_v2 = format!("{:?}", normalize(warm_v2));
    let warm_v3 = format!("{:?}", normalize(warm_v3));
    assert_eq!(warm_v2, warm_v3, "v3 plan must decode bit-identical to v2");
    out.push(warm_v2);
    out.push(warm_v3);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3)
        .profile(&zoo::by_name("toy_branchy", 1).expect("zoo"), Mode::Gpgpu);
    match client
        .request(&Request::Search(SearchRequest {
            lut,
            objective: Objective::Latency,
            episodes: 120,
            seeds: vec![11],
            transfer: TransferMode::Off,
            trace: false,
            platform: String::new(),
        }))
        .expect("search")
    {
        Response::Plan(plan) => out.push(format!("{:?}", normalize(plan))),
        other => panic!("search answered with {other:?}"),
    }
    let err = client
        .plan(plan_request("no_such_network", 10))
        .expect_err("unknown network");
    out.push(err.to_string());

    // 3. Pipelined batch (tagged envelopes through the cap), collected in
    //    request order.
    let reqs: Vec<PlanRequest> = (0..6)
        .map(|i| plan_request(["tiny_cnn", "toy_branchy"][i % 2], 150 + i))
        .collect();
    for plan in client.plan_many(&reqs).expect("pipelined batch") {
        out.push(format!("{:?}", normalize(plan)));
    }

    // 4. Raw v3 negotiation: a bare JSON ping with version 3 is answered
    //    with a JSON pong — the connection's last JSON line — after which
    //    both directions are binary. A binary Stats request must decode
    //    to the same canonical struct on both layers.
    let mut raw3 = TcpStream::connect(addr).expect("raw v3 connect");
    let mut reader3 = BufReader::new(raw3.try_clone().expect("clone"));
    let mut ping3 = Vec::new();
    write_message(&mut ping3, &Request::Ping { version: 3 }).expect("serialize");
    out.push(send_recv(&mut raw3, &mut reader3, &ping3));
    write_binary_message(&mut raw3, None, &Request::Stats).expect("binary stats request");
    let mut frames = FrameBuffer::new();
    let frame = read_binary_frame_resumable(&mut reader3, &mut frames, MAX_FRAME_BYTES)
        .expect("binary stats reply")
        .expect("connection open");
    assert_eq!(frame.id, None, "bare request gets a bare reply");
    match parse_binary_response(&frame).expect("decode binary stats") {
        ResponseFrame::Untagged(Response::Stats(stats)) => {
            out.push(format!("{:?}", canonical_stats(stats)));
        }
        other => panic!("binary stats answered with {other:?}"),
    }
    drop(raw3);

    // 5. Final counters: both transports must have counted the same
    //    requests, plans, pipelined envelopes, hits and misses — the
    //    whole struct, not a field whitelist, so new counters are
    //    covered by default.
    let stats = client.stats().expect("stats");
    out.push(format!("{:?}", canonical_stats(stats)));

    server.shutdown();
    out
}

#[test]
fn threaded_and_epoll_servers_answer_the_same_script_bit_identically() {
    let threaded = run_script(IoModel::Threads);
    let epoll = run_script(IoModel::Epoll);
    assert_eq!(threaded.len(), epoll.len());
    for (i, (t, e)) in threaded.iter().zip(&epoll).enumerate() {
        assert_eq!(t, e, "script step {i} diverged between threads and epoll");
    }
}
