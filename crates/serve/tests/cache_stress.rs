//! Randomized stress test of the sharded plan cache: 16 threads mixing
//! hits, misses, panicking computes and eviction pressure over a small
//! keyspace, asserting the three contracts the serving layer depends on:
//!
//! (a) the capacity bound is never exceeded in any shard, in-flight
//!     computes included;
//! (b) single-flight holds — no two computes of one key ever overlap;
//! (c) every completed request lands in exactly one stats counter, so the
//!     counters sum to the number of completed requests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use qsdnn_serve::{CacheValue, EvictionPolicy, PlanCache};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

const THREADS: usize = 16;
const OPS_PER_THREAD: usize = 40;

/// A tiny artifact with a controllable recompute cost, so the stress run
/// exercises both eviction policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Payload {
    key_id: usize,
    cost: f64,
}

impl CacheValue for Payload {
    fn recompute_cost_ms(&self) -> f64 {
        self.cost
    }
}

/// Decrements the per-key concurrent-compute counter even when the
/// compute panics, so a panic op never wedges the single-flight check.
struct ComputeTicket<'a>(&'a AtomicUsize);

impl Drop for ComputeTicket<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_stress(seed: u64, keyspace: usize, max_entries: usize, shards: usize) {
    let policy = if seed.is_multiple_of(2) {
        EvictionPolicy::Lru
    } else {
        EvictionPolicy::CostWeighted
    };
    let cache = Arc::new(
        PlanCache::<Payload>::new()
            .with_shards(shards)
            .with_max_entries(max_entries)
            .with_eviction(policy),
    );
    let computing: Arc<Vec<AtomicUsize>> =
        Arc::new((0..keyspace).map(|_| AtomicUsize::new(0)).collect());
    let single_flight_violated = Arc::new(AtomicBool::new(false));
    let workers_done = Arc::new(AtomicBool::new(false));

    // (a) An observer samples every shard throughout the run; a bound
    // overrun at any instant fails the property.
    let observer = {
        let cache = Arc::clone(&cache);
        let done = Arc::clone(&workers_done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                for s in cache.shard_stats() {
                    assert!(
                        s.entries + s.in_flight <= s.capacity,
                        "shard over capacity: {} resident vs cap {}",
                        s.entries + s.in_flight,
                        s.capacity
                    );
                }
                std::thread::yield_now();
            }
        })
    };

    let mut workers = Vec::new();
    for tid in 0..THREADS {
        let cache = Arc::clone(&cache);
        let computing = Arc::clone(&computing);
        let violated = Arc::clone(&single_flight_violated);
        workers.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed ^ (0xA5A5_0000 + tid as u64));
            let mut completed = 0u64;
            for _ in 0..OPS_PER_THREAD {
                let key_id = rng.gen_range(0..keyspace);
                let key = format!("key-{key_id:04}");
                let should_panic = rng.gen_bool(0.15);
                let pause_us = rng.gen_range(0..120u64);
                let ok = catch_unwind(AssertUnwindSafe(|| {
                    cache.get_or_compute(&key, || {
                        // (b) At most one compute per key may be live.
                        if computing[key_id].fetch_add(1, Ordering::SeqCst) != 0 {
                            violated.store(true, Ordering::SeqCst);
                        }
                        let _ticket = ComputeTicket(&computing[key_id]);
                        std::thread::sleep(std::time::Duration::from_micros(pause_us));
                        assert!(!should_panic, "injected compute panic");
                        Payload {
                            key_id,
                            cost: (key_id % 7) as f64,
                        }
                    })
                }))
                .is_ok();
                if ok {
                    completed += 1;
                }
            }
            completed
        }));
    }
    let completed: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    workers_done.store(true, Ordering::SeqCst);
    observer.join().unwrap();

    assert!(
        !single_flight_violated.load(Ordering::SeqCst),
        "two computes of one key overlapped"
    );
    let stats = cache.stats();
    // (c) hit/miss/coalesced/spill_load partition the completed requests.
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced + stats.spill_loads,
        completed,
        "request accounting must partition completed requests: {stats:?}"
    );
    assert_eq!(stats.spill_loads, 0, "memory-only run never touches disk");
    assert_eq!(stats.in_flight, 0, "no compute survives the run");
    // Final occupancy respects the bound too.
    for s in cache.shard_stats() {
        assert!(s.entries + s.in_flight <= s.capacity);
    }
    assert!(cache.len() <= max_entries);
    let rate = stats.hit_rate();
    assert!((0.0..=1.0).contains(&rate), "hit rate {rate} out of range");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mixed hit/miss/panic/evict traffic across 16 threads holds the
    /// bound, single-flight and stats-accounting invariants for random
    /// cache geometries.
    #[test]
    fn randomized_mixed_ops_hold_cache_invariants(
        seed in 0u64..1_000_000,
        keyspace in 4usize..32,
        max_entries in 1usize..12,
        shards in 1usize..6,
    ) {
        run_stress(seed, keyspace, max_entries, shards);
    }
}
