//! Acceptance for the flight recorder: under real traffic on both I/O
//! layers, the journal names the request lifecycle (begin/stages/end),
//! the cache and transfer decisions behind it, and a slow request's
//! exemplar ties all of that to the *actual* plan key it produced; the
//! post-mortem dump writes the same story to disk.

use std::collections::HashSet;

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{PlanRequest, PostmortemDump, TransferMode, PROTOCOL_VERSION};
use qsdnn_serve::{IoModel, PlanClient, PlanServer, ServerConfig};

fn plan_request(network: &str, batch: usize, episodes: usize) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes,
        seeds: vec![0x5EED],
        transfer: TransferMode::Auto,
        trace: false,
        platform: String::new(),
    }
}

fn spill_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qsdnn_fr_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("spill dir");
    dir
}

/// Cold plan, then a warm-started batch sweep step, then a cache hit —
/// enough traffic to light up every event source — then assert the
/// journal, the exemplars, and the task table all tell that story.
fn exercise(io: IoModel) {
    let dir = spill_dir(io.label());
    let server = PlanServer::start(ServerConfig {
        io,
        threads: 2,
        // Threshold 1 ms: every cold/warm search is "slow", so each plan
        // request leaves an exemplar.
        slow_ms: 1,
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("start server");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let cold = client
        .plan(plan_request("tiny_cnn", 1, 200))
        .expect("cold plan");
    assert!(!cold.cache_hit, "{io}: first plan must be cold");
    let warm = client
        .plan(plan_request("tiny_cnn", 2, 200))
        .expect("warm plan");
    assert!(
        warm.warm_start.is_some(),
        "{io}: batch 2 must warm-start from batch 1"
    );
    let hit = client
        .plan(plan_request("tiny_cnn", 1, 200))
        .expect("repeat plan");
    assert!(hit.cache_hit, "{io}: repeat must be cache-served");

    let events = client.events().expect("events request");
    assert!(events.recorder_enabled, "{io}: recorder must be always-on");
    assert!(events.ring_capacity > 0);
    assert!(events.events_total > 0, "{io}: journal never ticked");
    let seen: HashSet<&str> = events.events.iter().map(|e| e.event.as_str()).collect();
    for expected in [
        "request_begin",
        "request_end",
        "stage",
        "cache_miss",
        "cache_hit",
        "transfer_donor",
    ] {
        assert!(
            seen.contains(expected),
            "{io}: journal missing `{expected}` after cold+warm+hit traffic; saw {seen:?}"
        );
    }

    // The warm request's exemplar names the actual plan key it produced,
    // carries a per-stage breakdown, and journals the cache decision and
    // the transfer donor that shaped the search.
    let ex = events
        .exemplars
        .iter()
        .find(|x| x.kind == "plan" && x.plan_key == warm.plan_key)
        .unwrap_or_else(|| {
            panic!(
                "{io}: no plan exemplar for key {}; have {:?}",
                warm.plan_key,
                events
                    .exemplars
                    .iter()
                    .map(|x| (&x.kind, &x.plan_key))
                    .collect::<Vec<_>>()
            )
        });
    assert!(!ex.panicked);
    assert!(
        ex.total_ms >= 1.0,
        "{io}: exemplar below the slow threshold"
    );
    assert!(
        !ex.stages.is_empty(),
        "{io}: exemplar has no stage breakdown"
    );
    for s in &ex.stages {
        assert!(
            [
                "parse",
                "queue",
                "profile",
                "cache",
                "search",
                "serialize",
                "write"
            ]
            .contains(&s.stage.as_str()),
            "{io}: unexpected exemplar stage {}",
            s.stage
        );
        assert!(s.ms >= 0.0);
    }
    let ex_events: HashSet<&str> = ex.events.iter().map(|e| e.event.as_str()).collect();
    assert!(
        ex_events.contains("cache_miss"),
        "{io}: warm exemplar missing its cache miss; saw {ex_events:?}"
    );
    assert!(
        ex_events.contains("transfer_donor"),
        "{io}: warm exemplar missing its transfer donor; saw {ex_events:?}"
    );
    let donor = ex
        .events
        .iter()
        .find(|e| e.event == "transfer_donor")
        .expect("donor event");
    let provenance = warm.warm_start.as_ref().expect("warm provenance");
    assert_eq!(
        donor.key, provenance.donor_key,
        "{io}: journaled donor differs from the response's provenance"
    );

    // The task table shows live threads — at minimum the one answering
    // the `tasks` request itself.
    let tasks = client.tasks().expect("tasks request");
    assert!(tasks.recorder_enabled);
    assert!(!tasks.tasks.is_empty(), "{io}: empty task table");
    assert!(
        tasks
            .tasks
            .iter()
            .any(|t| t.state == "tasks" || t.state != "idle"),
        "{io}: no thread admits to working: {:?}",
        tasks.tasks.iter().map(|t| &t.state).collect::<Vec<_>>()
    );

    // The post-mortem dump is a well-formed JSON file under the spill dir
    // telling the same story, named *.dump so the spill sweeper never
    // mistakes it for a cached plan.
    let path = server
        .write_postmortem("e2e-test")
        .expect("dump written (spill dir configured)");
    assert!(path.starts_with(&dir));
    assert_eq!(path.extension().and_then(|e| e.to_str()), Some("dump"));
    let json = std::fs::read_to_string(&path).expect("dump readable");
    let dump: PostmortemDump = serde_json::from_str(&json).expect("dump parses");
    assert_eq!(dump.reason, "e2e-test");
    assert_eq!(dump.version, PROTOCOL_VERSION);
    assert_eq!(dump.io, io.label());
    assert!(dump.events_total > 0);
    assert!(!dump.events.is_empty(), "{io}: dump carries no journal");
    assert!(
        !dump.exemplars.is_empty(),
        "{io}: dump carries no exemplars"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flight_recorder_explains_requests_on_the_threads_layer() {
    exercise(IoModel::Threads);
}

#[test]
fn flight_recorder_explains_requests_on_the_epoll_layer() {
    exercise(IoModel::Epoll);
}

/// Without a spill dir there is nowhere to dump: the writer declines
/// instead of scattering files.
#[test]
fn postmortem_needs_a_spill_dir() {
    let server = PlanServer::start(ServerConfig::default()).expect("start server");
    assert!(server.write_postmortem("nowhere").is_none());
    server.shutdown();
}
