//! Hostile-client battery against the epoll connection layer: slow-loris
//! writers, mid-frame disconnects, clients that never read their replies,
//! and oversized/garbage frames. Every scenario asserts the one property
//! that matters for a shared server — a concurrent well-behaved client
//! keeps getting answers — plus the scenario-specific contract (the slow
//! request still completes, the garbage still gets an error, the flooder
//! gets cut off).
//!
//! The epoll layer is Linux-only, and these behaviors (frame bound,
//! nonblocking write queues) are specific to it, so the whole battery is
//! Linux-gated.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{
    encode_binary_frame, encode_body, write_message, PlanRequest, ProfileRequest, Request,
    TaggedRequest, TransferMode, FRAME_MAGIC, MAX_FRAME_BYTES,
};
use qsdnn_serve::{IoModel, PlanClient, PlanServer, ServerConfig};

/// Caps a socket's `SO_RCVBUF` at 64 KiB (std exposes no setter), so the
/// kernel cannot auto-tune it into absorbing a test's whole reply volume.
fn shrink_rcvbuf(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const std::os::raw::c_void,
            optlen: u32,
        ) -> i32;
    }
    let size: i32 = 64 * 1024;
    // SAFETY: `stream` owns an open socket so the fd is valid for the
    // duration of the call; `optval` points at a live i32 and `optlen`
    // is exactly its size, matching setsockopt(2)'s contract.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            (&size as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

fn epoll_server() -> PlanServer {
    PlanServer::start(ServerConfig {
        io: IoModel::Epoll,
        ..ServerConfig::default()
    })
    .expect("start epoll server")
}

fn plan_request(episodes: usize) -> PlanRequest {
    PlanRequest {
        network: "tiny_cnn".to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes,
        seeds: vec![0x5EED],
        transfer: TransferMode::Off,
        trace: false,
        platform: String::new(),
    }
}

/// The well-behaved client every scenario runs alongside its hostile one:
/// it must complete a full plan round-trip with a bounded timeout while
/// the hostile connection is mid-abuse.
fn assert_server_responsive(addr: std::net::SocketAddr, episodes: usize) {
    let mut client = PlanClient::connect(addr).expect("well-behaved client connects");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let plan = client
        .plan(plan_request(episodes))
        .expect("well-behaved client gets its plan");
    assert!(plan.best.best_cost_ms.is_finite());
}

/// Upgrades a raw connection to v3 binary framing: bare JSON ping,
/// JSON pong back (the connection's last JSON line), binary from there.
fn negotiate_binary(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    write_message(conn, &Request::Ping { version: 3 }).expect("v3 ping");
    let mut pong = String::new();
    reader.read_line(&mut pong).expect("pong line");
    assert!(pong.contains("Pong"), "handshake failed: {pong}");
}

#[test]
fn slow_loris_byte_at_a_time_writer_does_not_stall_other_clients() {
    let server = epoll_server();
    let addr = server.local_addr();

    // The loris: a valid request dribbled one byte at a time.
    let mut loris = TcpStream::connect(addr).expect("loris connects");
    let mut line = Vec::new();
    write_message(&mut line, &Request::Stats).expect("serialize");
    let started = Instant::now();
    let mut reader = BufReader::new(loris.try_clone().expect("clone"));
    for &b in &line[..line.len() - 1] {
        loris.write_all(&[b]).expect("dribble");
        loris.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }

    // While the loris is still mid-frame, other clients get full service.
    assert_server_responsive(addr, 120);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "well-behaved client must not wait out the loris"
    );

    // The loris finally finishes its line and still gets its answer — slow
    // is not a crime, only blocking others would be.
    loris
        .write_all(&line[line.len() - 1..])
        .expect("terminator");
    loris.flush().expect("flush");
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("loris reply");
    assert!(reply.contains("Stats"), "unexpected loris reply: {reply}");
    server.shutdown();
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut frame = Vec::new();
    write_message(&mut frame, &Request::Plan(plan_request(100))).expect("serialize");

    // A swarm of clients that die mid-frame: half a request, then a hard
    // drop. Some also half-close politely after a torn frame.
    for i in 0..20 {
        let mut conn = TcpStream::connect(addr).expect("hostile connect");
        let cut = 1 + (i * 7) % (frame.len() - 2);
        conn.write_all(&frame[..cut]).expect("half frame");
        conn.flush().expect("flush");
        if i % 3 == 0 {
            // Half-close: the server sees EOF mid-line, answers the torn
            // tail with a parse error (resumable-framing parity with the
            // threaded layer) and closes. We don't care about the reply,
            // only that the server survives it.
            conn.shutdown(std::net::Shutdown::Write).ok();
            let mut sink = Vec::new();
            conn.set_read_timeout(Some(Duration::from_secs(2))).ok();
            let _ = conn.read_to_end(&mut sink);
        }
        drop(conn);
    }

    assert_server_responsive(addr, 130);

    // The server's counters are still served on a fresh connection — no
    // reactor wedge, no leaked v1-busy state.
    let mut client = PlanClient::connect(addr).expect("stats client");
    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 1);
    server.shutdown();
}

#[test]
fn a_client_that_never_reads_cannot_block_other_connections() {
    let server = epoll_server();
    let addr = server.local_addr();

    // The hostile client pipelines a capful of profile requests for a real
    // network (fat replies: each carries a whole LUT) and never reads a
    // byte of the responses. The server must park those replies in the
    // connection's write queue / kernel buffer and keep serving everyone
    // else.
    let mut hostile = TcpStream::connect(addr).expect("hostile connect");
    for id in 0..32u64 {
        write_message(
            &mut hostile,
            &TaggedRequest {
                id,
                req: Request::Profile(ProfileRequest {
                    network: "mobilenet_v1".to_string(),
                    batch: 1,
                    mode: Mode::Gpgpu,
                    repeats: 2,
                    platform: String::new(),
                }),
            },
        )
        .expect("submit");
    }

    // With the hostile connection's replies piling up unread, a
    // well-behaved client still completes planning work.
    assert_server_responsive(addr, 140);
    assert_server_responsive(addr, 141);

    // Drop the hostile connection without ever reading; the server must
    // clean it up and keep answering.
    drop(hostile);
    let mut client = PlanClient::connect(addr).expect("post-mortem client");
    let stats = client.stats().expect("stats");
    assert!(
        stats.pipelined >= 1,
        "the hostile tagged requests were dispatched: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn garbage_frames_get_errors_and_the_connection_stays_usable() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut reply = String::new();

    // Malformed JSON: an untagged error (no id survived the wreckage).
    conn.write_all(b"{nope nope nope\n").expect("garbage");
    reader.read_line(&mut reply).expect("error reply");
    assert!(reply.contains("Error"), "garbage must be answered: {reply}");

    // Invalid UTF-8: same contract — error reply, connection kept.
    conn.write_all(b"\"Stats\xff\xfe\"\n").expect("bad utf8");
    reply.clear();
    reader.read_line(&mut reply).expect("utf8 error reply");
    assert!(reply.contains("Error"), "bad UTF-8 answered: {reply}");

    // Valid JSON of the wrong shape: still an error, still connected.
    conn.write_all(b"{\"id\":1}\n").expect("bad envelope");
    reply.clear();
    reader.read_line(&mut reply).expect("shape error reply");
    assert!(reply.contains("Error"), "bad shape answered: {reply}");

    // After all that abuse the same connection serves real requests.
    write_message(&mut conn, &Request::Ping { version: 2 }).expect("ping");
    reply.clear();
    reader.read_line(&mut reply).expect("pong");
    assert!(reply.contains("Pong"), "connection still usable: {reply}");

    assert_server_responsive(addr, 150);
    server.shutdown();
}

/// Regression: the read cutoff stops at *exactly* the 8 MiB frame bound
/// (a multiple of the 16 KiB read chunk, so a fast flood lands on it
/// precisely). The hostile-line check used to fire only *past* the bound,
/// leaving an exactly-at-the-bound connection unreadable, unclosed and
/// unanswered forever. At the bound, the server must error and close.
#[test]
fn a_frame_of_exactly_the_bound_is_rejected_not_wedged() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut edge = TcpStream::connect(addr).expect("connect");
    edge.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    // Exactly 8 MiB, no terminator, then stop writing and listen.
    let chunk = vec![b'y'; 64 * 1024];
    for _ in 0..(8 * 1024 * 1024) / chunk.len() {
        edge.write_all(&chunk).expect("flood to the bound");
    }
    let mut tail = Vec::new();
    edge.read_to_end(&mut tail).expect("reply then clean close");
    let reply = String::from_utf8_lossy(&tail);
    assert!(
        reply.contains("frame bound"),
        "expected the frame-bound error, got: {reply:?}"
    );

    assert_server_responsive(addr, 155);
    server.shutdown();
}

/// Regression: parsing pauses once a connection holds more than the
/// outbox high-water mark of unread replies. Garbage frames queue their
/// error replies *synchronously in the parse loop*, so a big enough
/// garbage burst trips the mark mid-batch and strands the remaining
/// frames in the server-side frame buffer — where no future `EPOLLIN`
/// will ever announce them (the bytes already left the kernel, and after
/// the burst's EOF the read side never re-arms). When the client finally
/// reads and the outbox drains, the `EPOLLOUT`-only wakeup must resume
/// parsing, or those frames are silently dropped.
#[test]
fn a_late_reading_client_gets_every_reply_after_outbox_backpressure() {
    // ~85 reply bytes per 2-byte garbage line: 400k lines ≈ 34 MiB of
    // replies — far past the 8 MiB high-water mark *plus* whatever the
    // kernel socket buffers absorb, so the pause provably happens with
    // frames stranded in the server-side buffer.
    const LINES: usize = 400_000;
    let server = epoll_server();
    let addr = server.local_addr();

    let mut late = TcpStream::connect(addr).expect("connect");
    late.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    // Pin the client's receive buffer small: with kernel auto-tuning
    // (tcp_rmem max can be tens of MiB) the socket would swallow the
    // whole reply volume and the server's high-water mark would never
    // engage — the exact path this regression test exists to exercise.
    shrink_rcvbuf(&late);
    let burst: Vec<u8> = b"x\n".repeat(LINES);
    late.write_all(&burst).expect("garbage burst");
    late.shutdown(std::net::Shutdown::Write)
        .expect("half-close");

    // Let the server parse into the backpressure wall before reading a
    // single byte, so the pause really happens with frames buffered.
    std::thread::sleep(Duration::from_secs(2));

    // Every line must be answered with its own error reply — the frames
    // past the high-water pause included — and then the half-closed
    // connection drains to a clean EOF.
    let mut reader = BufReader::new(late);
    let mut replies = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read replies");
        if n == 0 {
            break; // EOF: server closed after flushing everything
        }
        assert!(line.contains("Error"), "unexpected reply: {line:.120}");
        replies += 1;
    }
    assert_eq!(
        replies, LINES,
        "replies stranded behind the outbox high-water pause"
    );

    assert_server_responsive(addr, 145);
    server.shutdown();
}

#[test]
fn an_oversized_frame_is_rejected_not_buffered_forever() {
    let server = epoll_server();
    let addr = server.local_addr();

    // A 9 MiB line with no terminator: past the 8 MiB frame bound the
    // server answers one error and closes — it will not buffer an
    // unbounded line. The hostile writer may see its write fail early
    // (connection reset mid-flood) or get the error line; both are a
    // rejection.
    let mut flooder = TcpStream::connect(addr).expect("flooder connect");
    flooder
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    let mut write_failed = false;
    while sent < 9 * 1024 * 1024 {
        match flooder.write_all(&chunk) {
            Ok(()) => sent += chunk.len(),
            Err(_) => {
                write_failed = true;
                break;
            }
        }
    }
    let mut tail = Vec::new();
    let read_result = flooder.read_to_end(&mut tail);
    let got_error_line = String::from_utf8_lossy(&tail).contains("exceeds");
    assert!(
        write_failed || got_error_line || read_result.is_err() || tail.is_empty(),
        "flood must end in rejection, got {} tail bytes",
        tail.len()
    );
    // Whatever the flood's fate, it must be *over*: the connection is
    // closed server-side, not parked holding 9 MiB.
    drop(flooder);

    assert_server_responsive(addr, 160);
    server.shutdown();
}

/// A binary client whose length prefix never finishes arriving: three
/// bytes of header, then silence, then a hard drop. The torn header must
/// neither wedge the reactor nor stall peer connections.
#[test]
fn a_truncated_binary_length_prefix_does_not_wedge_the_server() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    negotiate_binary(&mut conn, &mut reader);
    // Magic + kind + one byte of the four-byte length: a frame the
    // server can never finish sizing.
    conn.write_all(&[FRAME_MAGIC, 0x00, 0x10]).expect("stub");
    conn.flush().expect("flush");

    // Peers get full service while the truncated header sits buffered.
    assert_server_responsive(addr, 210);

    // Half-close: the server sees EOF with a partial frame buffered and
    // must answer the mid-frame diagnostic before closing (explicit
    // lengths make a torn tail corruption, not a completable request).
    conn.shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut tail = Vec::new();
    reader.read_to_end(&mut tail).expect("error then close");
    assert!(
        String::from_utf8_lossy(&tail).contains("mid-frame"),
        "expected the mid-frame diagnostic, got {tail:?}"
    );

    assert_server_responsive(addr, 211);
    server.shutdown();
}

/// A binary header declaring a body larger than the frame bound is a
/// protocol violation answered with one error frame and a close — the
/// server must not try to buffer what the header promises.
#[test]
fn a_binary_length_past_the_frame_bound_is_rejected_and_closed() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    negotiate_binary(&mut conn, &mut reader);
    let oversize = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
    let mut header = vec![FRAME_MAGIC, 0x00];
    header.extend_from_slice(&oversize);
    conn.write_all(&header).expect("oversize header");
    conn.flush().expect("flush");

    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut tail = Vec::new();
    reader.read_to_end(&mut tail).expect("error then close");
    let reply = String::from_utf8_lossy(&tail);
    assert!(
        reply.contains("exceeds") && reply.contains("frame bound"),
        "expected the frame-bound error, got {reply:?}"
    );

    assert_server_responsive(addr, 212);
    server.shutdown();
}

/// Binary clients that vanish mid-frame — header promising a body that
/// never arrives, then a hard drop — must leave the server healthy.
#[test]
fn binary_mid_frame_disconnects_leave_the_server_healthy() {
    let server = epoll_server();
    let addr = server.local_addr();

    let body = encode_body(&Request::Stats).expect("encode");
    let frame = encode_binary_frame(Some(7), &body).expect("frame");
    for i in 0..12 {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        negotiate_binary(&mut conn, &mut reader);
        // Cut inside the header for some, inside the body for others.
        let cut = 1 + (i * 5) % (frame.len() - 1);
        conn.write_all(&frame[..cut]).expect("torn frame");
        conn.flush().expect("flush");
        drop(conn);
    }

    assert_server_responsive(addr, 213);
    let mut client = PlanClient::connect(addr).expect("post-mortem client");
    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 1);
    server.shutdown();
}

/// JSON text on a *binary* connection: the first byte is not the frame
/// magic, so the framing is unrecoverable — one error naming the magic,
/// then close. Peer connections never notice.
#[test]
fn json_garbage_on_a_binary_connection_is_diagnosed_and_closed() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    negotiate_binary(&mut conn, &mut reader);
    // A well-formed JSON request — on the wrong framing. One write, so
    // the whole line lands before the server's error-and-close (a second
    // segment arriving after the close would turn the FIN into an RST).
    let mut line = Vec::new();
    write_message(&mut line, &Request::Stats).expect("serialize");
    conn.write_all(&line).expect("json on binary");
    conn.flush().expect("flush");

    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut tail = Vec::new();
    reader.read_to_end(&mut tail).expect("error then close");
    let reply = String::from_utf8_lossy(&tail);
    assert!(
        reply.contains("bad frame magic") && reply.contains("JSON"),
        "expected the bad-magic diagnostic, got {reply:?}"
    );

    assert_server_responsive(addr, 214);
    server.shutdown();
}

/// A binary frame on a *JSON* connection (no handshake): the magic byte
/// is invalid UTF-8 in a JSON line, so the hostile line gets an error —
/// and because JSON framing resynchronizes at the newline, the *same*
/// connection stays usable afterwards, unlike the binary-side mirror.
#[test]
fn binary_garbage_on_a_json_connection_gets_an_error_and_survives() {
    let server = epoll_server();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let body = encode_body(&Request::Stats).expect("encode");
    let mut garbage = encode_binary_frame(None, &body).expect("frame");
    garbage.push(b'\n'); // terminate the "line" so the JSON layer answers
    conn.write_all(&garbage).expect("binary on json");
    conn.flush().expect("flush");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("error reply");
    assert!(reply.contains("Error"), "garbage must be answered: {reply}");

    // The connection resynchronized: real JSON still works on it. The
    // frame's length prefix happens to contain a 0x0A byte, so the JSON
    // splitter may see the garbage as *several* lines — each gets its
    // own error reply before the pong arrives.
    write_message(&mut conn, &Request::Ping { version: 2 }).expect("ping");
    let mut got_pong = false;
    for _ in 0..8 {
        reply.clear();
        reader.read_line(&mut reply).expect("reply line");
        if reply.contains("Pong") {
            got_pong = true;
            break;
        }
        assert!(reply.contains("Error"), "unexpected reply: {reply}");
    }
    assert!(got_pong, "connection must still serve real requests");

    assert_server_responsive(addr, 215);
    server.shutdown();
}
