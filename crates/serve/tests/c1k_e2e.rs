//! C1k smoke test: 1000 concurrent pipelined connections against the
//! epoll server, completing with a *bounded* thread count — O(workers +
//! dispatchers), not O(connections) — and answers bit-identical to the
//! single-threaded sequential reference.
//!
//! `#[ignore]`-gated: ~2000 sockets live in one process is a lot for a
//! default dev `ulimit`, so the CI release job runs it explicitly
//! (`cargo test -p qsdnn-serve --release --test c1k_e2e -- --ignored`).

#![cfg(target_os = "linux")]

use std::time::Duration;

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn::Portfolio;
use qsdnn_serve::protocol::{PlanRequest, TransferMode};
use qsdnn_serve::{IoModel, PlanClient, PlanServer, ServerConfig, Ticket};

const CONNECTIONS: usize = 1000;
const NETWORKS: [&str; 2] = ["tiny_cnn", "toy_branchy"];
const EPISODES: usize = 160;
const SEEDS: [u64; 2] = [0x5EED, 17];

mod rlimit {
    use std::os::raw::c_int;

    const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    /// Raises the soft fd limit to `want` (bounded by the hard limit) and
    /// reports what is actually available.
    pub fn raise_nofile(want: u64) -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a live, writable `#[repr(C)]` Rlimit matching
        // the kernel's struct rlimit layout (two u64s on 64-bit Linux).
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur < want {
            let raised = Rlimit {
                cur: want.min(lim.max),
                max: lim.max,
            };
            // SAFETY: `raised` is a valid Rlimit read-only input; the
            // re-read passes the same live `lim` as above.
            unsafe { setrlimit(RLIMIT_NOFILE, &raised) };
            // SAFETY: same contract as the first `getrlimit` call.
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
                return 0;
            }
        }
        lim.cur
    }
}

/// `Threads:` from `/proc/self/status` — every thread in this process,
/// server and test harness included.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

fn request_for(i: usize) -> PlanRequest {
    PlanRequest {
        network: NETWORKS[i % NETWORKS.len()].to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes: EPISODES,
        seeds: SEEDS.to_vec(),
        transfer: TransferMode::Off,
        trace: false,
        platform: String::new(),
    }
}

fn sequential_reference(network: &str, profile_repeats: usize) -> qsdnn::PortfolioOutcome {
    let net = zoo::by_name(network, 1).expect("known network");
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), profile_repeats)
        .profile(&net, Mode::Gpgpu);
    let scalarized = lut.with_objective(Objective::Latency);
    Portfolio::paper_default(EPISODES, &SEEDS)
        .run_sequential(&scalarized)
        .expect("applicable members")
}

#[test]
#[ignore = "c1k smoke: needs ~2100 fds; run explicitly (CI release job does)"]
fn one_thousand_pipelined_connections_with_bounded_threads() {
    // ~2 sockets per connection (client + accepted) plus slack.
    let available = rlimit::raise_nofile(2 * CONNECTIONS as u64 + 256);
    if available < 2 * CONNECTIONS as u64 + 64 {
        eprintln!("skipping c1k: only {available} fds available (hard limit too low)");
        return;
    }

    let config = ServerConfig {
        io: IoModel::Epoll,
        threads: 4,
        dispatchers: 8,
        ..ServerConfig::default()
    };
    let profile_repeats = config.profile_repeats;
    let server = PlanServer::start(config).expect("start epoll server");
    let addr = server.local_addr();
    let baseline_threads = process_threads();

    // Open all 1000 connections (each handshakes) and pipeline one tagged
    // plan request per connection without reading any reply — all 1000 in
    // flight against the server at once.
    let mut clients: Vec<(PlanClient, Ticket)> = Vec::with_capacity(CONNECTIONS);
    for i in 0..CONNECTIONS {
        let mut client =
            PlanClient::connect(addr).unwrap_or_else(|e| panic!("connection {i} failed: {e}"));
        client
            .set_timeout(Some(Duration::from_secs(120)))
            .expect("timeout");
        let ticket = client.submit_plan(request_for(i)).expect("submit");
        clients.push((client, ticket));
    }

    // The core claim: all 1000 connections are held by a readiness loop,
    // not a thread each. The whole process — 4 search workers, 8
    // dispatchers, the reactor, the test harness — stays two orders of
    // magnitude below thread-per-connection.
    let held = process_threads();
    assert!(
        held < 100,
        "{held} threads while holding {CONNECTIONS} connections \
         (baseline {baseline_threads}); thread-per-connection would be >1000"
    );

    // Every reply must be bit-identical to the sequential reference for
    // its scenario.
    let references: Vec<qsdnn::PortfolioOutcome> = NETWORKS
        .iter()
        .map(|n| sequential_reference(n, profile_repeats))
        .collect();
    for (i, (mut client, ticket)) in clients.into_iter().enumerate() {
        let plan = client
            .wait_plan(ticket)
            .unwrap_or_else(|e| panic!("connection {i} reply failed: {e}"));
        let reference = &references[i % NETWORKS.len()];
        assert_eq!(plan.network, NETWORKS[i % NETWORKS.len()]);
        assert_eq!(
            plan.best.best_assignment, reference.best.best_assignment,
            "connection {i}: plan diverged from the sequential reference"
        );
        assert_eq!(
            plan.best.best_cost_ms.to_bits(),
            reference.best.best_cost_ms.to_bits(),
            "connection {i}: cost must be bit-identical"
        );
        assert_eq!(plan.winner, reference.winner, "connection {i}");
    }

    // The cache coalesced the flood into one search per scenario.
    let mut observer = PlanClient::connect(addr).expect("observer");
    let stats = observer.stats().expect("stats");
    assert_eq!(stats.pipelined, CONNECTIONS as u64);
    assert_eq!(
        stats.plan_cache.misses,
        NETWORKS.len() as u64,
        "exactly one search per scenario"
    );
    assert_eq!(
        stats.plan_cache.hits + stats.plan_cache.coalesced + stats.plan_cache.spill_loads,
        (CONNECTIONS - NETWORKS.len()) as u64,
        "all other requests cache-served"
    );
    server.shutdown();
}
