//! End-to-end acceptance test of the plan-compilation service: ≥32
//! concurrent `plan` requests over ≥3 zoo networks through a real TCP
//! server on an ephemeral port; the cache must report a nonzero hit rate
//! and every returned plan must be bit-identical to a single-threaded
//! `QsDnnSearch` portfolio run with the same seeds.

use std::collections::HashMap;

use qsdnn::engine::{AnalyticalPlatform, Mode, Objective, Profiler};
use qsdnn::nn::zoo;
use qsdnn::Portfolio;
use qsdnn_serve::protocol::{PlanRequest, PlanResponse, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

const NETWORKS: [&str; 3] = ["lenet5", "tiny_cnn", "toy_branchy"];
const CLIENTS_PER_NETWORK: usize = 12; // 36 concurrent requests total
const EPISODES: usize = 200;
const SEEDS: [u64; 2] = [0x5EED, 41];

fn request_for(network: &str) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes: EPISODES,
        seeds: SEEDS.to_vec(),
        // This suite pins the *cold-path* contract: every plan
        // bit-identical to the sequential reference regardless of arrival
        // order. Scenario transfer (tested in transfer_e2e.rs) would let
        // whichever network finishes first donate to the others.
        transfer: TransferMode::Off,
        trace: false,
        platform: String::new(),
    }
}

/// The single-threaded reference the server must reproduce bit-for-bit:
/// profile with the server's default repeats, scalarize, run the portfolio
/// sequentially.
fn sequential_reference(network: &str, profile_repeats: usize) -> qsdnn::PortfolioOutcome {
    let net = zoo::by_name(network, 1).expect("known network");
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), profile_repeats)
        .profile(&net, Mode::Gpgpu);
    let scalarized = lut.with_objective(Objective::Latency);
    Portfolio::paper_default(EPISODES, &SEEDS)
        .run_sequential(&scalarized)
        .expect("applicable members")
}

#[test]
fn thirty_six_concurrent_plans_over_three_networks() {
    let config = ServerConfig::default();
    let profile_repeats = config.profile_repeats;
    let server = PlanServer::start(config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Fan out: one OS thread per client connection, all planning at once.
    let mut handles = Vec::new();
    for network in NETWORKS {
        for _ in 0..CLIENTS_PER_NETWORK {
            handles.push(std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                client.plan(request_for(network)).expect("plan request")
            }));
        }
    }
    let responses: Vec<PlanResponse> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(responses.len(), NETWORKS.len() * CLIENTS_PER_NETWORK);

    // Every response for one network must be the same plan, and that plan
    // must match the single-threaded reference bit-for-bit.
    let mut by_network: HashMap<String, Vec<PlanResponse>> = HashMap::new();
    for r in responses {
        by_network.entry(r.network.clone()).or_default().push(r);
    }
    assert_eq!(by_network.len(), NETWORKS.len());
    for network in NETWORKS {
        let group = &by_network[network];
        assert_eq!(group.len(), CLIENTS_PER_NETWORK);
        let reference = sequential_reference(network, profile_repeats);
        for resp in group {
            assert_eq!(
                resp.best.best_assignment, reference.best.best_assignment,
                "{network}: served plan must equal the sequential portfolio"
            );
            assert_eq!(
                resp.best.best_cost_ms.to_bits(),
                reference.best.best_cost_ms.to_bits(),
                "{network}: cost must be bit-identical"
            );
            assert_eq!(resp.winner, reference.winner, "{network}");
            assert!(
                resp.speedup() >= 1.0,
                "{network}: plan can never lose to vanilla"
            );
        }
        // All 12 responses share one plan key (content addressing).
        assert!(group.windows(2).all(|w| w[0].plan_key == w[1].plan_key));
    }

    // The cache must have coalesced/served most of the 36 requests: exactly
    // one fresh search per network.
    let mut client = PlanClient::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.plan_cache.misses,
        NETWORKS.len() as u64,
        "one search per scenario"
    );
    let served_without_search =
        stats.plan_cache.hits + stats.plan_cache.coalesced + stats.plan_cache.spill_loads;
    assert_eq!(
        served_without_search,
        (NETWORKS.len() * (CLIENTS_PER_NETWORK - 1)) as u64,
        "all other requests must be cache-served"
    );
    assert!(
        stats.plan_cache.hit_rate() > 0.5,
        "hit rate {}",
        stats.plan_cache.hit_rate()
    );
    assert!(stats.requests > 36 + 36, "pings + plans + stats");

    server.shutdown();
}

#[test]
fn distinct_objectives_get_distinct_plans_and_keys() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let mut latency_req = request_for("mobilenet_v1");
    latency_req.episodes = 300;
    let mut energy_req = latency_req.clone();
    energy_req.objective = Objective::Energy;

    let latency = client.plan(latency_req).expect("latency plan");
    let energy = client.plan(energy_req).expect("energy plan");
    assert_ne!(
        latency.plan_key, energy.plan_key,
        "objective is part of the address"
    );
    assert!(!latency.cache_hit && !energy.cache_hit);
    assert!(
        latency.best.best_cost_ms != energy.best.best_cost_ms,
        "different objectives score differently"
    );
    server.shutdown();
}

#[test]
fn search_request_plans_a_client_profiled_lut() {
    // The `search` path serves LUTs profiled anywhere — e.g. measured on a
    // real device — not just the server's own zoo profiles.
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let net = zoo::tiny_cnn(1);
    let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3).profile(&net, Mode::Cpu);
    let first = client
        .search(lut.clone(), Objective::Latency, 150, vec![7])
        .expect("search request");
    assert!(!first.cache_hit);
    assert_eq!(first.network, "tiny_cnn");

    // Identical LUT content → same plan key → cache hit, identical plan.
    let second = client
        .search(lut, Objective::Latency, 150, vec![7])
        .expect("repeat search");
    assert!(second.cache_hit, "content-addressed: same LUT bytes hit");
    assert_eq!(first.best, second.best);
    server.shutdown();
}

#[test]
fn bad_requests_get_error_responses_not_disconnects() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let err = client
        .plan(request_for("no_such_network"))
        .expect_err("must fail");
    assert!(err.to_string().contains("unknown network"), "{err}");
    // The connection survives the error.
    let ok = client.plan(request_for("tiny_cnn"));
    assert!(ok.is_ok(), "connection must remain usable after an error");
    server.shutdown();
}

#[test]
fn malformed_lut_in_search_request_is_rejected_cleanly() {
    // A wire LUT bypasses `CostLut::from_parts`; broken invariants must
    // become an Error response, not a panicked connection thread.
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let net = zoo::tiny_cnn(1);
    let good = Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Cpu);
    // Corrupt it through the wire representation: truncate one layer's
    // time vector so arities no longer match.
    let mut json = serde_json::to_string(&good).expect("serializes");
    let needle = "\"time_ms\":[";
    let start = json.find(needle).expect("has times") + needle.len();
    let end = start + json[start..].find(']').expect("closes");
    // Three times on the single-candidate input layer: arity mismatch.
    json.replace_range(start..end, "1.0,2.0,3.0");
    let bad: qsdnn::engine::CostLut = serde_json::from_str(&json).expect("still parses");

    let err = client
        .search(bad, Objective::Latency, 100, vec![1])
        .expect_err("malformed LUT must be rejected");
    assert!(err.to_string().contains("invalid LUT"), "{err}");
    // The connection — and the server — survive.
    let ok = client.plan(request_for("tiny_cnn"));
    assert!(ok.is_ok(), "connection must remain usable after a bad LUT");
    server.shutdown();
}

#[test]
fn shutdown_joins_idle_connection_handlers() {
    // Regression: handler threads used to be detached, so `shutdown`
    // returned while handlers sat blocked in `read` forever. Now an idle
    // open connection must be wound down — its handler observes the flag
    // via the read timeout, exits, and the socket closes.
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let mut idle = PlanClient::connect(addr).expect("connect");
    idle.set_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("client timeout");
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "shutdown must not hang on the idle connection"
    );
    // The handler is gone, so the next request fails (EOF or reset)
    // instead of being silently served by a leaked thread.
    let after = idle.stats();
    assert!(after.is_err(), "handler must not outlive the server");
}

#[test]
fn stats_expose_per_shard_cache_breakdown() {
    let server = PlanServer::start(ServerConfig {
        cache_shards: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    for network in NETWORKS {
        client.plan(request_for(network)).expect("plan");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.plan_cache.shards, 4);
    assert_eq!(stats.plan_cache_shards.len(), 4);
    assert_eq!(stats.profile_cache_shards.len(), 4);
    // The per-shard breakdown must sum to the aggregate counters.
    let shard_entries: u64 = stats.plan_cache_shards.iter().map(|s| s.entries).sum();
    assert_eq!(shard_entries, stats.plan_cache.entries);
    assert_eq!(shard_entries, NETWORKS.len() as u64);
    let shard_misses: u64 = stats.plan_cache_shards.iter().map(|s| s.misses).sum();
    assert_eq!(shard_misses, stats.plan_cache.misses);
    for s in &stats.plan_cache_shards {
        assert!(s.entries + s.in_flight <= s.capacity, "bound per shard");
        assert!(s.capacity >= 1);
    }
    server.shutdown();
}

#[test]
fn spill_directory_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("qsdnn_e2e_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        spill_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let first = {
        let server = PlanServer::start(config()).expect("bind");
        let mut client = PlanClient::connect(server.local_addr()).expect("connect");
        let plan = client.plan(request_for("tiny_cnn")).expect("plan");
        server.shutdown();
        plan
    };
    assert!(!first.cache_hit);

    // Fresh server, cold memory, warm disk.
    let server = PlanServer::start(config()).expect("rebind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let second = client
        .plan(request_for("tiny_cnn"))
        .expect("plan after restart");
    assert!(second.cache_hit, "spilled plan must be reloaded");
    assert_eq!(first.best, second.best);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.plan_cache.spill_loads, 1);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
