//! Property coverage for the platform term of
//! [`ScenarioDescriptor::distance`]: the registry refactor replaced the
//! flat cross-platform penalty with a spec-divergence term, and transfer
//! quality depends on two properties of it:
//!
//! 1. **Monotonicity** — for the same network, more divergent platform
//!    specs must never look *closer*. Otherwise nearest-donor ranking
//!    would prefer a more foreign platform over a near-twin.
//! 2. **Cutoff admission** — a cross-platform donor for the same network
//!    must always fall inside the serve layer's donor cutoff, so warm
//!    starts across platforms are actually offered (the refactor's whole
//!    point). The term is bounded below the flat penalty by construction.

use std::sync::OnceLock;

use proptest::prelude::*;
use qsdnn::engine::{
    AnalyticalPlatform, CostLut, Mode, PlatformRegistry, Profiler, ScenarioDescriptor,
};
use qsdnn::nn::zoo;

/// The serve layer's donor admission cutoff
/// (`MAX_DONOR_DISTANCE` in `qsdnn-serve/src/transfer.rs`).
const DONOR_CUTOFF: f64 = 6.0;

/// The flat legacy penalty for a platform-name mismatch
/// (`PLATFORM_MISMATCH` in `qsdnn-engine/src/scenario.rs`); the
/// feature-based term must stay strictly below it.
const FLAT_PLATFORM_PENALTY: f64 = 2.0;

fn shared_lut() -> &'static CostLut {
    static LUT: OnceLock<CostLut> = OnceLock::new();
    LUT.get_or_init(|| {
        let net = zoo::by_name("tiny_cnn", 1).expect("zoo network");
        Profiler::with_repeats(AnalyticalPlatform::tx2(), 2).profile(&net, Mode::Gpgpu)
    })
}

/// Same network/LUT on both sides, but a foreign platform name so the
/// platform term is the *only* nonzero distance contribution.
fn descriptor(name: &str, features: Vec<f64>) -> ScenarioDescriptor {
    let mut d = ScenarioDescriptor::of(shared_lut()).with_batch(1);
    d.platform = name.to_string();
    d.with_platform_features(features)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scaling a fixed perturbation direction up can only increase the
    /// distance: `d(base, base + t1·delta) <= d(base, base + t2·delta)`
    /// for `t1 <= t2`, and the zero perturbation scores zero (identically
    /// specced platforms under different names are perfect donors).
    #[test]
    fn platform_term_is_monotone_in_spec_divergence(
        base in proptest::collection::vec(0.0f64..8.0, 3..9),
        raw_delta in proptest::collection::vec(0.0f64..4.0, 3..9),
        t1 in 0.0f64..4.0,
        t2 in 0.0f64..4.0,
    ) {
        let n = base.len().min(raw_delta.len());
        let base = base[..n].to_vec();
        let delta = &raw_delta[..n];
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let perturb = |t: f64| -> Vec<f64> {
            base.iter().zip(delta).map(|(b, d)| b + t * d).collect()
        };
        let anchor = descriptor("target", base.clone());
        let near = descriptor("donor", perturb(lo));
        let far = descriptor("donor", perturb(hi));
        let d_near = anchor.distance(&near);
        let d_far = anchor.distance(&far);
        prop_assert!(
            d_near <= d_far + 1e-12,
            "divergence {lo} scored {d_near}, larger divergence {hi} scored {d_far}"
        );
        let twin = descriptor("donor", base.clone());
        prop_assert!(
            anchor.distance(&twin).abs() < 1e-12,
            "identically specced platforms must be zero-distance donors"
        );
    }

    /// Any pair of feature-carrying platforms is admissible as a donor for
    /// the same network: the platform term stays strictly under the flat
    /// penalty, hence far under the serve layer's donor cutoff — even with
    /// a batch doubling stacked on top.
    #[test]
    fn cross_platform_donors_stay_inside_the_donor_cutoff(
        a in proptest::collection::vec(0.0f64..8.0, 4),
        b in proptest::collection::vec(0.0f64..8.0, 4),
    ) {
        let target = descriptor("target", a);
        let donor = descriptor("donor", b);
        let d = target.distance(&donor);
        prop_assert!(
            d < FLAT_PLATFORM_PENALTY,
            "feature-based term {d} must undercut the flat penalty"
        );
        let batched = {
            let mut d2 = ScenarioDescriptor::of(shared_lut()).with_batch(2);
            d2.platform = "donor".to_string();
            d2.with_platform_features(donor.platform_features.clone())
        };
        prop_assert!(
            target.distance(&batched) < DONOR_CUTOFF,
            "a cross-platform batch neighbor must remain an eligible donor"
        );
    }
}

/// The committed built-in specs themselves are mutually admissible donors
/// (the concrete case the bench sweep exercises).
#[test]
fn builtin_platforms_are_mutually_admissible_donors() {
    let registry = PlatformRegistry::builtin();
    let specs: Vec<_> = registry.specs().collect();
    assert!(specs.len() >= 4, "expected the four built-ins");
    for a in &specs {
        for b in &specs {
            let da = descriptor(&a.name, a.features());
            let db = descriptor(&b.name, b.features());
            let d = da.distance(&db);
            if a.name == b.name {
                assert!(d.abs() < 1e-12, "{} vs itself scored {d}", a.name);
            } else {
                assert!(
                    d < DONOR_CUTOFF,
                    "{} vs {} scored {d}, outside the donor cutoff",
                    a.name,
                    b.name
                );
            }
        }
    }
}
