//! End-to-end acceptance of the platform registry over the wire: a client
//! lists the registered targets, pins requests to a non-default platform
//! (plans land under platform-fingerprinted cache keys, disjoint from the
//! default's), warm-starts a search *across* platforms, and drives a
//! server whose default target or spec directory came from configuration.
//! Startup with a corrupt `--platform-dir` spec must fail with an error
//! naming the offending file, never panic.

use qsdnn::engine::{Mode, Objective, PlatformSpec};
use qsdnn_serve::protocol::{PlanRequest, ProfileRequest, Request, Response, TransferMode};
use qsdnn_serve::{PlanClient, PlanServer, ServeError, ServerConfig};

fn request(network: &str, platform: &str) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes: 150,
        seeds: vec![7],
        transfer: TransferMode::Off,
        trace: false,
        platform: platform.to_string(),
    }
}

#[test]
fn platforms_request_lists_the_registry() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let listing = client.platforms().expect("platforms");
    assert!(
        listing.platforms.len() >= 4,
        "the four built-ins at minimum: {:?}",
        listing.platforms
    );
    for name in ["sim-tx2", "measured-host", "sim-gpu-heavy", "sim-cpu-only"] {
        let p = listing
            .platform(name)
            .unwrap_or_else(|| panic!("built-in `{name}` missing from {:?}", listing.platforms));
        assert_eq!(p.is_default, name == "sim-tx2");
        assert_eq!(p.gpu, name != "sim-cpu-only");
        assert_eq!(p.fingerprint.len(), 16, "zero-padded hex fingerprint");
    }
    server.shutdown();
}

#[test]
fn non_default_platforms_get_their_own_plans_and_cache_keys() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let default_plan = client.plan(request("tiny_cnn", "")).expect("default");
    let gpu_heavy = client
        .plan(request("tiny_cnn", "sim-gpu-heavy"))
        .expect("gpu-heavy");
    assert_ne!(
        default_plan.plan_key, gpu_heavy.plan_key,
        "platform-pinned plans must never share the default's address"
    );
    assert!(!gpu_heavy.cache_hit);

    // The pinned scenario is itself cached and repeatable.
    let again = client
        .plan(request("tiny_cnn", "sim-gpu-heavy"))
        .expect("repeat");
    assert!(again.cache_hit);
    assert_eq!(again.plan_key, gpu_heavy.plan_key);

    // Profiles are platform-specific too: the LUTs genuinely differ.
    let prof = |platform: &str, client: &mut PlanClient| {
        client
            .profile(ProfileRequest {
                network: "tiny_cnn".into(),
                batch: 1,
                mode: Mode::Gpgpu,
                repeats: 3,
                platform: platform.into(),
            })
            .expect("profile")
    };
    let base = prof("", &mut client);
    let heavy = prof("sim-gpu-heavy", &mut client);
    assert_ne!(base.fingerprint, heavy.fingerprint);
    assert_eq!(heavy.lut.platform(), "sim-gpu-heavy");

    // An unknown platform is a clean error listing what exists.
    let err = client
        .plan(request("tiny_cnn", "sim-unknown"))
        .expect_err("unknown platform");
    let msg = err.to_string();
    assert!(msg.contains("sim-unknown"), "names the request: {msg}");
    assert!(msg.contains("sim-tx2"), "lists the registry: {msg}");

    // A GPU mode on a CPU-only platform is rejected before any search.
    let err = client
        .plan(request("tiny_cnn", "sim-cpu-only"))
        .expect_err("no GPU");
    assert!(err.to_string().contains("no GPU"), "got: {err}");
    server.shutdown();
}

/// The refactor's headline behavior: a scenario solved on one platform
/// warm-starts the same network on *another* platform, because descriptor
/// distance now scores genuine spec divergence instead of an effectively
/// infinite mismatch.
#[test]
fn searches_warm_start_across_platforms() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let mut seed_req = request("tiny_cnn", "");
    seed_req.transfer = TransferMode::Auto;
    let donor = client.plan(seed_req).expect("default-platform donor");
    assert!(donor.warm_start.is_none(), "first scenario is cold");

    let mut cross = request("tiny_cnn", "sim-gpu-heavy");
    cross.transfer = TransferMode::Auto;
    let warmed = client.plan(cross).expect("cross-platform request");
    let warm = warmed
        .warm_start
        .as_ref()
        .expect("the other platform's plan is an eligible donor");
    assert_eq!(warm.donor_key, donor.plan_key);
    assert!(
        warm.donor_distance < 6.0,
        "cross-platform donors sit inside the cutoff, got {}",
        warm.donor_distance
    );
    assert!(warm.transferred_states > 0);
    server.shutdown();
}

#[test]
fn server_default_platform_rebases_unpinned_requests() {
    let server = PlanServer::start(ServerConfig {
        platform: "sim-gpu-heavy".to_string(),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let listing = client.platforms().expect("platforms");
    let default = listing
        .platforms
        .iter()
        .find(|p| p.is_default)
        .expect("a default exists");
    assert_eq!(default.name, "sim-gpu-heavy");

    // An unpinned request resolves to the configured default and is
    // addressed under that platform's keys — the same wire bytes against
    // a stock server produce a different (sim-tx2) plan key.
    let rebased = client.plan(request("tiny_cnn", "")).expect("plan");
    let stock = PlanServer::start(ServerConfig::default()).expect("bind stock");
    let mut stock_client = PlanClient::connect(stock.local_addr()).expect("connect");
    let baseline = stock_client.plan(request("tiny_cnn", "")).expect("plan");
    assert_ne!(rebased.plan_key, baseline.plan_key);
    stock.shutdown();
    server.shutdown();

    // An unknown default is a startup configuration error, not a panic.
    match PlanServer::start(ServerConfig {
        platform: "sim-nonexistent".to_string(),
        ..ServerConfig::default()
    }) {
        Err(ServeError::Config(msg)) => assert!(msg.contains("sim-nonexistent"), "{msg}"),
        Err(other) => panic!("expected a config error, got {other}"),
        Ok(_) => panic!("an unknown default platform must fail startup"),
    }
}

#[test]
fn platform_dir_specs_join_the_registry() {
    let dir = std::env::temp_dir().join(format!("qsdnn_platform_dir_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    // A user spec: gpu-heavy with the GPU clocked further up, under a new
    // name. Serialized through the spec schema itself, so this also pins
    // the on-disk format round-trip.
    let mut spec = PlatformSpec::gpu_heavy();
    spec.name = "user-hot-gpu".to_string();
    spec.description = "gpu-heavy with a user overclock".to_string();
    spec.gpu
        .as_mut()
        .expect("gpu-heavy has a gpu")
        .bandwidth_gbs *= 2.0;
    std::fs::write(
        dir.join("hot-gpu.json"),
        serde_json::to_string(&spec).expect("serialize"),
    )
    .expect("write spec");

    let server = PlanServer::start(ServerConfig {
        platform_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");

    let listing = client.platforms().expect("platforms");
    let loaded = listing.platform("user-hot-gpu").expect("spec loaded");
    assert!(!loaded.is_default);
    assert!(loaded.gpu);

    let plan = client
        .plan(request("tiny_cnn", "user-hot-gpu"))
        .expect("plan on the user spec");
    let stock = client.plan(request("tiny_cnn", "")).expect("default plan");
    assert_ne!(plan.plan_key, stock.plan_key);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_platform_dir_fails_startup_naming_the_file() {
    let dir = std::env::temp_dir().join(format!("qsdnn_platform_bad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("broken.json"), "{not json").expect("write junk");

    match PlanServer::start(ServerConfig {
        platform_dir: Some(dir.clone()),
        ..ServerConfig::default()
    }) {
        Err(ServeError::Config(msg)) => {
            assert!(msg.contains("broken.json"), "must name the file: {msg}")
        }
        Err(other) => panic!("expected a config error, got {other}"),
        Ok(_) => panic!("a corrupt spec file must fail startup"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The `platforms` request also answers over the raw tagged/untagged
/// protocol path (exercised through `request`), not just the typed client
/// helper.
#[test]
fn platforms_request_roundtrips_over_the_wire() {
    let server = PlanServer::start(ServerConfig::default()).expect("bind");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    match client.request(&Request::Platforms).expect("roundtrip") {
        Response::Platforms(listing) => assert!(listing.platforms.len() >= 4),
        other => panic!("unexpected response {other:?}"),
    }
    server.shutdown();
}
