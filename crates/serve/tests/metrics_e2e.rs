//! Acceptance for the observability layer: the `metrics` wire request
//! and the Prometheus exposition endpoint both report per-stage latency
//! histograms with consistent quantiles under concurrent pipelined
//! load; `trace: true` echoes a span without changing a single plan
//! bit; and slow requests land in the structured log with a breakdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use qsdnn::engine::{Mode, Objective};
use qsdnn_serve::protocol::{
    HistogramMsg, MetricValue, MetricsResponse, PlanRequest, TransferMode,
};
use qsdnn_serve::{PlanClient, PlanServer, ServerConfig};

/// Every family the serve stack itself registers or synthesizes — the
/// catalog both exposure paths must list (global engine/core families
/// ride along but depend on process-wide test ordering, so they are
/// asserted separately).
const SERVE_FAMILIES: [&str; 19] = [
    "qsdnn_build_info",
    "qsdnn_recorder_events_total",
    "qsdnn_request_us",
    "qsdnn_request_stage_us",
    "qsdnn_slow_requests_total",
    "qsdnn_connections",
    "qsdnn_reactor_wait_stall_us",
    "qsdnn_reactor_ready_events",
    "qsdnn_reactor_loop_us",
    "qsdnn_outbox_high_water_bytes",
    "qsdnn_pool_queue_depth",
    "qsdnn_pool_busy_workers",
    "qsdnn_uptime_ms",
    "qsdnn_requests_total",
    "qsdnn_plans_total",
    "qsdnn_index_entries",
    "qsdnn_cache_entries",
    "qsdnn_cache_requests_total",
    "qsdnn_cache_evictions_total",
];

fn config() -> ServerConfig {
    ServerConfig {
        threads: 2,
        max_in_flight: 8,
        ..ServerConfig::default()
    }
}

fn plan_request(network: &str, episodes: usize, trace: bool) -> PlanRequest {
    PlanRequest {
        network: network.to_string(),
        batch: 1,
        mode: Mode::Gpgpu,
        objective: Objective::Latency,
        episodes,
        seeds: vec![0x5EED],
        transfer: TransferMode::Off,
        trace,
        platform: String::new(),
    }
}

/// Drives `clients` concurrent connections, each pipelining `per_client`
/// plan requests, and returns the total number of plan requests sent.
fn drive_load(addr: std::net::SocketAddr, clients: usize, per_client: usize) -> usize {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                let reqs: Vec<PlanRequest> = (0..per_client)
                    .map(|i| {
                        let net = ["tiny_cnn", "toy_branchy"][(c + i) % 2];
                        plan_request(net, 120 + (c + i) % 3, false)
                    })
                    .collect();
                let plans = client.plan_many(&reqs).expect("pipelined batch");
                assert_eq!(plans.len(), per_client);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("load thread");
    }
    clients * per_client
}

fn quantiles_ordered(h: &HistogramMsg, context: &str) {
    assert!(
        h.p50_us <= h.p90_us && h.p90_us <= h.p99_us && h.p99_us <= h.p999_us,
        "{context}: quantiles out of order: p50={} p90={} p99={} p999={}",
        h.p50_us,
        h.p90_us,
        h.p99_us,
        h.p999_us
    );
}

fn histogram<'a>(metrics: &'a MetricsResponse, family: &str, label: &str) -> &'a HistogramMsg {
    let sample = metrics
        .family(family)
        .unwrap_or_else(|| panic!("family {family} missing"))
        .samples
        .iter()
        .find(|s| s.labels.iter().any(|(_, v)| v == label))
        .unwrap_or_else(|| panic!("{family} has no sample labeled {label}"));
    match &sample.value {
        MetricValue::Histogram(h) => h,
        other => panic!("{family}{{{label}}} is not a histogram: {other:?}"),
    }
}

#[test]
fn metrics_request_reports_stage_histograms_under_pipelined_load() {
    let server = PlanServer::start(config()).expect("start server");
    let sent = drive_load(server.local_addr(), 4, 6);

    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let metrics = client.metrics().expect("metrics request");
    assert!(metrics.uptime_ms >= 1, "uptime must be monotonic and >= 1");
    for family in SERVE_FAMILIES {
        assert!(
            metrics.family(family).is_some(),
            "family {family} missing from the metrics response"
        );
    }
    // The load above ran cold searches, so the global engine/core
    // families must be registered by now too.
    for family in [
        "qsdnn_search_episodes_total",
        "qsdnn_portfolio_member_us",
        "qsdnn_profile_us",
    ] {
        assert!(
            metrics.family(family).is_some(),
            "global family {family} missing from the metrics response"
        );
    }

    // Every pipelined plan request was observed end to end.
    let plan_us = histogram(&metrics, "qsdnn_request_us", "plan");
    assert_eq!(plan_us.count as usize, sent, "one observation per plan");
    quantiles_ordered(plan_us, "qsdnn_request_us{kind=plan}");

    // Each pipeline stage saw traffic, with internally consistent
    // quantiles, and the wire form reconstructs into a snapshot that
    // re-derives the same quantiles (the mergeability contract).
    for stage in ["parse", "queue", "search", "cache", "serialize", "write"] {
        let h = histogram(&metrics, "qsdnn_request_stage_us", stage);
        assert!(h.count > 0, "stage {stage} never recorded");
        quantiles_ordered(h, stage);
        let snap = h.to_snapshot();
        assert_eq!(snap.count(), h.count, "stage {stage} roundtrip count");
        assert_eq!(snap.sum(), h.sum_us, "stage {stage} roundtrip sum");
        assert_eq!(snap.p50(), h.p50_us, "stage {stage} roundtrip p50");
        assert_eq!(snap.p99(), h.p99_us, "stage {stage} roundtrip p99");
    }

    // Synthesized counters agree with what the load sent.
    let requests = metrics
        .family("qsdnn_requests_total")
        .expect("requests family");
    match &requests.samples[0].value {
        MetricValue::Counter(n) => assert!(
            *n as usize >= sent,
            "{n} requests counted, at least {sent} sent"
        ),
        other => panic!("qsdnn_requests_total is not a counter: {other:?}"),
    }

    server.shutdown();
}

/// One parsed exposition sample: base series name, rendered label set,
/// numeric value.
struct PromSample {
    name: String,
    labels: String,
    value: f64,
}

/// A deliberately small Prometheus text-format parser: `# HELP`/`# TYPE`
/// headers plus `name{labels} value` samples. Returns the `HELP` table,
/// the `TYPE` table, and every sample; panics (failing the test) on any
/// malformed line.
#[allow(clippy::type_complexity)]
fn parse_exposition(
    body: &str,
) -> (
    Vec<(String, String)>,
    Vec<(String, String)>,
    Vec<PromSample>,
) {
    let mut helps = Vec::new();
    let mut types = Vec::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE name").to_string();
            let kind = parts.next().expect("TYPE kind").to_string();
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                "unknown TYPE {kind} for {name}"
            );
            types.push((name, kind));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("HELP line without text: {line}"));
            assert!(
                !help.trim().is_empty(),
                "family {name} has an empty HELP text"
            );
            helps.push((name.to_string(), help.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line: {line}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without a value: {line}");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unterminated labels in: {line}"));
                (name.to_string(), labels.to_string())
            }
            None => (series.to_string(), String::new()),
        };
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    (helps, types, samples)
}

#[test]
fn prometheus_endpoint_serves_parseable_exposition_mid_load() {
    let server = PlanServer::start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..config()
    })
    .expect("start server");
    let scrape_addr = server.metrics_addr().expect("exposition bound");

    // Scrape while load is in flight — the snapshot must be coherent
    // regardless of what the request pipeline is doing.
    let addr = server.local_addr();
    let load = std::thread::spawn(move || drive_load(addr, 3, 5));
    let scrape = |path: &str| -> String {
        let mut conn = TcpStream::connect(scrape_addr).expect("scrape connect");
        write!(
            conn,
            "GET {path} HTTP/1.1\r\nHost: qsdnn\r\nConnection: close\r\n\r\n"
        )
        .expect("scrape request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("scrape response");
        response
    };
    let mid_load = scrape("/metrics");
    assert!(mid_load.starts_with("HTTP/1.1 200 OK\r\n"), "{mid_load}");
    load.join().expect("load thread");

    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "wrong content type: {head}"
    );

    let (helps, types, samples) = parse_exposition(body);
    for family in SERVE_FAMILIES {
        assert!(
            types.iter().any(|(n, _)| n == family),
            "family {family} missing a TYPE header"
        );
    }
    // Every declared family carries both headers, with non-empty HELP
    // text (the parser rejects empty HELP lines outright).
    for (name, _) in &types {
        assert!(
            helps.iter().any(|(n, _)| n == name),
            "family {name} has a TYPE header but no HELP header"
        );
    }
    for (name, _) in &helps {
        assert!(
            types.iter().any(|(n, _)| n == name),
            "family {name} has a HELP header but no TYPE header"
        );
    }

    // Build metadata rides as labels on a constant-1 gauge.
    let build = samples
        .iter()
        .find(|s| s.name == "qsdnn_build_info")
        .expect("qsdnn_build_info sample");
    assert_eq!(build.value, 1.0, "build info gauge must be constant 1");
    assert!(
        build.labels.contains("version=\""),
        "build info missing version label: {}",
        build.labels
    );
    assert!(
        build.labels.contains("git_hash=\""),
        "build info missing git_hash label: {}",
        build.labels
    );
    // Every sample's base series maps back to a declared family
    // (histograms expand to _bucket/_sum/_count).
    for s in &samples {
        let base = s
            .name
            .strip_suffix("_bucket")
            .or_else(|| s.name.strip_suffix("_sum"))
            .or_else(|| s.name.strip_suffix("_count"))
            .filter(|base| types.iter().any(|(n, k)| n == base && k == "histogram"))
            .unwrap_or(&s.name);
        assert!(
            types.iter().any(|(n, _)| n == base),
            "sample {} has no TYPE header",
            s.name
        );
    }

    // Histogram buckets must be cumulative: non-decreasing in `le` order
    // and capped by the series' +Inf bucket, which equals its _count.
    let stage_buckets: Vec<&PromSample> = samples
        .iter()
        .filter(|s| s.name == "qsdnn_request_stage_us_bucket")
        .collect();
    assert!(!stage_buckets.is_empty(), "no stage buckets exported");
    let series: std::collections::BTreeSet<String> = stage_buckets
        .iter()
        .map(|s| {
            s.labels
                .split(',')
                .filter(|l| !l.starts_with("le="))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    for key in &series {
        let mut last = -1.0;
        let mut inf = None;
        for s in &stage_buckets {
            let rest: Vec<&str> = s
                .labels
                .split(',')
                .filter(|l| !l.starts_with("le="))
                .collect();
            if rest.join(",") != *key {
                continue;
            }
            let le = s
                .labels
                .split(',')
                .find_map(|l| l.strip_prefix("le=\""))
                .and_then(|v| v.strip_suffix('"'))
                .expect("le label");
            assert!(
                s.value >= last,
                "{key}: bucket counts not cumulative at le={le}"
            );
            last = s.value;
            if le == "+Inf" {
                inf = Some(s.value);
            }
        }
        let inf = inf.unwrap_or_else(|| panic!("{key}: no +Inf bucket"));
        let count = samples
            .iter()
            .find(|s| s.name == "qsdnn_request_stage_us_count" && s.labels == *key)
            .unwrap_or_else(|| panic!("{key}: no _count sample"));
        assert_eq!(inf, count.value, "{key}: +Inf bucket != _count");
    }

    // Wrong paths and methods answer with errors, not metrics.
    assert!(scrape("/nope").starts_with("HTTP/1.1 404"));

    server.shutdown();
}

#[test]
fn tracing_echoes_a_span_without_changing_plan_bits() {
    let server = PlanServer::start(config()).expect("start server");
    let addr = server.local_addr();

    let mut plain = PlanClient::connect(addr).expect("connect");
    let mut traced = PlanClient::connect(addr).expect("connect");
    let cold = plain
        .plan(plan_request("tiny_cnn", 140, false))
        .expect("cold plan");
    assert!(!cold.cache_hit);
    assert!(cold.trace.is_none(), "untraced requests carry no trace");

    let hit = traced
        .plan(plan_request("tiny_cnn", 140, true))
        .expect("traced repeat");
    assert!(hit.cache_hit, "same scenario must be cache-served");
    let trace = hit.trace.as_ref().expect("trace echoed on request");
    assert!(trace.total_ms > 0.0);
    assert!(!trace.stages.is_empty(), "at least one stage timed");
    for s in &trace.stages {
        assert!(
            ["parse", "queue", "profile", "cache", "search"].contains(&s.stage.as_str()),
            "unexpected echoed stage {}",
            s.stage
        );
    }

    // The plan content itself is bit-identical: tracing only adds the
    // side-channel `trace` field.
    assert_eq!(cold.plan_key, hit.plan_key);
    assert_eq!(cold.best, hit.best);
    assert_eq!(cold.winner, hit.winner);
    assert_eq!(cold.members, hit.members);
    assert_eq!(cold.vanilla_cost_ms, hit.vanilla_cost_ms);

    server.shutdown();
}

#[test]
fn slow_requests_land_in_the_log_with_a_stage_breakdown() {
    use std::sync::mpsc;
    let (tx, rx) = mpsc::channel::<String>();
    qsdnn_obs::log::capture_to(move |line| {
        let _ = tx.send(line.to_string());
    });
    // Threshold 1 ms: every cold search is "slow".
    let server = PlanServer::start(ServerConfig {
        slow_ms: 1,
        ..config()
    })
    .expect("start server");
    let mut client = PlanClient::connect(server.local_addr()).expect("connect");
    let plan = client
        .plan(plan_request("toy_branchy", 160, false))
        .expect("plan");
    assert!(!plan.cache_hit);

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut slow_line = None;
    while std::time::Instant::now() < deadline {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(line) if line.contains("\"event\":\"slow_request\"") => {
                slow_line = Some(line);
                break;
            }
            _ => {}
        }
    }
    qsdnn_obs::log::capture_to_stderr();
    let line = slow_line.expect("a slow_request event for the cold plan");
    assert!(line.contains("\"kind\":\"plan\""), "line: {line}");
    assert!(line.contains("\"total_ms\":"), "line: {line}");
    assert!(line.contains("\"search\":"), "line: {line}");

    let metrics = client.metrics().expect("metrics");
    match &metrics
        .family("qsdnn_slow_requests_total")
        .expect("slow counter family")
        .samples[0]
        .value
    {
        MetricValue::Counter(n) => assert!(*n >= 1, "slow counter never ticked"),
        other => panic!("not a counter: {other:?}"),
    }

    server.shutdown();
}

/// A scraper whose request head dribbles in across multiple packets —
/// with a stall longer than any single read tick — must still get the
/// full exposition. The listener historically treated the first read
/// timeout as end-of-head, so a mid-head pause truncated the request
/// line and turned `GET /metrics` into a 404 for `GET /met`. The head
/// read now resumes across stalls up to an overall deadline; a scraper
/// that never finishes its head inside that deadline is answered 408
/// instead of holding the single-threaded listener forever.
#[test]
fn dribbling_scraper_still_gets_a_complete_exposition() {
    let server = PlanServer::start(ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..config()
    })
    .expect("start server");
    let scrape_addr = server.metrics_addr().expect("exposition bound");

    // Dribble: request line split mid-path, with the stall sized to
    // outlast the per-read tick many times over (and the pre-fix 2s
    // single-shot timeout) while staying inside the head deadline.
    let mut conn = TcpStream::connect(scrape_addr).expect("scrape connect");
    conn.write_all(b"GET /met").expect("first chunk");
    conn.flush().expect("flush first chunk");
    std::thread::sleep(Duration::from_millis(2300));
    conn.write_all(b"rics HTTP/1.1\r\nHost: qsdnn\r\nConnection: close\r\n\r\n")
        .expect("second chunk");
    conn.flush().expect("flush second chunk");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("scrape response");
    assert!(
        response.starts_with("HTTP/1.1 200 OK\r\n"),
        "dribbled head was not reassembled: {response}"
    );
    assert!(
        response.contains("qsdnn_build_info"),
        "dribbled scrape missing exposition body: {response}"
    );

    // A scraper that stalls forever mid-head is bounded by the deadline
    // and told why, rather than silently misparsed or held open.
    let mut stalled = TcpStream::connect(scrape_addr).expect("stalled connect");
    stalled
        .write_all(b"GET /metrics HTTP/1.1\r\n")
        .expect("partial head");
    stalled.flush().expect("flush partial head");
    let mut response = String::new();
    stalled
        .read_to_string(&mut response)
        .expect("stalled response");
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "stalled head should time out with 408: {response}"
    );

    server.shutdown();
}
