//! Regression for the acceptor hot-loop: a transient `accept()` failure
//! (here, fd exhaustion via `setrlimit(RLIMIT_NOFILE)`) used to make the
//! threaded acceptor spin — `listener.incoming()` yields the same error
//! instantly, and the loop `continue`d at 100% CPU. Both connection
//! layers must now count the failure in `accept_errors`, back off
//! exponentially, and recover once fds free up.
//!
//! This file holds a single test: it manipulates the *process-wide* fd
//! limit, which would race any parallel test in the same binary. Each
//! integration-test file is its own binary, so isolation is structural.

#![cfg(target_os = "linux")]

use std::net::TcpStream;
use std::time::{Duration, Instant};

use qsdnn_serve::{IoModel, PlanClient, PlanServer, ServerConfig};

mod rlimit {
    use std::os::raw::c_int;

    const RLIMIT_NOFILE: c_int = 7;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }

    /// Lowers the soft `RLIMIT_NOFILE` for the whole process and restores
    /// the original on drop, so a panicking test cannot leak a crippled
    /// limit into the harness.
    pub struct SoftLimitGuard {
        original: u64,
    }

    impl SoftLimitGuard {
        pub fn lower_to(soft: u64) -> SoftLimitGuard {
            let mut lim = Rlimit { cur: 0, max: 0 };
            // SAFETY: `lim` is a live, writable `#[repr(C)]` Rlimit
            // matching the kernel's struct rlimit (two u64s on Linux).
            assert_eq!(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) }, 0);
            let original = lim.cur;
            lim.cur = soft.min(lim.max);
            // SAFETY: `lim` is a valid Rlimit passed read-only; lowering
            // the soft limit never exceeds the hard limit.
            assert_eq!(unsafe { setrlimit(RLIMIT_NOFILE, &lim) }, 0);
            SoftLimitGuard { original }
        }
    }

    impl Drop for SoftLimitGuard {
        fn drop(&mut self) {
            let mut lim = Rlimit { cur: 0, max: 0 };
            // SAFETY: `lim` is a live, writable `#[repr(C)]` Rlimit
            // matching the kernel's struct rlimit layout.
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
                lim.cur = self.original.min(lim.max);
                // SAFETY: `lim` is a valid Rlimit passed read-only;
                // restoring the saved soft limit stays within the hard cap.
                unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
            }
        }
    }
}

/// Highest open fd number right now. `RLIMIT_NOFILE` bounds fd *numbers*
/// (one past the highest allocatable), not the open count — and new fds
/// fill the lowest free slot — so exhaustion must be engineered by
/// plugging every hole, not by counting.
fn highest_fd() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .expect("procfs")
        .filter_map(|e| e.ok()?.file_name().to_str()?.parse().ok())
        .max()
        .unwrap_or(0)
}

fn exercise(io: IoModel) {
    let server = PlanServer::start(ServerConfig {
        io,
        ..ServerConfig::default()
    })
    .expect("start server");
    let addr = server.local_addr();

    // Connected *before* the squeeze: our observation channel needs no new
    // fds for requests, only for connections.
    let mut observer = PlanClient::connect(addr).expect("observer connects");
    observer
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let baseline = observer.stats().expect("stats").accept_errors;

    // Squeeze: cap the fd space a little above the highest fd in use,
    // plug every remaining slot (holes included) with dummies, then free
    // exactly one. The client's socket() takes that slot, the kernel
    // completes the handshake via the listen backlog, and the server-side
    // accept() hits EMFILE.
    //
    // One subtlety makes this a retry loop rather than a single shot: in
    // a multithreaded process some other thread can hold an fd
    // transiently (and invisibly) across the fill and release it later —
    // the acceptor then wins that freed slot, the accept *succeeds*, and
    // the pending connection is consumed without ever erroring. Each
    // attempt therefore keeps plugging freshly freed slots while it
    // polls, and a consumed-hostage attempt is simply retried from a
    // clean slate.
    let mut errored = false;
    'attempts: for _ in 0..6 {
        let _guard = rlimit::SoftLimitGuard::lower_to(highest_fd() + 16);
        let mut dummies = Vec::new();
        while let Ok(f) = std::fs::File::open("/dev/null") {
            dummies.push(f);
        }
        assert!(dummies.pop().is_some(), "no fd slot to free for the client");
        let Ok(_hostage) = TcpStream::connect(addr) else {
            // A gremlin beat us to the freed slot; next attempt.
            continue;
        };
        let deadline = Instant::now() + Duration::from_secs(3);
        while Instant::now() < deadline && !errored {
            std::thread::sleep(Duration::from_millis(20));
            // Plug any transiently freed slot before the acceptor can
            // claim it for the hostage.
            if let Ok(f) = std::fs::File::open("/dev/null") {
                dummies.push(f);
            }
            errored = observer.stats().expect("stats").accept_errors > baseline;
        }
        if !errored {
            continue; // hostage consumed by a gremlin race; retry
        }

        // Back-off, not a hot loop: while the fd squeeze persists, a
        // spinning acceptor would rack up tens of thousands of errors in
        // 400 ms; exponential back-off stays in single digits.
        let before = observer.stats().expect("stats").accept_errors;
        std::thread::sleep(Duration::from_millis(400));
        let after = observer.stats().expect("stats").accept_errors;
        assert!(
            after - before <= 40,
            "{io}: {} accept errors in 400ms — the acceptor is spinning",
            after - before
        );
        break 'attempts;
    }
    assert!(
        errored,
        "{io}: fd exhaustion never surfaced as accept_errors"
    );

    // Recovery: the squeeze is released (guard + dummies dropped at the
    // end of the successful attempt) and the server accepts again.
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered = loop {
        match PlanClient::connect(addr) {
            Ok(mut fresh) => {
                fresh.stats().expect("stats on a fresh connection");
                break true;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => break false,
        }
    };
    assert!(recovered, "{io}: server never recovered from fd exhaustion");
    server.shutdown();
}

#[test]
fn accept_errors_back_off_and_recover_on_both_io_layers() {
    // Sequential on purpose: both runs manipulate the same process-wide
    // rlimit.
    exercise(IoModel::Threads);
    exercise(IoModel::Epoll);
}
