//! Stamps the build with the git revision for `qsdnn_build_info`.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=QSDNN_GIT_HASH={hash}");
    // The hash only needs to be fresh per build, not per commit; tracking
    // .git/HEAD would force rebuilds on every branch switch.
    println!("cargo:rerun-if-changed=build.rs");
}
