//! Search outcome records: best implementation found, learning curve,
//! time-to-solution.

use serde::{Deserialize, Serialize};

use qsdnn_engine::Assignment;

/// One episode of a search: the ε used, the cost of the sampled
/// implementation, and the best cost seen so far (the Fig. 4 / Fig. 5
/// series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Episode index (0-based).
    pub episode: usize,
    /// Exploration rate used for this episode.
    pub epsilon: f64,
    /// Network latency of the episode's sampled implementation (ms).
    pub cost_ms: f64,
    /// Best latency seen up to and including this episode (ms).
    pub best_so_far_ms: f64,
}

/// Full result of one search run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchReport {
    /// Search method name (`"qs-dnn"`, `"random"`, …).
    pub method: String,
    /// Network the LUT was profiled from.
    pub network: String,
    /// Best assignment found (candidate index per layer).
    pub best_assignment: Assignment,
    /// Latency of the best assignment (ms).
    pub best_cost_ms: f64,
    /// Episodes executed.
    pub episodes: usize,
    /// Per-episode learning curve.
    pub curve: Vec<EpisodeRecord>,
    /// Wall-clock search duration (ms) — the paper's "time to solution".
    pub wall_time_ms: f64,
}

impl SearchReport {
    /// Best-so-far latency after `episodes` episodes (for budgeted
    /// comparisons like Fig. 5); falls back to the final best.
    pub fn best_after(&self, episodes: usize) -> f64 {
        if episodes == 0 {
            return f64::INFINITY;
        }
        // `checked_sub` guards the empty-curve case (e.g. chain-DP reports),
        // which would otherwise underflow and panic in debug builds.
        match episodes.min(self.curve.len()).checked_sub(1) {
            Some(last) => self.curve[last].best_so_far_ms,
            None => self.best_cost_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SearchReport {
        SearchReport {
            method: "test".into(),
            network: "net".into(),
            best_assignment: vec![0, 1],
            best_cost_ms: 1.0,
            episodes: 3,
            curve: vec![
                EpisodeRecord {
                    episode: 0,
                    epsilon: 1.0,
                    cost_ms: 5.0,
                    best_so_far_ms: 5.0,
                },
                EpisodeRecord {
                    episode: 1,
                    epsilon: 1.0,
                    cost_ms: 2.0,
                    best_so_far_ms: 2.0,
                },
                EpisodeRecord {
                    episode: 2,
                    epsilon: 0.5,
                    cost_ms: 3.0,
                    best_so_far_ms: 2.0,
                },
            ],
            wall_time_ms: 0.1,
        }
    }

    #[test]
    fn best_after_walks_the_curve() {
        let r = report();
        assert_eq!(r.best_after(1), 5.0);
        assert_eq!(r.best_after(2), 2.0);
        assert_eq!(r.best_after(3), 2.0);
        assert_eq!(r.best_after(100), 2.0);
        assert!(r.best_after(0).is_infinite());
    }

    #[test]
    fn serde_roundtrip() {
        let r = report();
        let json = serde_json::to_string(&r).expect("serializes");
        let back: SearchReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(r, back);
    }
}
