//! ε-greedy exploration schedules.
//!
//! The paper's schedule (§V.B, Fig. 4): 50% of the episode budget at ε = 1
//! (full exploration), 5% at each ε ∈ {0.9, 0.8, …, 0.1}, and the remaining
//! ~5% at ε = 0 (full exploitation).

use serde::{Deserialize, Serialize};

/// Piecewise-constant ε schedule: a list of `(ε, episode count)` segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    segments: Vec<(f64, usize)>,
}

impl EpsilonSchedule {
    /// The paper's schedule for a total episode budget.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn paper(total: usize) -> Self {
        assert!(total > 0, "schedule needs at least one episode");
        let explore = total / 2;
        let step = total * 5 / 100;
        let mut segments = vec![(1.0, explore)];
        let mut used = explore;
        for i in 1..=9 {
            let eps = 1.0 - i as f64 * 0.1;
            segments.push((eps, step));
            used += step;
        }
        segments.push((0.0, total.saturating_sub(used)));
        EpsilonSchedule { segments }
    }

    /// Constant ε for every episode (ablation).
    pub fn constant(eps: f64, total: usize) -> Self {
        EpsilonSchedule {
            segments: vec![(eps, total)],
        }
    }

    /// Linear decay from 1.0 to 0.0 over the budget, quantized to at most
    /// 20 steps (ablation). The final segment always pins ε = 0 and
    /// absorbs the rounding remainder, so every budget — including
    /// `total < 20`, which gets one step per episode — ends in full
    /// exploitation.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn linear(total: usize) -> Self {
        assert!(total > 0, "schedule needs at least one episode");
        let steps = 20usize.min(total);
        let per = total / steps;
        let mut segments = Vec::with_capacity(steps);
        let mut used = 0;
        for i in 0..steps {
            let eps = if steps == 1 {
                0.0
            } else {
                1.0 - i as f64 / (steps - 1) as f64
            };
            let count = if i == steps - 1 { total - used } else { per };
            segments.push((eps, count));
            used += count;
        }
        EpsilonSchedule { segments }
    }

    /// Shortened schedule for *warm-started* (transfer-seeded) searches.
    ///
    /// A seeded Q-table already encodes a near-policy, so the paper
    /// schedule's long ε = 1 exploration half would mostly re-learn what
    /// the donor knew. The warm schedule keeps a quarter of the cold
    /// budget and explores moderately around the seeded policy: 0.5 →
    /// 0.25 → 0.1 → 0, ending (like every schedule here) in full
    /// exploitation.
    ///
    /// # Panics
    ///
    /// Panics if `cold_total` is zero.
    pub fn warm(cold_total: usize) -> Self {
        assert!(cold_total > 0, "schedule needs at least one episode");
        let total = (cold_total / 4).max(1);
        let step = total / 4;
        EpsilonSchedule {
            segments: vec![
                (0.5, step),
                (0.25, step),
                (0.1, step),
                (0.0, total - 3 * step),
            ],
        }
    }

    /// Custom segments.
    pub fn from_segments(segments: Vec<(f64, usize)>) -> Self {
        EpsilonSchedule { segments }
    }

    /// ε for a given episode index (clamped to the last segment).
    pub fn epsilon_for(&self, episode: usize) -> f64 {
        let mut acc = 0usize;
        for &(eps, n) in &self.segments {
            acc += n;
            if episode < acc {
                return eps;
            }
        }
        self.segments.last().map(|&(e, _)| e).unwrap_or(0.0)
    }

    /// Total number of episodes covered by the schedule.
    pub fn total_episodes(&self) -> usize {
        self.segments.iter().map(|&(_, n)| n).sum()
    }

    /// The segments `(ε, episode count)`.
    pub fn segments(&self) -> &[(f64, usize)] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_schedule_for_1000_matches_fig4() {
        let s = EpsilonSchedule::paper(1000);
        assert_eq!(s.total_episodes(), 1000);
        assert_eq!(s.epsilon_for(0), 1.0);
        assert_eq!(s.epsilon_for(499), 1.0);
        // After 500, ε drops by 0.1 every 50 episodes.
        assert!((s.epsilon_for(500) - 0.9).abs() < 1e-12);
        assert!((s.epsilon_for(549) - 0.9).abs() < 1e-12);
        assert!((s.epsilon_for(550) - 0.8).abs() < 1e-12);
        assert!((s.epsilon_for(949) - 0.1).abs() < 1e-12);
        assert_eq!(s.epsilon_for(950), 0.0);
        assert_eq!(s.epsilon_for(999), 0.0);
    }

    #[test]
    fn paper_schedule_covers_odd_budgets() {
        for total in [1, 7, 25, 350, 999] {
            let s = EpsilonSchedule::paper(total);
            assert_eq!(s.total_episodes(), total, "budget {total}");
        }
    }

    #[test]
    fn epsilon_clamps_past_the_end() {
        let s = EpsilonSchedule::paper(100);
        assert_eq!(s.epsilon_for(10_000), 0.0);
    }

    #[test]
    fn constant_schedule() {
        let s = EpsilonSchedule::constant(0.3, 10);
        assert_eq!(s.epsilon_for(0), 0.3);
        assert_eq!(s.epsilon_for(9), 0.3);
        assert_eq!(s.total_episodes(), 10);
    }

    #[test]
    fn linear_schedule_decays() {
        let s = EpsilonSchedule::linear(200);
        assert_eq!(s.total_episodes(), 200);
        assert!(s.epsilon_for(0) > s.epsilon_for(100));
        assert!(s.epsilon_for(100) > s.epsilon_for(199));
    }

    /// Regression: `linear(total)` for `total < 20` used to break out of
    /// the segment loop before reaching the ε = 0 step — `linear(15)`
    /// ended at ε ≈ 0.26 and never exploited greedily.
    #[test]
    fn linear_small_budgets_reach_zero_epsilon() {
        for total in [1, 2, 3, 7, 15, 19] {
            let s = EpsilonSchedule::linear(total);
            assert_eq!(s.total_episodes(), total, "budget {total}");
            assert_eq!(
                s.epsilon_for(total - 1),
                0.0,
                "budget {total} must end fully greedy"
            );
        }
        // The exact shape that motivated the fix.
        let s = EpsilonSchedule::linear(15);
        assert_eq!(s.segments().len(), 15);
        assert_eq!(s.segments().last().unwrap().0, 0.0);
    }

    #[test]
    fn warm_schedule_is_shorter_and_ends_greedy() {
        for cold in [2usize, 7, 40, 100, 1000] {
            let s = EpsilonSchedule::warm(cold);
            assert!(
                s.total_episodes() < cold,
                "warm({cold}) = {} episodes must undercut the cold budget",
                s.total_episodes()
            );
            assert_eq!(s.epsilon_for(s.total_episodes() - 1), 0.0);
            assert!(s.epsilon_for(0) <= 0.5, "no full-exploration phase");
        }
        // The degenerate budget still yields a valid one-episode schedule.
        assert_eq!(EpsilonSchedule::warm(1).total_episodes(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        fn linear_sums_to_budget_and_ends_at_zero(total in 1usize..2500) {
            let s = EpsilonSchedule::linear(total);
            prop_assert_eq!(s.total_episodes(), total, "sums to the budget");
            let segments = s.segments();
            let (last_eps, last_count) = *segments.last().unwrap();
            prop_assert_eq!(last_eps, 0.0, "final segment pins eps = 0");
            prop_assert!(last_count >= 1, "final segment is never empty");
            prop_assert_eq!(s.epsilon_for(total - 1), 0.0);
            prop_assert_eq!(segments[0].0, if total == 1 { 0.0 } else { 1.0 });
            for w in segments.windows(2) {
                prop_assert!(w[1].0 < w[0].0, "eps strictly decays: {segments:?}");
            }
        }
    }
}
