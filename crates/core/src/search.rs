//! The QS-DNN Q-learning search (paper §IV–V, Algorithm 1).
//!
//! The agent walks the network layer by layer. At layer *l* with the
//! previous layer running candidate `prev`, it ε-greedily picks a candidate
//! `a`; the environment (the Phase-1 [`CostLut`]) returns the *negated*
//! step cost — layer time plus incompatibility penalties on all resolved
//! in-edges (reward shaping, §IV.C). The action-value function is updated
//! with the Bellman rule (paper eq. 2)
//!
//! ```text
//! Q(s,a) ← Q(s,a)·(1−α) + α·[ r + γ·max_a' Q(s',a') ]
//! ```
//!
//! online at every step and again from a 128-transition experience-replay
//! buffer after each episode.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use qsdnn_engine::CostLut;

use crate::{
    EpisodeRecord, EpsilonSchedule, QTable, ReplayBuffer, SearchReport, TransferMapping, Transition,
};

/// Hyper-parameters of the QS-DNN search. `Default` reproduces the paper:
/// 1000 episodes with the 50%/5%-steps schedule, α = 0.05, γ = 0.9, replay
/// buffer 128, reward shaping on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QsDnnConfig {
    /// ε-greedy schedule (also fixes the episode budget).
    pub schedule: EpsilonSchedule,
    /// Learning rate α.
    pub alpha: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Experience-replay buffer capacity (0 disables replay).
    pub replay_capacity: usize,
    /// Whether to run a replay pass after each episode.
    pub replay: bool,
    /// Per-layer negated-time rewards (paper) vs a single terminal reward
    /// equal to the negated network latency (ablation).
    pub reward_shaping: bool,
    /// Per-pair decaying learning rate `α_n = max(α, 1/n)` (Watkins'
    /// schedule) instead of the paper's constant α. Off by default: the
    /// ablation bench shows locking in early long-horizon targets *hurts*
    /// on heterogeneous design spaces (GPU/CPU spreads of ~50×), because
    /// overestimates from empty successors persist under the max operator.
    pub jumpstart: bool,
    /// Warm-start mode: when enabled *and* [`QsDnnSearch::run_warm`] is
    /// handed a donor table with a non-empty transfer mapping, the search
    /// seeds its Q-table from the donor and runs the shortened
    /// [`EpsilonSchedule::warm`] instead of the full cold schedule. Off by
    /// default; with no donor (or an empty mapping) the search is exactly
    /// the cold search.
    #[serde(default)]
    pub warm_start: bool,
    /// RNG seed (exploration).
    pub seed: u64,
}

impl Default for QsDnnConfig {
    fn default() -> Self {
        QsDnnConfig {
            schedule: EpsilonSchedule::paper(1000),
            alpha: 0.05,
            gamma: 0.9,
            replay_capacity: 128,
            replay: true,
            reward_shaping: true,
            jumpstart: false,
            warm_start: false,
            seed: 0x5EED,
        }
    }
}

impl QsDnnConfig {
    /// Paper configuration with a custom episode budget.
    pub fn with_episodes(episodes: usize) -> Self {
        QsDnnConfig {
            schedule: EpsilonSchedule::paper(episodes),
            ..QsDnnConfig::default()
        }
    }

    /// Returns a copy with a different seed (for repeated experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The QS-DNN search engine.
///
/// # Examples
///
/// ```
/// use qsdnn::{QsDnnConfig, QsDnnSearch};
/// use qsdnn_engine::toy;
///
/// let lut = toy::fig1_lut();
/// let report = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);
/// // The agent avoids the greedy local minimum (cost 3.3) and finds the
/// // global optimum (2.9).
/// assert!((report.best_cost_ms - 2.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct QsDnnSearch {
    config: QsDnnConfig,
}

impl QsDnnSearch {
    /// Search with the given configuration.
    pub fn new(config: QsDnnConfig) -> Self {
        QsDnnSearch { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &QsDnnConfig {
        &self.config
    }

    fn q_update(&self, q: &mut QTable, t: &Transition) {
        let future = if t.terminal {
            0.0
        } else {
            self.config.gamma * q.best(t.layer + 1, t.action).1
        };
        let target = t.reward + future;
        let alpha = if self.config.jumpstart {
            let n = q.visits(t.layer, t.prev, t.action) as f64;
            self.config.alpha.max(1.0 / (n + 1.0))
        } else {
            self.config.alpha
        };
        let old = q.get(t.layer, t.prev, t.action);
        q.set(
            t.layer,
            t.prev,
            t.action,
            old * (1.0 - alpha) + alpha * target,
        );
    }

    /// Runs the search against a Phase-1 LUT (Algorithm 1).
    pub fn run(&self, lut: &CostLut) -> SearchReport {
        self.run_from(lut, QTable::new(lut), &self.config.schedule, false)
    }

    /// Warm-started run: seeds a fresh Q-table from `donor` via `mapping`
    /// ([`QTable::transfer_from`]) and searches with the shortened
    /// [`EpsilonSchedule::warm`] schedule. Falls back to the exact cold
    /// [`QsDnnSearch::run`] whenever warm-start is disabled in the config,
    /// the mapping is empty, or nothing actually transfers — a mismatched
    /// donor can cost nothing, only fail to help.
    pub fn run_warm(
        &self,
        lut: &CostLut,
        donor: &QTable,
        mapping: &TransferMapping,
    ) -> SearchReport {
        if !self.config.warm_start || mapping.is_empty() {
            return self.run(lut);
        }
        let mut q = QTable::new(lut);
        if q.transfer_from(donor, mapping) == 0 {
            return self.run(lut);
        }
        let schedule = EpsilonSchedule::warm(self.config.schedule.total_episodes());
        self.run_from(lut, q, &schedule, true)
    }

    /// The shared episode loop. With `seeded` the initial best is the
    /// seeded table's greedy rollout (the mapped donor policy), so even a
    /// zero-episode-improvement warm run returns a valid, donor-informed
    /// plan; cold runs start from an empty best exactly as before.
    fn run_from(
        &self,
        lut: &CostLut,
        mut q: QTable,
        schedule: &EpsilonSchedule,
        seeded: bool,
    ) -> SearchReport {
        let start = Instant::now();
        let total = schedule.total_episodes();
        let layers = lut.len();
        let mut replay = ReplayBuffer::new(self.config.replay_capacity.max(1));
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        let mut best_cost = f64::INFINITY;
        let mut best_assign: Vec<usize> = Vec::new();
        if seeded {
            let rollout = q.greedy_rollout();
            best_cost = lut.cost(&rollout);
            best_assign = rollout;
        }
        let mut curve = Vec::with_capacity(total);
        // ε-greedy policy-arm tallies; plain locals in the hot loop, folded
        // into the global observability registry once per run.
        let mut explored = 0u64;
        let mut exploited = 0u64;

        for episode in 0..total {
            let eps = schedule.epsilon_for(episode);
            // Reset path; sample layer by layer.
            let mut assign: Vec<usize> = Vec::with_capacity(layers);
            let mut transitions: Vec<Transition> = Vec::with_capacity(layers);
            let mut prev = 0usize;
            let mut episode_cost = 0.0;
            for l in 0..layers {
                let n = lut.candidates(l).len();
                let a = if rng.gen::<f64>() < eps {
                    explored += 1;
                    rng.gen_range(0..n)
                } else {
                    exploited += 1;
                    q.best(l, prev).0
                };
                // Check for incompatibility & compute inference time of the
                // step (layer time + penalties on resolved in-edges).
                let step = lut.step_cost(l, a, &assign);
                episode_cost += step;
                let reward = if self.config.reward_shaping {
                    -step
                } else {
                    0.0
                };
                transitions.push(Transition {
                    layer: l,
                    prev,
                    action: a,
                    reward,
                    terminal: l == layers - 1,
                });
                assign.push(a);
                prev = a;
            }
            if !self.config.reward_shaping {
                if let Some(last) = transitions.last_mut() {
                    last.reward = -episode_cost;
                }
            }
            // Online updates in reverse order so Q-knowledge from the best
            // following state flows backwards within the episode.
            for t in transitions.iter().rev() {
                self.q_update(&mut q, t);
            }
            // Experience replay pass.
            if self.config.replay && !replay.is_empty() {
                for t in replay.shuffled(&mut rng) {
                    self.q_update(&mut q, &t);
                }
            }
            for t in transitions {
                replay.push(t);
            }

            if episode_cost < best_cost {
                best_cost = episode_cost;
                best_assign = assign;
            }
            curve.push(EpisodeRecord {
                episode,
                epsilon: eps,
                cost_ms: episode_cost,
                best_so_far_ms: best_cost,
            });
        }

        // Final full-exploitation rollout ("the engine gives out the best
        // inference configuration", §V.B).
        let rollout = q.greedy_rollout();
        let rollout_cost = lut.cost(&rollout);
        if rollout_cost < best_cost {
            best_cost = rollout_cost;
            best_assign = rollout;
        }

        let registry = qsdnn_obs::global();
        registry
            .counter(
                "qsdnn_search_episodes_total",
                "Q-learning episodes executed",
                &[],
            )
            .add(total as u64);
        let actions_help = "Per-layer action choices, by epsilon-greedy policy arm";
        registry
            .counter(
                "qsdnn_search_actions_total",
                actions_help,
                &[("policy", "explore")],
            )
            .add(explored);
        registry
            .counter(
                "qsdnn_search_actions_total",
                actions_help,
                &[("policy", "exploit")],
            )
            .add(exploited);

        SearchReport {
            method: if seeded { "qs-dnn-warm" } else { "qs-dnn" }.into(),
            network: lut.network().to_string(),
            best_assignment: best_assign,
            best_cost_ms: best_cost,
            episodes: total,
            curve,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn finds_fig1_global_optimum() {
        let lut = toy::fig1_lut();
        let report = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);
        assert_eq!(report.best_assignment, vec![0, 0, 0]);
        assert!((report.best_cost_ms - 2.9).abs() < 1e-9);
        // Greedy would have been 3.3.
        assert!(report.best_cost_ms < lut.cost(&lut.greedy_assignment()));
    }

    #[test]
    fn converges_on_small_chain() {
        let lut = toy::small_chain_lut();
        let report = QsDnnSearch::new(QsDnnConfig::with_episodes(500)).run(&lut);
        // Exhaustive optimum over 243 assignments.
        let mut opt = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    for d in 0..3 {
                        for e in 0..3 {
                            opt = opt.min(lut.cost(&[a, b, c, d, e]));
                        }
                    }
                }
            }
        }
        assert!(
            (report.best_cost_ms - opt).abs() < 1e-9,
            "QS-DNN {} vs optimum {opt}",
            report.best_cost_ms
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let lut = toy::small_chain_lut();
        let a = QsDnnSearch::new(QsDnnConfig::with_episodes(100)).run(&lut);
        let b = QsDnnSearch::new(QsDnnConfig::with_episodes(100)).run(&lut);
        assert_eq!(a.best_cost_ms, b.best_cost_ms);
        assert_eq!(a.curve.len(), b.curve.len());
        for (x, y) in a.curve.iter().zip(&b.curve) {
            assert_eq!(x.cost_ms, y.cost_ms);
        }
    }

    #[test]
    fn curve_best_so_far_is_monotone() {
        let lut = toy::small_chain_lut();
        let report = QsDnnSearch::new(QsDnnConfig::with_episodes(200)).run(&lut);
        let mut prev = f64::INFINITY;
        for r in &report.curve {
            assert!(r.best_so_far_ms <= prev + 1e-12);
            prev = r.best_so_far_ms;
        }
    }

    #[test]
    fn exploitation_tail_samples_learned_policy() {
        let lut = toy::small_chain_lut();
        let report = QsDnnSearch::new(QsDnnConfig::with_episodes(400)).run(&lut);
        // In the final ε=0 segment every episode follows argmax-Q, so the
        // sampled costs should have converged to the best found.
        let tail: Vec<f64> = report
            .curve
            .iter()
            .rev()
            .take(10)
            .map(|r| r.cost_ms)
            .collect();
        let spread = tail.iter().fold(0.0f64, |m, &c| m.max(c)) - report.best_cost_ms;
        assert!(spread < 0.5, "tail spread {spread}");
    }

    #[test]
    fn warm_run_uses_fewer_episodes_and_still_finds_the_optimum() {
        use qsdnn_engine::ScenarioDescriptor;

        let lut = toy::small_chain_lut();
        let cold = QsDnnSearch::new(QsDnnConfig::with_episodes(500)).run(&lut);

        // Donor: the cold run's own backbone, mapped through identity.
        let desc = ScenarioDescriptor::of(&lut);
        let mapping = crate::TransferMapping::between(&desc, &desc);
        let dims: Vec<usize> = (0..lut.len()).map(|l| lut.candidates(l).len()).collect();
        let costs: Vec<f64> = cold
            .best_assignment
            .iter()
            .enumerate()
            .map(|(l, &ci)| lut.step_cost(l, ci, &cold.best_assignment))
            .collect();
        let donor =
            QTable::from_best_path(&dims, &cold.best_assignment, &costs).expect("consistent");

        let mut cfg = QsDnnConfig::with_episodes(500);
        cfg.warm_start = true;
        let warm = QsDnnSearch::new(cfg).run_warm(&lut, &donor, &mapping);
        assert_eq!(warm.method, "qs-dnn-warm");
        assert!(
            warm.episodes < cold.episodes,
            "warm {} episodes vs cold {}",
            warm.episodes,
            cold.episodes
        );
        assert!(
            warm.best_cost_ms <= cold.best_cost_ms + 1e-9,
            "warm {} must not lose to cold {} when seeded from cold's plan",
            warm.best_cost_ms,
            cold.best_cost_ms
        );
    }

    #[test]
    fn warm_run_without_usable_donor_is_exactly_cold() {
        use qsdnn_engine::ScenarioDescriptor;

        let lut = toy::small_chain_lut();
        // A donor whose every layer type differs maps to nothing.
        let recipient = ScenarioDescriptor::of(&lut);
        let mut donor_desc = recipient.clone();
        for l in &mut donor_desc.layers {
            l.tag = "softmax".into();
        }
        let mapping = crate::TransferMapping::between(&donor_desc, &recipient);
        assert!(mapping.is_empty());

        let mut cfg = QsDnnConfig::with_episodes(200);
        cfg.warm_start = true;
        let donor = QTable::new(&lut);
        let warm = QsDnnSearch::new(cfg.clone()).run_warm(&lut, &donor, &mapping);
        cfg.warm_start = false;
        let cold = QsDnnSearch::new(cfg).run(&lut);
        assert_eq!(warm.method, "qs-dnn", "fallback is the cold search");
        assert_eq!(warm.best_assignment, cold.best_assignment);
        assert_eq!(warm.best_cost_ms.to_bits(), cold.best_cost_ms.to_bits());
        assert_eq!(warm.curve.len(), cold.curve.len());
    }

    #[test]
    fn replay_and_shaping_flags_are_respected() {
        let lut = toy::small_chain_lut();
        let mut cfg = QsDnnConfig::with_episodes(200);
        cfg.replay = false;
        cfg.reward_shaping = false;
        let report = QsDnnSearch::new(cfg).run(&lut);
        // Still finds something sensible (terminal reward is a valid MDP).
        assert!(report.best_cost_ms < lut.cost(&lut.vanilla_assignment()));
    }
}
