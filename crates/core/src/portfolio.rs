//! Search portfolios: several independent solvers racing on one LUT.
//!
//! The paper runs a single Q-learning agent per scenario. At service scale
//! (`qsdnn-serve`) it is cheaper to throw the whole solver stable at every
//! request — multi-seed QS-DNN plus the baselines — because the members are
//! embarrassingly parallel and the per-request budget is dominated by the
//! slowest member, not the sum. This module defines the *portfolio
//! specification* and its deterministic reduction; the concurrent execution
//! lives in `qsdnn-serve` (std-thread worker pool), while
//! [`Portfolio::run_sequential`] is the reference implementation every
//! parallel schedule must reproduce bit-for-bit.
//!
//! All entry points take `&self`/`&CostLut` and are `Send + Sync`, so
//! members can be fanned out across threads without cloning the LUT.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use qsdnn_engine::{CostLut, Fnv64};

use crate::baselines::{
    pbqp_search, solve_chain_dp, RandomSearch, SimulatedAnnealing, SimulatedAnnealingConfig,
};
use crate::{QsDnnConfig, QsDnnSearch, SearchReport};

/// One solver in a portfolio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PortfolioMember {
    /// Tabular Q-learning with the given hyper-parameters (the seed makes
    /// multi-seed portfolios possible).
    QsDnn(QsDnnConfig),
    /// Uniform random search (paper §VI.B) with an episode budget and seed.
    Random {
        /// Episode budget.
        episodes: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Simulated annealing.
    Annealing(SimulatedAnnealingConfig),
    /// Exact chain dynamic programming; skipped on branchy networks.
    ChainDp,
    /// PBQP reduction solver (Anderson & Gregg).
    Pbqp,
}

impl PortfolioMember {
    /// Short label for reports and service telemetry.
    pub fn label(&self) -> String {
        match self {
            PortfolioMember::QsDnn(cfg) => format!("qs-dnn(seed={:#x})", cfg.seed),
            PortfolioMember::Random { seed, .. } => format!("random(seed={seed:#x})"),
            PortfolioMember::Annealing(cfg) => format!("annealing(seed={:#x})", cfg.seed),
            PortfolioMember::ChainDp => "chain-dp".to_string(),
            PortfolioMember::Pbqp => "pbqp".to_string(),
        }
    }

    /// Canonical method name — the low-cardinality form of [`label`]
    /// (no seed), used as the observability histogram label.
    ///
    /// [`label`]: PortfolioMember::label
    pub fn method(&self) -> &'static str {
        match self {
            PortfolioMember::QsDnn(_) => "qs-dnn",
            PortfolioMember::Random { .. } => "random",
            PortfolioMember::Annealing(_) => "annealing",
            PortfolioMember::ChainDp => "chain-dp",
            PortfolioMember::Pbqp => "pbqp",
        }
    }

    /// Runs this member with a transfer donor available: QS-DNN members in
    /// warm-start mode seed from the donor ([`QsDnnSearch::run_warm`],
    /// falling back to cold when the mapping transfers nothing); every
    /// other member ignores the donor and runs normally.
    pub fn run_warm(
        &self,
        lut: &CostLut,
        donor: &crate::QTable,
        mapping: &crate::TransferMapping,
    ) -> Option<SearchReport> {
        match self {
            PortfolioMember::QsDnn(cfg) => {
                let start = Instant::now();
                let report = QsDnnSearch::new(cfg.clone()).run_warm(lut, donor, mapping);
                observe_member_wall(self.method(), start);
                Some(report)
            }
            // Delegation records the member's wall time in `run`.
            other => other.run(lut),
        }
    }

    /// Runs this member against a LUT. Returns `None` when the member is
    /// inapplicable (chain DP on a branchy network).
    pub fn run(&self, lut: &CostLut) -> Option<SearchReport> {
        let start = Instant::now();
        let report = match self {
            PortfolioMember::QsDnn(cfg) => Some(QsDnnSearch::new(cfg.clone()).run(lut)),
            PortfolioMember::Random { episodes, seed } => {
                Some(RandomSearch::new(*episodes, *seed).run(lut))
            }
            PortfolioMember::Annealing(cfg) => Some(SimulatedAnnealing::new(cfg.clone()).run(lut)),
            PortfolioMember::ChainDp => solve_chain_dp(lut).map(|(assign, cost)| SearchReport {
                method: "chain-dp".into(),
                network: lut.network().to_string(),
                best_assignment: assign,
                best_cost_ms: cost,
                episodes: 0,
                curve: Vec::new(),
                wall_time_ms: 0.0,
            }),
            PortfolioMember::Pbqp => Some(pbqp_search(lut)),
        };
        observe_member_wall(self.method(), start);
        report
    }

    /// Feeds everything that can change this member's outcome into a
    /// fingerprint hasher (wall times and labels excluded).
    pub fn fingerprint_into(&self, h: &mut Fnv64) {
        match self {
            PortfolioMember::QsDnn(cfg) => {
                h.write_str("qs-dnn");
                h.write_usize(cfg.schedule.segments().len());
                for &(eps, n) in cfg.schedule.segments() {
                    h.write_f64(eps);
                    h.write_usize(n);
                }
                h.write_f64(cfg.alpha);
                h.write_f64(cfg.gamma);
                h.write_usize(cfg.replay_capacity);
                h.write_u64(cfg.replay as u64);
                h.write_u64(cfg.reward_shaping as u64);
                h.write_u64(cfg.jumpstart as u64);
                // Written only when set so every pre-transfer fingerprint
                // (and thus every existing cache key and spilled plan)
                // stays byte-identical.
                if cfg.warm_start {
                    h.write_str("warm-start");
                }
                h.write_u64(cfg.seed);
            }
            PortfolioMember::Random { episodes, seed } => {
                h.write_str("random");
                h.write_usize(*episodes);
                h.write_u64(*seed);
            }
            PortfolioMember::Annealing(cfg) => {
                h.write_str("annealing");
                h.write_usize(cfg.evaluations);
                h.write_f64(cfg.t_initial);
                h.write_f64(cfg.t_final);
                h.write_u64(cfg.seed);
            }
            PortfolioMember::ChainDp => h.write_str("chain-dp"),
            PortfolioMember::Pbqp => h.write_str("pbqp"),
        }
    }
}

/// Records one member run's wall time into the process-global registry,
/// labeled by canonical method name.
fn observe_member_wall(method: &'static str, start: Instant) {
    qsdnn_obs::global()
        .histogram(
            "qsdnn_portfolio_member_us",
            "Wall time of one portfolio member run, by method",
            &[("method", method)],
        )
        .record_duration(start.elapsed());
}

/// Per-member outcome summary (kept even for losing members, so service
/// clients can see the whole race).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberSummary {
    /// Member label (see [`PortfolioMember::label`]).
    pub label: String,
    /// Best cost found, `None` when the member was inapplicable.
    pub best_cost_ms: Option<f64>,
    /// Episodes the member actually ran (0 for exact solvers and members
    /// without a result) — how warm-started searches surface their
    /// shortened budgets to service clients.
    #[serde(default)]
    pub episodes: usize,
    /// Member wall time (ms). Informational only — never part of the
    /// deterministic reduction or any cache key.
    pub wall_time_ms: f64,
}

/// The reduced result of one portfolio run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioOutcome {
    /// The winning report.
    pub best: SearchReport,
    /// Index of the winning member in the portfolio.
    pub winner_index: usize,
    /// Winning member's label.
    pub winner: String,
    /// Per-member summaries, in member order.
    pub members: Vec<MemberSummary>,
}

/// An ordered set of solvers plus the deterministic reduction over their
/// reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    /// The members, in reduction-priority order (ties break to the lowest
    /// index).
    pub members: Vec<PortfolioMember>,
}

impl Portfolio {
    /// The service default: `seeds.len()` QS-DNN agents, a random-search
    /// baseline, simulated annealing, chain DP (skipped when branchy) and
    /// PBQP, all on the same episode budget.
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero or `seeds` is empty.
    pub fn paper_default(episodes: usize, seeds: &[u64]) -> Self {
        assert!(episodes > 0, "portfolio needs an episode budget");
        assert!(!seeds.is_empty(), "portfolio needs at least one seed");
        let mut members = Vec::with_capacity(seeds.len() + 4);
        for &seed in seeds {
            members.push(PortfolioMember::QsDnn(
                QsDnnConfig::with_episodes(episodes).with_seed(seed),
            ));
        }
        members.push(PortfolioMember::Random {
            episodes,
            seed: seeds[0],
        });
        members.push(PortfolioMember::Annealing(SimulatedAnnealingConfig {
            evaluations: episodes,
            seed: seeds[0],
            ..SimulatedAnnealingConfig::default()
        }));
        members.push(PortfolioMember::ChainDp);
        members.push(PortfolioMember::Pbqp);
        Portfolio { members }
    }

    /// The transfer variant of this portfolio: every QS-DNN member flips
    /// into warm-start mode (shortened schedule when seeded), the
    /// baselines stay untouched. The fingerprint changes — a warm plan
    /// never shares a cache key with the cold plan it approximates.
    pub fn warmed(&self) -> Portfolio {
        Portfolio {
            members: self
                .members
                .iter()
                .map(|m| match m {
                    PortfolioMember::QsDnn(cfg) => PortfolioMember::QsDnn(QsDnnConfig {
                        warm_start: true,
                        ..cfg.clone()
                    }),
                    other => other.clone(),
                })
                .collect(),
        }
    }

    /// Stable fingerprint of the member specifications (order-sensitive:
    /// the reduction tie-breaks by index).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("qsdnn-portfolio-v1");
        h.write_usize(self.members.len());
        for m in &self.members {
            m.fingerprint_into(&mut h);
        }
        h.finish()
    }

    /// Deterministic reduction: the applicable report with the lowest cost
    /// wins; exact cost ties break to the lowest member index. The winner
    /// is chosen by `(cost, index)` comparison, so input order does not
    /// matter — a parallel fan-in reduces identically to
    /// [`Portfolio::run_sequential`].
    ///
    /// The summaries always cover every portfolio member in member order;
    /// a member with no result (inapplicable, or dropped because its job
    /// panicked) appears with `best_cost_ms: None`, keeping labels aligned
    /// with indices. Results whose index is out of range are ignored.
    ///
    /// Returns `None` when no member produced a report.
    pub fn select_best(
        &self,
        results: Vec<(usize, Option<SearchReport>)>,
    ) -> Option<PortfolioOutcome> {
        let mut members: Vec<MemberSummary> = self
            .members
            .iter()
            .map(|m| MemberSummary {
                label: m.label(),
                best_cost_ms: None,
                episodes: 0,
                wall_time_ms: 0.0,
            })
            .collect();
        let mut best: Option<(usize, SearchReport)> = None;
        for (i, report) in results {
            let (Some(summary), Some(report)) = (members.get_mut(i), report) else {
                continue;
            };
            summary.best_cost_ms = Some(report.best_cost_ms);
            summary.episodes = report.episodes;
            summary.wall_time_ms = report.wall_time_ms;
            let wins = match &best {
                None => true,
                Some((bi, br)) => report
                    .best_cost_ms
                    .total_cmp(&br.best_cost_ms)
                    .then_with(|| i.cmp(bi))
                    .is_lt(),
            };
            if wins {
                best = Some((i, report));
            }
        }
        let (winner_index, best) = best?;
        Some(PortfolioOutcome {
            winner: members[winner_index].label.clone(),
            best,
            winner_index,
            members,
        })
    }

    /// Runs every member on the calling thread and reduces. This is the
    /// reference semantics for the parallel executor in `qsdnn-serve`.
    ///
    /// Returns `None` for an empty portfolio or when every member is
    /// inapplicable.
    pub fn run_sequential(&self, lut: &CostLut) -> Option<PortfolioOutcome> {
        let results = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.run(lut)))
            .collect();
        self.select_best(results)
    }

    /// [`Portfolio::run_sequential`] with a transfer donor: the reference
    /// semantics for the warm parallel executor in `qsdnn-serve`.
    ///
    /// Returns `None` for an empty portfolio or when every member is
    /// inapplicable.
    pub fn run_sequential_warm(
        &self,
        lut: &CostLut,
        donor: &crate::QTable,
        mapping: &crate::TransferMapping,
    ) -> Option<PortfolioOutcome> {
        let results = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.run_warm(lut, donor, mapping)))
            .collect();
        self.select_best(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn paper_default_shape() {
        let p = Portfolio::paper_default(200, &[1, 2, 3]);
        assert_eq!(p.members.len(), 3 + 4);
        assert!(matches!(p.members[0], PortfolioMember::QsDnn(_)));
        assert!(matches!(p.members.last(), Some(PortfolioMember::Pbqp)));
    }

    #[test]
    fn sequential_run_finds_the_fig1_optimum() {
        let lut = toy::fig1_lut();
        let out = Portfolio::paper_default(300, &[0x5EED, 7])
            .run_sequential(&lut)
            .expect("applicable members");
        assert_eq!(out.best.best_assignment, vec![0, 0, 0]);
        assert!((out.best.best_cost_ms - 2.9).abs() < 1e-9);
        assert_eq!(out.members.len(), 6);
    }

    #[test]
    fn reduction_is_order_independent_and_tie_breaks_low_index() {
        let lut = toy::small_chain_lut();
        let p = Portfolio::paper_default(150, &[1, 2]);
        let forward: Vec<_> = p
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.run(&lut)))
            .collect();
        let mut backward = forward.clone();
        backward.reverse();
        let a = p.select_best(forward).unwrap();
        let b = p.select_best(backward).unwrap();
        assert_eq!(a.winner_index, b.winner_index);
        assert_eq!(a.best, b.best);
        // Chain DP and PBQP are both exact here, so their costs tie; the
        // winner must be whichever exact member has the lower index among
        // the overall minimum-cost reports.
        let min_cost = a
            .members
            .iter()
            .filter_map(|m| m.best_cost_ms)
            .fold(f64::INFINITY, f64::min);
        let first_min = a
            .members
            .iter()
            .position(|m| m.best_cost_ms == Some(min_cost))
            .unwrap();
        assert_eq!(a.winner_index, first_min);
    }

    #[test]
    fn chain_dp_skips_branchy_luts_gracefully() {
        // fig1 is a chain; build a fake branchy case by checking DP member
        // directly against a LUT with a skip-edge.
        use qsdnn_engine::{CostLut, IncomingEdge, LayerEntry};
        use qsdnn_nn::LayerTag;
        use qsdnn_primitives::Primitive;
        let cands = vec![Primitive::vanilla(); 2];
        let mk = |name: &str, incoming| LayerEntry {
            name: name.into(),
            tag: LayerTag::Conv,
            candidates: cands.clone(),
            time_ms: vec![1.0, 2.0],
            energy_mj: vec![],
            incoming,
        };
        let branchy = CostLut::from_parts(
            "branchy",
            "toy",
            qsdnn_engine::Mode::Cpu,
            vec![
                mk("a", vec![]),
                mk(
                    "b",
                    vec![IncomingEdge {
                        from: 0,
                        penalty: vec![0.0; 4],
                        penalty_energy_mj: vec![],
                    }],
                ),
                mk(
                    "c",
                    vec![
                        IncomingEdge {
                            from: 0,
                            penalty: vec![0.0; 4],
                            penalty_energy_mj: vec![],
                        },
                        IncomingEdge {
                            from: 1,
                            penalty: vec![0.0; 4],
                            penalty_energy_mj: vec![],
                        },
                    ],
                ),
            ],
        );
        assert!(PortfolioMember::ChainDp.run(&branchy).is_none());
        let out = Portfolio::paper_default(100, &[1])
            .run_sequential(&branchy)
            .unwrap();
        let dp = out
            .members
            .iter()
            .find(|m| m.label == "chain-dp")
            .expect("dp summarized");
        assert_eq!(dp.best_cost_ms, None, "inapplicable member records None");
    }

    #[test]
    fn dropped_results_keep_labels_aligned() {
        // A parallel executor may drop a member's result entirely (its job
        // panicked). Labels must stay aligned with member indices and the
        // winner label must name the actual winner.
        let lut = toy::fig1_lut();
        let p = Portfolio::paper_default(150, &[1, 2]);
        let full: Vec<_> = p
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.run(&lut)))
            .collect();
        // Drop member 0's result and shuffle the rest.
        let mut partial: Vec<_> = full.into_iter().skip(1).collect();
        partial.reverse();
        let out = p.select_best(partial).expect("survivors");
        assert_eq!(
            out.members.len(),
            p.members.len(),
            "summaries cover all members"
        );
        for (i, m) in out.members.iter().enumerate() {
            assert_eq!(m.label, p.members[i].label(), "label {i} aligned");
        }
        assert_eq!(
            out.members[0].best_cost_ms, None,
            "dropped member records None"
        );
        assert_eq!(out.winner, p.members[out.winner_index].label());
        assert!(out.winner_index != 0);
        // Out-of-range indices are ignored, not mislabeled.
        assert!(p.select_best(vec![(99, None)]).is_none());
    }

    #[test]
    fn fingerprint_tracks_member_specs() {
        let a = Portfolio::paper_default(100, &[1, 2]);
        let b = Portfolio::paper_default(100, &[1, 2]);
        let c = Portfolio::paper_default(100, &[1, 3]);
        let d = Portfolio::paper_default(101, &[1, 2]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
