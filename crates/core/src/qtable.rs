//! Tabular action-value function over the layer-serialized state space.
//!
//! Per paper Table I, a state is the tuple *(layer type, layer depth,
//! library, algorithm, algorithm impl, processor, BLAS library)*. Depth
//! plus the candidate index into the LUT's per-layer primitive list encodes
//! exactly that tuple, so the Q-table is a ragged `depth × prev-candidate ×
//! next-candidate` array: `Q[(l, prev), a]` is the value of choosing
//! candidate `a` at layer `l` when layer `l-1` runs candidate `prev`.

use serde::{Deserialize, Serialize};

use qsdnn_engine::CostLut;

/// Dense tabular Q-function for one network's search space.
///
/// Rewards are negated times, so a zero-initialized table is *optimistic*:
/// a greedy argmax would always prefer never-tried actions and bootstrap
/// targets would ignore costly futures. The table therefore tracks a
/// visited mask and [`QTable::best`] maximizes over *visited* actions only
/// (falling back to action 0 when the state is untouched).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    /// Candidate counts per layer.
    dims: Vec<usize>,
    /// Q-values of the first layer's actions (no predecessor state).
    first: Vec<f64>,
    /// For layer `l ≥ 1`: `q[l-1][prev * dims[l] + a]`.
    q: Vec<Vec<f64>>,
    /// Update counts of `first`.
    first_seen: Vec<u32>,
    /// Update counts of `q`.
    seen: Vec<Vec<u32>>,
}

impl QTable {
    /// Zero-initialized table matching `lut`'s candidate structure.
    pub fn new(lut: &CostLut) -> Self {
        QTable::with_dims((0..lut.len()).map(|l| lut.candidates(l).len()).collect())
    }

    /// Zero-initialized table with explicit per-layer candidate counts —
    /// used to rebuild donor policy tables from cached scenario artifacts
    /// whose LUT is no longer at hand.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any layer has zero candidates.
    pub fn with_dims(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "Q-table needs at least one layer");
        assert!(dims.iter().all(|&n| n > 0), "every layer needs candidates");
        let first = vec![0.0; dims[0]];
        let q: Vec<Vec<f64>> = (1..dims.len())
            .map(|l| vec![0.0; dims[l - 1] * dims[l]])
            .collect();
        let first_seen = vec![0; dims[0]];
        let seen = q.iter().map(|row| vec![0; row.len()]).collect();
        QTable {
            dims,
            first,
            q,
            first_seen,
            seen,
        }
    }

    /// Candidate count at layer `l`.
    pub fn arity(&self, l: usize) -> usize {
        self.dims[l]
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the table covers no layers.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// `Q[(l, prev), a]`. For `l == 0`, `prev` is ignored.
    pub fn get(&self, l: usize, prev: usize, a: usize) -> f64 {
        if l == 0 {
            self.first[a]
        } else {
            self.q[l - 1][prev * self.dims[l] + a]
        }
    }

    /// Sets `Q[(l, prev), a]` and increments its update count.
    pub fn set(&mut self, l: usize, prev: usize, a: usize, value: f64) {
        if l == 0 {
            self.first[a] = value;
            self.first_seen[a] += 1;
        } else {
            let idx = prev * self.dims[l] + a;
            self.q[l - 1][idx] = value;
            self.seen[l - 1][idx] += 1;
        }
    }

    /// Overwrites `Q[(l, prev), a]` *and* its visit count in one step —
    /// transfer seeding, where the value comes from a donor table rather
    /// than a Bellman update.
    pub(crate) fn seed(&mut self, l: usize, prev: usize, a: usize, value: f64, visits: u32) {
        if l == 0 {
            self.first[a] = value;
            self.first_seen[a] = visits;
        } else {
            let idx = prev * self.dims[l] + a;
            self.q[l - 1][idx] = value;
            self.seen[l - 1][idx] = visits;
        }
    }

    /// Number of updates `(l, prev, a)` has received.
    pub fn visits(&self, l: usize, prev: usize, a: usize) -> u32 {
        if l == 0 {
            self.first_seen[a]
        } else {
            self.seen[l - 1][prev * self.dims[l] + a]
        }
    }

    /// Whether `(l, prev, a)` has ever been updated.
    pub fn visited(&self, l: usize, prev: usize, a: usize) -> bool {
        self.visits(l, prev, a) > 0
    }

    /// `max_a Q[(l, prev), a]` over *visited* actions and its argmax (first
    /// on ties). Untouched states return `(0, 0.0)`.
    pub fn best(&self, l: usize, prev: usize) -> (usize, f64) {
        let n = self.dims[l];
        let (row, mask): (&[f64], &[u32]) = if l == 0 {
            (&self.first, &self.first_seen)
        } else {
            let r = prev * n..(prev + 1) * n;
            (&self.q[l - 1][r.clone()], &self.seen[l - 1][r])
        };
        let mut bi = None;
        let mut bv = f64::NEG_INFINITY;
        for i in 0..n {
            if mask[i] > 0 && row[i] > bv {
                bv = row[i];
                bi = Some(i);
            }
        }
        match bi {
            Some(i) => (i, bv),
            None => (0, 0.0),
        }
    }

    /// Greedy rollout: the assignment obtained by following `argmax Q` from
    /// layer 0 — the learned policy at ε = 0.
    pub fn greedy_rollout(&self) -> Vec<usize> {
        let mut assign = Vec::with_capacity(self.dims.len());
        let mut prev = 0usize;
        for l in 0..self.dims.len() {
            let (a, _) = self.best(l, prev);
            assign.push(a);
            prev = a;
        }
        assign
    }

    /// Total number of stored Q-values (state-action pairs).
    pub fn entries(&self) -> usize {
        self.first.len() + self.q.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn dimensions_follow_lut() {
        let lut = toy::small_chain_lut();
        let q = QTable::new(&lut);
        assert_eq!(q.len(), 5);
        assert_eq!(q.arity(0), 3);
        // 3 first-layer entries + 4 transitions of 3x3.
        assert_eq!(q.entries(), 3 + 4 * 9);
    }

    #[test]
    fn get_set_roundtrip() {
        let lut = toy::small_chain_lut();
        let mut q = QTable::new(&lut);
        q.set(0, 0, 2, -1.5);
        q.set(3, 1, 0, -0.25);
        assert_eq!(q.get(0, 7, 2), -1.5, "prev ignored at layer 0");
        assert_eq!(q.get(3, 1, 0), -0.25);
        assert_eq!(q.get(3, 2, 0), 0.0);
    }

    #[test]
    fn best_returns_argmax() {
        let lut = toy::small_chain_lut();
        let mut q = QTable::new(&lut);
        q.set(1, 0, 0, -3.0);
        q.set(1, 0, 1, -1.0);
        q.set(1, 0, 2, -2.0);
        assert_eq!(q.best(1, 0), (1, -1.0));
    }

    #[test]
    fn greedy_rollout_follows_chain_of_argmaxes() {
        let lut = toy::small_chain_lut();
        let mut q = QTable::new(&lut);
        // Make layer 0 prefer 2, then from prev=2 prefer 1, etc.
        q.set(0, 0, 2, 1.0);
        q.set(1, 2, 1, 1.0);
        q.set(2, 1, 0, 1.0);
        q.set(3, 0, 2, 1.0);
        q.set(4, 2, 2, 1.0);
        assert_eq!(q.greedy_rollout(), vec![2, 1, 0, 2, 2]);
    }
}
