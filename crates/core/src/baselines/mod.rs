//! Comparator searches: Random Search (the paper's §VI.B baseline),
//! exhaustive enumeration, exact chain DP, simulated annealing, the PBQP
//! formulation of Anderson & Gregg, and the per-layer greedy trap
//! ([`CostLut::greedy_assignment`](qsdnn_engine::CostLut::greedy_assignment)).

mod annealing;
mod dp;
mod exhaustive;
mod pbqp;
mod random;

pub use annealing::{SimulatedAnnealing, SimulatedAnnealingConfig};
pub use dp::{is_chain, solve_chain_dp};
pub use exhaustive::exhaustive_search;
pub use pbqp::pbqp_search;
pub use random::RandomSearch;
