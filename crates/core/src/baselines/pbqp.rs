//! PBQP-based primitive selection — the Anderson & Gregg formulation the
//! paper positions itself against.

use std::time::Instant;

use qsdnn_engine::CostLut;
use qsdnn_pbqp::PbqpGraph;

use crate::SearchReport;

/// Maps the Phase-1 LUT onto a PBQP instance (layer → node with the time
/// vector, edge → penalty matrix) and solves it with the reduction solver.
///
/// Exact on chain/tree-reducible graphs, heuristic (RN) otherwise — unlike
/// QS-DNN it needs the *full* LUT rather than samples, which is the
/// methodological contrast drawn in the paper's related work.
pub fn pbqp_search(lut: &CostLut) -> SearchReport {
    let start = Instant::now();
    let mut g = PbqpGraph::new();
    for l in 0..lut.len() {
        g.add_node(lut.layers()[l].time_ms.clone());
    }
    for (l, entry) in lut.layers().iter().enumerate() {
        for e in &entry.incoming {
            // Penalty matrix is stored [ci_from][ci_self] row-major, which
            // is exactly add_edge(from, l) orientation.
            g.add_edge(e.from, l, e.penalty.clone())
                .expect("LUT edges are well-formed");
        }
    }
    let sol = g.solve_with_cost();
    let cost = lut.cost(&sol.selection);
    SearchReport {
        method: if sol.exact {
            "pbqp(exact)".into()
        } else {
            "pbqp(rn)".into()
        },
        network: lut.network().to_string(),
        best_assignment: sol.selection,
        best_cost_ms: cost,
        episodes: 0,
        curve: Vec::new(),
        wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{exhaustive_search, solve_chain_dp};
    use qsdnn_engine::toy;

    #[test]
    fn matches_dp_on_chains() {
        for lut in [toy::fig1_lut(), toy::small_chain_lut()] {
            let (_, dp_cost) = solve_chain_dp(&lut).unwrap();
            let report = pbqp_search(&lut);
            assert!(
                (report.best_cost_ms - dp_cost).abs() < 1e-9,
                "{}: pbqp {} vs dp {dp_cost}",
                lut.network(),
                report.best_cost_ms
            );
            assert_eq!(report.method, "pbqp(exact)");
        }
    }

    #[test]
    fn matches_exhaustive_on_branchy_toy() {
        use qsdnn_engine::{AnalyticalPlatform, Mode, Profiler};
        let net = qsdnn_nn::zoo::toy_branchy(1);
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 1).profile(&net, Mode::Cpu);
        let report = pbqp_search(&lut);
        let (_, opt) = exhaustive_search(&lut, 1e7).expect("toy space fits");
        // Tree-width of the branchy toy is 2, so RII keeps this exact.
        assert!(
            (report.best_cost_ms - opt).abs() < 1e-9,
            "pbqp {} vs optimum {opt}",
            report.best_cost_ms
        );
    }
}
