//! Random Search: the paper's §VI.B comparison baseline.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn_engine::CostLut;

use crate::{EpisodeRecord, SearchReport};

/// Uniform random sampling of implementations, tracking the best seen —
/// same episode budget accounting as QS-DNN so curves are comparable.
///
/// # Examples
///
/// ```
/// use qsdnn::baselines::RandomSearch;
/// use qsdnn_engine::toy;
///
/// let lut = toy::small_chain_lut();
/// let report = RandomSearch::new(200, 1).run(&lut);
/// assert!(report.best_cost_ms < lut.cost(&lut.vanilla_assignment()));
/// ```
#[derive(Debug, Clone)]
pub struct RandomSearch {
    episodes: usize,
    seed: u64,
}

impl RandomSearch {
    /// Random search with the given episode budget and seed.
    pub fn new(episodes: usize, seed: u64) -> Self {
        RandomSearch { episodes, seed }
    }

    /// Samples `episodes` uniform assignments against `lut`.
    pub fn run(&self, lut: &CostLut) -> SearchReport {
        let start = Instant::now();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut best_cost = f64::INFINITY;
        let mut best_assign = Vec::new();
        let mut curve = Vec::with_capacity(self.episodes);
        for episode in 0..self.episodes {
            let assign: Vec<usize> = (0..lut.len())
                .map(|l| rng.gen_range(0..lut.candidates(l).len()))
                .collect();
            let cost = lut.cost(&assign);
            if cost < best_cost {
                best_cost = cost;
                best_assign = assign;
            }
            curve.push(EpisodeRecord {
                episode,
                epsilon: 1.0,
                cost_ms: cost,
                best_so_far_ms: best_cost,
            });
        }
        SearchReport {
            method: "random".into(),
            network: lut.network().to_string(),
            best_assignment: best_assign,
            best_cost_ms: best_cost,
            episodes: self.episodes,
            curve,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn improves_with_budget() {
        let lut = toy::small_chain_lut();
        let short = RandomSearch::new(5, 3).run(&lut);
        let long = RandomSearch::new(500, 3).run(&lut);
        assert!(long.best_cost_ms <= short.best_cost_ms);
    }

    #[test]
    fn deterministic_per_seed() {
        let lut = toy::small_chain_lut();
        assert_eq!(
            RandomSearch::new(50, 9).run(&lut).best_cost_ms,
            RandomSearch::new(50, 9).run(&lut).best_cost_ms
        );
    }

    #[test]
    fn curve_length_matches_budget() {
        let lut = toy::fig1_lut();
        let r = RandomSearch::new(25, 1).run(&lut);
        assert_eq!(r.curve.len(), 25);
        assert_eq!(r.episodes, 25);
    }
}
