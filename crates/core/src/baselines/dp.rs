//! Exact dynamic programming (Viterbi) for chain-shaped networks.
//!
//! When every layer's only in-edge comes from its serialized predecessor,
//! the selection problem has optimal substructure and the optimum is
//! computable in `O(L · N_I²)` — the gold standard QS-DNN is tested against
//! on chains. Branchy graphs (GoogLeNet's inceptions, residual adds) break
//! the chain property; use exhaustive search or PBQP there.

use qsdnn_engine::{Assignment, CostLut};

/// Whether the LUT describes a pure chain (layer `l`'s only in-edge is
/// `l-1`).
pub fn is_chain(lut: &CostLut) -> bool {
    lut.layers().iter().enumerate().all(|(l, entry)| {
        if l == 0 {
            entry.incoming.is_empty()
        } else {
            entry.incoming.len() == 1 && entry.incoming[0].from == l - 1
        }
    })
}

/// Exact optimum for chain LUTs, or `None` for non-chains.
pub fn solve_chain_dp(lut: &CostLut) -> Option<(Assignment, f64)> {
    if lut.is_empty() || !is_chain(lut) {
        return None;
    }
    let layers = lut.layers();
    let n0 = layers[0].candidates.len();
    // best[ci] = minimal cost of a prefix ending with candidate ci.
    let mut best: Vec<f64> = (0..n0).map(|ci| lut.time(0, ci)).collect();
    let mut back: Vec<Vec<usize>> = vec![vec![0; n0]];
    for l in 1..layers.len() {
        let entry = &layers[l];
        let n = entry.candidates.len();
        let n_prev = layers[l - 1].candidates.len();
        let penalty = &entry.incoming[0].penalty;
        let mut next = vec![f64::INFINITY; n];
        let mut choice = vec![0usize; n];
        for (ci, nb) in next.iter_mut().enumerate() {
            for p in 0..n_prev {
                let c = best[p] + penalty[p * n + ci] + entry.time_ms[ci];
                if c < *nb {
                    *nb = c;
                    choice[ci] = p;
                }
            }
        }
        best = next;
        back.push(choice);
    }
    // Trace back.
    let (mut ci, &cost) = best
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");
    let mut assign = vec![0usize; layers.len()];
    for l in (0..layers.len()).rev() {
        assign[l] = ci;
        ci = back[l][ci];
    }
    Some((assign, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::exhaustive_search;
    use qsdnn_engine::toy;

    #[test]
    fn fig1_is_a_chain_and_dp_matches_exhaustive() {
        let lut = toy::fig1_lut();
        assert!(is_chain(&lut));
        let (dp_a, dp_c) = solve_chain_dp(&lut).unwrap();
        let (ex_a, ex_c) = exhaustive_search(&lut, 1e6).unwrap();
        assert_eq!(dp_a, ex_a);
        assert!((dp_c - ex_c).abs() < 1e-12);
    }

    #[test]
    fn small_chain_dp_matches_exhaustive() {
        let lut = toy::small_chain_lut();
        let (dp_a, dp_c) = solve_chain_dp(&lut).unwrap();
        let (_, ex_c) = exhaustive_search(&lut, 1e6).unwrap();
        assert!((dp_c - ex_c).abs() < 1e-12);
        assert!(
            (lut.cost(&dp_a) - dp_c).abs() < 1e-12,
            "reported cost is consistent"
        );
    }

    #[test]
    fn rejects_branchy_luts() {
        use qsdnn_engine::{AnalyticalPlatform, Mode, Profiler};
        let net = qsdnn_nn::zoo::toy_branchy(1);
        let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 1).profile(&net, Mode::Cpu);
        assert!(!is_chain(&lut));
        assert!(solve_chain_dp(&lut).is_none());
    }
}
