//! Simulated annealing baseline (extension beyond the paper's comparisons;
//! the paper notes its approach "can be applied to other optimization
//! methods").

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use qsdnn_engine::CostLut;

use crate::{EpisodeRecord, SearchReport};

/// Simulated-annealing hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedAnnealingConfig {
    /// Number of proposal evaluations (comparable to an episode budget).
    pub evaluations: usize,
    /// Initial temperature (ms scale of accepted uphill moves).
    pub t_initial: f64,
    /// Final temperature.
    pub t_final: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulatedAnnealingConfig {
    fn default() -> Self {
        SimulatedAnnealingConfig {
            evaluations: 1000,
            t_initial: 5.0,
            t_final: 0.01,
            seed: 0xA11,
        }
    }
}

/// Single-flip simulated annealing over assignments with geometric cooling.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    config: SimulatedAnnealingConfig,
}

impl SimulatedAnnealing {
    /// Annealer with the given configuration.
    pub fn new(config: SimulatedAnnealingConfig) -> Self {
        SimulatedAnnealing { config }
    }

    /// Runs annealing from the all-Vanilla start point.
    pub fn run(&self, lut: &CostLut) -> SearchReport {
        let start = Instant::now();
        let cfg = &self.config;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut current = lut.vanilla_assignment();
        let mut current_cost = lut.cost(&current);
        let mut best = current.clone();
        let mut best_cost = current_cost;
        let mut curve = Vec::with_capacity(cfg.evaluations);
        let cooling = if cfg.evaluations > 1 {
            (cfg.t_final / cfg.t_initial).powf(1.0 / (cfg.evaluations - 1) as f64)
        } else {
            1.0
        };
        let mut temp = cfg.t_initial;
        for step in 0..cfg.evaluations {
            let l = rng.gen_range(0..lut.len());
            let n = lut.candidates(l).len();
            let mut proposal = current.clone();
            proposal[l] = rng.gen_range(0..n);
            let cost = lut.cost(&proposal);
            let accept = cost <= current_cost
                || rng.gen::<f64>() < ((current_cost - cost) / temp.max(1e-12)).exp();
            if accept {
                current = proposal;
                current_cost = cost;
            }
            if current_cost < best_cost {
                best_cost = current_cost;
                best = current.clone();
            }
            curve.push(EpisodeRecord {
                episode: step,
                epsilon: temp,
                cost_ms: current_cost,
                best_so_far_ms: best_cost,
            });
            temp *= cooling;
        }
        SearchReport {
            method: "annealing".into(),
            network: lut.network().to_string(),
            best_assignment: best,
            best_cost_ms: best_cost,
            episodes: cfg.evaluations,
            curve,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::exhaustive_search;
    use qsdnn_engine::toy;

    #[test]
    fn reaches_near_optimum_on_small_chain() {
        let lut = toy::small_chain_lut();
        let (_, opt) = exhaustive_search(&lut, 1e6).unwrap();
        let report = SimulatedAnnealing::new(SimulatedAnnealingConfig {
            evaluations: 2000,
            ..Default::default()
        })
        .run(&lut);
        assert!(
            report.best_cost_ms <= opt * 1.05 + 1e-9,
            "{} vs {opt}",
            report.best_cost_ms
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let lut = toy::small_chain_lut();
        let a = SimulatedAnnealing::new(SimulatedAnnealingConfig::default()).run(&lut);
        let b = SimulatedAnnealing::new(SimulatedAnnealingConfig::default()).run(&lut);
        assert_eq!(a.best_cost_ms, b.best_cost_ms);
    }

    #[test]
    fn improves_over_vanilla_start() {
        let lut = toy::fig1_lut();
        let report = SimulatedAnnealing::new(SimulatedAnnealingConfig::default()).run(&lut);
        assert!(report.best_cost_ms <= lut.cost(&lut.vanilla_assignment()));
    }
}
