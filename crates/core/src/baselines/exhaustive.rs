//! Exhaustive enumeration — ground truth for small design spaces.

use qsdnn_engine::{Assignment, CostLut};

/// Enumerates every implementation and returns the optimum, or `None` if
/// the design space exceeds `limit` evaluations (the paper's point: the
/// space grows as `N_I^N_L`, so this is only feasible for toy networks).
pub fn exhaustive_search(lut: &CostLut, limit: f64) -> Option<(Assignment, f64)> {
    if lut.design_space_size() > limit {
        return None;
    }
    let dims: Vec<usize> = (0..lut.len()).map(|l| lut.candidates(l).len()).collect();
    let mut sel = vec![0usize; lut.len()];
    let mut best = (sel.clone(), f64::INFINITY);
    loop {
        let c = lut.cost(&sel);
        if c < best.1 {
            best = (sel.clone(), c);
        }
        let mut i = 0;
        loop {
            if i == sel.len() {
                return Some(best);
            }
            sel[i] += 1;
            if sel[i] < dims[i] {
                break;
            }
            sel[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn finds_fig1_optimum() {
        let lut = toy::fig1_lut();
        let (assign, cost) = exhaustive_search(&lut, 1e6).expect("space is tiny");
        assert_eq!(assign, vec![0, 0, 0]);
        assert!((cost - 2.9).abs() < 1e-9);
    }

    #[test]
    fn respects_limit() {
        let lut = toy::small_chain_lut(); // 243 implementations
        assert!(exhaustive_search(&lut, 100.0).is_none());
        assert!(exhaustive_search(&lut, 1000.0).is_some());
    }

    #[test]
    fn optimum_beats_greedy_and_vanilla() {
        let lut = toy::small_chain_lut();
        let (_, opt) = exhaustive_search(&lut, 1e6).unwrap();
        assert!(opt <= lut.cost(&lut.greedy_assignment()));
        assert!(opt < lut.cost(&lut.vanilla_assignment()));
    }
}
