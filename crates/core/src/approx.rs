//! Value-function approximation (paper §VII future work: "look into Deep RL
//! to approximate the value function for better scalability towards larger
//! networks and more dimensions in the search space").
//!
//! Instead of one Q-value per `(depth, prev, action)` cell, a linear model
//! `Q̂(s, a) = w · φ(s, a)` shares ~40 weights across the whole network.
//! Features φ encode the paper's Table I state tuple (library, algorithm,
//! lowering, processor, BLAS backend, layer type, depth) plus the two
//! compatibility indicators the tabular agent has to *discover* cell by
//! cell: does the action's layout/processor match the previous layer's?
//! The candidate's own profiled time is also a feature, so the model
//! generalizes across layers of different magnitude.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use qsdnn_engine::CostLut;
use qsdnn_primitives::{Algorithm, Library, Lowering, Primitive, Processor};

use crate::{EpisodeRecord, QsDnnConfig, SearchReport};

/// Feature vector dimensionality of [`featurize`].
pub const FEATURE_DIM: usize = 27;

fn library_index(lib: Library) -> usize {
    Library::ALL
        .iter()
        .position(|&l| l == lib)
        .expect("library in ALL")
}

fn algorithm_index(a: Algorithm) -> usize {
    match a {
        Algorithm::Direct => 0,
        Algorithm::DirectOpt => 1,
        Algorithm::Gemm => 2,
        Algorithm::Gemv => 3,
        Algorithm::Winograd => 4,
        Algorithm::SparseCsr => 5,
    }
}

fn lowering_index(l: Lowering) -> usize {
    match l {
        Lowering::None => 0,
        Lowering::Im2col => 1,
        Lowering::Im2row => 2,
        Lowering::Kn2row => 3,
    }
}

/// Builds φ(s, a) for choosing `action` at layer `l` when layer `l-1` runs
/// `prev`. `time_scale` normalizes profiled times into ~[0, 1].
pub fn featurize(
    lut: &CostLut,
    l: usize,
    prev: Option<&Primitive>,
    action_ci: usize,
    time_scale: f64,
) -> [f64; FEATURE_DIM] {
    let action = &lut.candidates(l)[action_ci];
    let mut f = [0.0; FEATURE_DIM];
    let mut k = 0;
    // Bias.
    f[k] = 1.0;
    k += 1;
    // Library one-hot (7).
    f[k + library_index(action.library)] = 1.0;
    k += 7;
    // Algorithm one-hot (6).
    f[k + algorithm_index(action.algorithm)] = 1.0;
    k += 6;
    // Lowering one-hot (4).
    f[k + lowering_index(action.lowering)] = 1.0;
    k += 4;
    // Processor (2).
    f[k + usize::from(action.processor == Processor::Gpu)] = 1.0;
    k += 2;
    // BLAS backend present (1).
    f[k] = f64::from(action.blas.is_some());
    k += 1;
    // Compatibility with the previous layer's primitive (2).
    if let Some(p) = prev {
        f[k] = f64::from(p.layout == action.layout);
        f[k + 1] = f64::from(p.processor == action.processor);
    }
    k += 2;
    // Normalized depth (1).
    f[k] = l as f64 / lut.len().max(1) as f64;
    k += 1;
    // Normalized profiled time of the action (1), the strongest predictor.
    f[k] = lut.time(l, action_ci) / time_scale;
    k += 1;
    // Normalized best-in-layer time (1): lets the model learn advantage.
    let best = lut.layers()[l]
        .time_ms
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    f[k] = best / time_scale;
    k += 1;
    // Remaining-depth fraction (1): proxies the magnitude of future reward.
    f[k] = (lut.len() - l) as f64 / lut.len().max(1) as f64;
    debug_assert_eq!(k + 1, FEATURE_DIM);
    f
}

/// Linear state-action value function trained by stochastic semi-gradient
/// Q-learning.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearQ {
    weights: [f64; FEATURE_DIM],
}

impl LinearQ {
    /// Zero-initialized model.
    pub fn new() -> Self {
        LinearQ {
            weights: [0.0; FEATURE_DIM],
        }
    }

    /// `Q̂ = w · φ`.
    pub fn predict(&self, phi: &[f64; FEATURE_DIM]) -> f64 {
        self.weights.iter().zip(phi).map(|(w, x)| w * x).sum()
    }

    /// One semi-gradient step towards `target`.
    pub fn update(&mut self, phi: &[f64; FEATURE_DIM], target: f64, lr: f64) {
        let err = target - self.predict(phi);
        for (w, x) in self.weights.iter_mut().zip(phi) {
            *w += lr * err * x;
        }
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64; FEATURE_DIM] {
        &self.weights
    }
}

impl Default for LinearQ {
    fn default() -> Self {
        LinearQ::new()
    }
}

/// QS-DNN with the tabular Q replaced by [`LinearQ`] — the scalability
/// extension. Reuses [`QsDnnConfig`] (schedule, γ, seed); `alpha` becomes
/// the SGD learning rate.
///
/// # Examples
///
/// ```
/// use qsdnn::{ApproxQsDnnSearch, QsDnnConfig};
/// use qsdnn_engine::toy;
///
/// let lut = toy::fig1_lut();
/// let report = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(400)).run(&lut);
/// assert!(report.best_cost_ms <= lut.cost(&lut.greedy_assignment()));
/// ```
#[derive(Debug, Clone)]
pub struct ApproxQsDnnSearch {
    config: QsDnnConfig,
}

impl ApproxQsDnnSearch {
    /// Search with the given configuration.
    pub fn new(config: QsDnnConfig) -> Self {
        ApproxQsDnnSearch { config }
    }

    /// Runs the linear-Q search against a Phase-1 LUT.
    pub fn run(&self, lut: &CostLut) -> SearchReport {
        let start = std::time::Instant::now();
        let total = self.config.schedule.total_episodes();
        let layers = lut.len();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut q = LinearQ::new();

        // Reward/feature scale: the largest profiled layer time.
        let time_scale = lut
            .layers()
            .iter()
            .flat_map(|l| l.time_ms.iter().copied())
            .fold(1e-12f64, f64::max);
        let lr = self.config.alpha / FEATURE_DIM as f64;

        let mut best_cost = f64::INFINITY;
        let mut best_assign: Vec<usize> = Vec::new();
        let mut curve = Vec::with_capacity(total);

        for episode in 0..total {
            let eps = self.config.schedule.epsilon_for(episode);
            let mut assign: Vec<usize> = Vec::with_capacity(layers);
            let mut prev: Option<Primitive> = None;
            let mut episode_cost = 0.0;
            let mut trajectory: Vec<([f64; FEATURE_DIM], f64, usize)> = Vec::with_capacity(layers);
            for l in 0..layers {
                let n = lut.candidates(l).len();
                let a = if rng.gen::<f64>() < eps {
                    rng.gen_range(0..n)
                } else {
                    (0..n)
                        .max_by(|&x, &y| {
                            let qx = q.predict(&featurize(lut, l, prev.as_ref(), x, time_scale));
                            let qy = q.predict(&featurize(lut, l, prev.as_ref(), y, time_scale));
                            qx.partial_cmp(&qy).expect("finite")
                        })
                        .expect("non-empty")
                };
                let phi = featurize(lut, l, prev.as_ref(), a, time_scale);
                let step = lut.step_cost(l, a, &assign);
                episode_cost += step;
                trajectory.push((phi, -step / time_scale, a));
                assign.push(a);
                prev = Some(lut.candidates(l)[a]);
            }
            // Semi-gradient updates in reverse order.
            for l in (0..layers).rev() {
                let (phi, reward, a) = &trajectory[l];
                let future = if l + 1 == layers {
                    0.0
                } else {
                    let p = lut.candidates(l)[*a];
                    let n = lut.candidates(l + 1).len();
                    (0..n)
                        .map(|x| q.predict(&featurize(lut, l + 1, Some(&p), x, time_scale)))
                        .fold(f64::NEG_INFINITY, f64::max)
                };
                q.update(phi, reward + self.config.gamma * future, lr);
            }

            if episode_cost < best_cost {
                best_cost = episode_cost;
                best_assign = assign;
            }
            curve.push(EpisodeRecord {
                episode,
                epsilon: eps,
                cost_ms: episode_cost,
                best_so_far_ms: best_cost,
            });
        }

        SearchReport {
            method: "qs-dnn-linear".into(),
            network: lut.network().to_string(),
            best_assignment: best_assign,
            best_cost_ms: best_cost,
            episodes: total,
            curve,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdnn_engine::toy;

    #[test]
    fn feature_vector_has_declared_dimension() {
        let lut = toy::fig1_lut();
        let phi = featurize(&lut, 1, Some(&Primitive::vanilla()), 0, 1.0);
        assert_eq!(phi.len(), FEATURE_DIM);
        assert_eq!(phi[0], 1.0, "bias");
    }

    #[test]
    fn compatibility_features_react_to_prev() {
        let lut = toy::fig1_lut();
        // Candidate 1 at layer 1 is NHWC; vanilla prev is NCHW.
        let mismatch = featurize(&lut, 1, Some(&Primitive::vanilla()), 1, 1.0);
        let matched = featurize(&lut, 1, Some(&lut.candidates(0)[1]), 1, 1.0);
        // Layout-match flag (index 21 = 1+7+6+4+2+1) flips.
        assert_eq!(mismatch[21], 0.0);
        assert_eq!(matched[21], 1.0);
    }

    #[test]
    fn linear_q_learns_a_simple_target() {
        let lut = toy::small_chain_lut();
        let mut q = LinearQ::new();
        let phi = featurize(&lut, 2, None, 1, 1.0);
        for _ in 0..200 {
            q.update(&phi, -3.0, 0.05);
        }
        assert!((q.predict(&phi) + 3.0).abs() < 0.05);
    }

    #[test]
    fn avoids_fig1_trap() {
        let lut = toy::fig1_lut();
        let report = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(500)).run(&lut);
        assert!(
            report.best_cost_ms <= 2.9 + 1e-9,
            "found {}",
            report.best_cost_ms
        );
    }

    #[test]
    fn near_optimal_on_small_chain() {
        let lut = toy::small_chain_lut();
        let report = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(800)).run(&lut);
        let (_, opt) = crate::baselines::exhaustive_search(&lut, 1e6).expect("small");
        assert!(
            report.best_cost_ms <= opt * 1.10 + 1e-9,
            "linear-Q {} vs optimum {opt}",
            report.best_cost_ms
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let lut = toy::small_chain_lut();
        let a = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(100)).run(&lut);
        let b = ApproxQsDnnSearch::new(QsDnnConfig::with_episodes(100)).run(&lut);
        assert_eq!(a.best_cost_ms, b.best_cost_ms);
    }
}
