//! # QS-DNN: RL-based search for DNN primitive selection
//!
//! Reproduction of de Prado, Pazos & Benini, *"Learning to infer: RL-based
//! search for DNN primitive selection on Heterogeneous Embedded Systems"*,
//! DATE 2019.
//!
//! Given a trained network, QS-DNN finds the per-layer combination of
//! acceleration-library primitives (and processors) that minimizes
//! end-to-end inference latency, *including* the layout-conversion and
//! CPU↔GPU transfer penalties between incompatible choices. The process has
//! two phases:
//!
//! 1. **Inference** ([`qsdnn_engine::Profiler`]) — benchmark every primitive
//!    network-wide on the embedded platform and profile every compatibility
//!    layer, producing a [`qsdnn_engine::CostLut`];
//! 2. **Search** ([`QsDnnSearch`]) — a tabular Q-learning agent walks the
//!    network layer by layer against the LUT with an ε-greedy schedule
//!    ([`EpsilonSchedule::paper`]), reward shaping and experience replay
//!    ([`ReplayBuffer`]), and emits the best implementation plus its
//!    learning curve ([`SearchReport`]).
//!
//! The [`baselines`] module hosts the comparators: Random Search (paper
//! §VI.B), exact chain DP, exhaustive enumeration, simulated annealing and
//! the PBQP formulation of Anderson & Gregg.
//!
//! # Examples
//!
//! End-to-end: profile LeNet-5 on the simulated TX-2 and search:
//!
//! ```
//! use qsdnn::{QsDnnConfig, QsDnnSearch};
//! use qsdnn_engine::{AnalyticalPlatform, Mode, Profiler};
//! use qsdnn_nn::zoo;
//!
//! let net = zoo::lenet5(1);
//! let lut = Profiler::with_repeats(AnalyticalPlatform::tx2(), 3)
//!     .profile(&net, Mode::Cpu);
//! let report = QsDnnSearch::new(QsDnnConfig::with_episodes(300)).run(&lut);
//! let vanilla = lut.cost(&lut.vanilla_assignment());
//! assert!(report.best_cost_ms < vanilla, "search must beat the baseline");
//! ```

pub mod approx;
pub mod baselines;
pub mod portfolio;
mod qtable;
mod replay;
mod report;
mod schedule;
mod search;
mod transfer;

pub use approx::{ApproxQsDnnSearch, LinearQ};
pub use portfolio::{MemberSummary, Portfolio, PortfolioMember, PortfolioOutcome};
pub use qtable::QTable;
pub use replay::{ReplayBuffer, Transition};
pub use report::{EpisodeRecord, SearchReport};
pub use schedule::EpsilonSchedule;
pub use search::{QsDnnConfig, QsDnnSearch};
pub use transfer::TransferMapping;

// Re-export the sibling crates so downstream users (and the examples) can
// drive the whole pipeline through one dependency.
pub use qsdnn_engine as engine;
pub use qsdnn_gemm as gemm;
pub use qsdnn_nn as nn;
pub use qsdnn_pbqp as pbqp;
pub use qsdnn_primitives as primitives;
pub use qsdnn_tensor as tensor;
