//! Experience replay (paper §IV.C, buffer size 128 following Baker et al.).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

use serde::{Deserialize, Serialize};

/// One stored transition: at layer `layer`, with layer `layer - 1` running
/// candidate `prev`, action `action` was taken and reward `reward`
/// (negative step time) was received. The successor state is `(layer + 1,
/// action)` by construction; `terminal` marks the last layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Layer index of the action.
    pub layer: usize,
    /// Candidate chosen at the previous layer (0 when `layer == 0`).
    pub prev: usize,
    /// Candidate chosen at `layer`.
    pub action: usize,
    /// Immediate reward (ms, negated).
    pub reward: f64,
    /// Whether this was the final layer of the episode.
    pub terminal: bool,
}

/// Fixed-capacity ring buffer of transitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    head: usize,
}

impl ReplayBuffer {
    /// Buffer with the given capacity (the paper uses 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer needs capacity");
        ReplayBuffer {
            capacity,
            items: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    /// Stores a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.head] = t;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// A shuffled copy of the buffer contents (one replay pass).
    pub fn shuffled(&self, rng: &mut SmallRng) -> Vec<Transition> {
        let mut v = self.items.clone();
        v.shuffle(rng);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(layer: usize) -> Transition {
        Transition {
            layer,
            prev: 0,
            action: 0,
            reward: -1.0,
            terminal: false,
        }
    }

    #[test]
    fn push_grows_until_capacity() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..3 {
            b.push(t(i));
        }
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn eviction_replaces_oldest_first() {
        let mut b = ReplayBuffer::new(2);
        b.push(t(0));
        b.push(t(1));
        b.push(t(2)); // evicts t(0)
        let layers: Vec<usize> = b.items.iter().map(|x| x.layer).collect();
        assert!(layers.contains(&1) && layers.contains(&2));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut b = ReplayBuffer::new(16);
        for i in 0..10 {
            b.push(t(i));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let mut got: Vec<usize> = b.shuffled(&mut rng).iter().map(|x| x.layer).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayBuffer::new(0);
    }
}
